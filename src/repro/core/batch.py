"""Vectorised batch simulation: N instances of one plan, one state matrix.

The ROADMAP's scaling target for simulation workloads is running *many
model instances at once* — parameter sweeps, Monte-Carlo studies,
per-user scenario fan-out.  Looping N interpreters is O(N) Python
dispatch per solver stage; this backend instead compiles the shared
:class:`~repro.core.plan.ExecutionPlan` (via the codegen emitters with
:class:`~repro.codegen.common.NumpyLang`) into ONE vectorised program
over a stacked ``(n, n_state)`` NumPy matrix, so each solver stage is a
single sweep of array expressions regardless of N.

Determinism: fixed-step solvers (``supports_batch = True``) perform only
element-wise state arithmetic, and every emitted NumPy expression applies
the same IEEE-754 double operations per row that the scalar interpreter
applies per instance — so batched trajectories are *bitwise identical* to
N sequential runs (for blocks whose interpreter and emitter share the
expression structure; transcendental-heavy blocks may differ in the last
ulp due to SIMD libm variants).

Swept parameters become per-instance vectors: ``sweeps={"pid.kp":
values}`` replaces the block parameter with a :class:`SweepVar` whose
``symbol`` survives lowering (``NumpyLang.num`` emits the symbol instead
of folding a literal), ending up as one row of the parameter matrix
``P``.  If an emitter does arithmetic on the parameter *before* calling
``num`` (e.g. a Sine's ``2*pi*f``), the symbol is folded away — the
backend detects this and raises :class:`BatchError` rather than silently
running every instance with the base value.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence,
    Tuple,
)

import numpy as np

from repro.core.network import FlatNetwork
from repro.core.solverbinding import SolverBinding
from repro.core.streamer import Streamer

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataflow.diagram import Diagram


class BatchError(Exception):
    """Raised on unbatchable models or bad sweep specifications."""


class SweepVar(float):
    """A float parameter that lowers to a per-instance symbol.

    Behaves as its base value everywhere (it *is* a float), but carries
    the swept ``values`` and the ``symbol`` the NumPy backend emits, so
    the generated program reads ``P[j]`` — a row of per-instance values —
    where a literal would otherwise be folded.
    """

    def __new__(cls, base: float, values: np.ndarray, symbol: str):
        obj = super().__new__(cls, base)
        obj.values = np.asarray(values, dtype=float)
        obj.symbol = symbol
        return obj


@dataclass(frozen=True)
class BatchProgram:
    """The reusable compile artefact of the batch backend.

    Everything derived from the *diagram structure* alone — the lowered
    model (plan + per-block code), the rendered vectorised source and
    the sorted sweep-path order that fixes the parameter-matrix row
    layout.  Instance count, sweep *values*, solver and step size are
    all run-time inputs, so one program serves any number of
    :class:`BatchSimulator` instantiations; the service layer's
    :class:`~repro.service.cache.PlanCache` stores these keyed by
    :meth:`ExecutionPlan.fingerprint` to make re-submission skip the
    whole lower/render/exec pipeline.
    """

    model: Any  # LoweredModel (kept Any to avoid a codegen import cycle)
    source: str
    sweep_paths: Tuple[str, ...]
    #: optional second lowering with :class:`~repro.codegen.common.
    #: CBatchLang` (``compile_batch_program(..., native=True)``) — the
    #: native-batch backend renders its N-instance C kernel from this;
    #: None means the program can only run on the NumPy path
    native_model: Any = None

    @property
    def plan(self):
        return self.model.plan

    @property
    def code(self):
        """Compiled code object for :attr:`source`, cached so repeated
        instantiations (the warm-cache path) skip Python compilation."""
        cached = self.__dict__.get("_code")
        if cached is None:
            cached = compile(self.source, "<batch-program>", "exec")
            object.__setattr__(self, "_code", cached)
        return cached

    def fingerprint(self, extra: Optional[Mapping[str, Any]] = None) -> str:
        """Content hash delegating to the underlying plan (plus sweep
        paths and record labels, which also shaped the source)."""
        merged: Dict[str, Any] = {
            "batch.sweep_paths": self.sweep_paths,
            "batch.records": tuple(
                label for label, __ in self.model.records
            ),
        }
        merged.update(extra or {})
        return self.plan.fingerprint(extra=merged)


@dataclass
class BatchChunk:
    """One streamed slice of a chunked batch run."""

    #: recorded times in this chunk, shape ``(T_chunk,)``
    t: np.ndarray
    #: label -> ``(T_chunk, n)`` series
    series: Dict[str, np.ndarray]
    #: simulation time reached at the end of the chunk
    t_now: float
    #: cumulative minor steps taken so far
    steps: int
    #: True for the last chunk of the run
    final: bool
    #: final ``(n, n_state)`` state matrix (last chunk only, else None)
    final_states: Optional[np.ndarray] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    #: :meth:`BatchSimulator.resume_point` cut at this chunk's boundary
    #: (non-final chunks only) — feed back as ``run_chunked(resume=...)``
    #: to continue the run bitwise from here (resilience layer)
    resume: Optional[Dict[str, Any]] = None


@dataclass
class BatchResult:
    """Recorded trajectories of one batch run."""

    #: recorded times, shape ``(T,)``
    t: np.ndarray
    #: label -> ``(T, n)`` series (row = record instant, column = instance)
    series: Dict[str, np.ndarray]
    #: final state matrix, shape ``(n, n_state)``
    final_states: np.ndarray
    n: int
    stats: Dict[str, Any] = field(default_factory=dict)

    def instance(self, i: int) -> Dict[str, np.ndarray]:
        """The per-instance view: label -> ``(T,)`` trajectory."""
        out = {"t": self.t}
        for label, matrix in self.series.items():
            out[label] = matrix[:, i]
        return out


_STATE_REF = re.compile(r"\bx\[(\d+)\]")


def _vectorise(expr: str) -> str:
    """Rewrite scalar state refs ``x[i]`` to column refs ``x[:, i]``."""
    return _STATE_REF.sub(r"x[:, \1]", expr)


def _render_program(model: Any) -> str:
    """Render the vectorised program source (a ``_build`` factory)."""
    output_lines: List[str] = []
    deriv_lines: List[str] = []
    held_inits: List[Tuple[str, float]] = []
    held_names: List[str] = []
    sync_lines: List[str] = []
    deriv_index = 0
    for node in model.plan.nodes:
        block_code = model.code[node.index]
        output_lines.extend(
            _vectorise(line) for line in block_code.output_lines
        )
        for name, value in block_code.held_vars:
            held_inits.append((name, float(value)))
            held_names.append(name)
        sync_lines.extend(
            _vectorise(line) for line in block_code.sync_lines
        )
        for expr in block_code.deriv_exprs:
            deriv_lines.append(
                f"dx[:, {deriv_index}] = {_vectorise(expr)}"
            )
            deriv_index += 1

    signals = sorted({line.split(" = ")[0] for line in output_lines})
    sig_dict = ", ".join(f"{s!r}: {s}" for s in signals)
    unpack = [f"{s} = sig[{s!r}]" for s in signals]

    lines: List[str] = [
        '"""Auto-generated by repro.core.batch -- do not edit."""',
        "",
        "",
        "def _build(n, P):",
    ]
    for name, value in held_inits:
        lines.append(f"    {name} = np.full(n, {value!r})")
    lines.append("")
    lines.append("    def outputs(t, x):")
    for line in output_lines:
        lines.append(f"        {line}")
    lines.append(f"        return {{{sig_dict}}}")
    lines.append("")
    lines.append("    def rhs(t, x):")
    lines.append("        sig = outputs(t, x)")
    for line in unpack:
        lines.append(f"        {line}")
    lines.append("        dx = np.zeros_like(x)")
    for line in deriv_lines:
        lines.append(f"        {line}")
    lines.append("        return dx")
    lines.append("")
    lines.append("    def sync(t, x):")
    if held_names:
        lines.append(f"        nonlocal {', '.join(held_names)}")
    if sync_lines:
        lines.append("        sig = outputs(t, x)")
        for line in unpack:
            lines.append(f"        {line}")
        for line in sync_lines:
            lines.append(f"        {line}")
    if not held_names and not sync_lines:
        lines.append("        pass")
    lines.append("")
    # held-state accessors: the sample-and-hold registers live in this
    # closure, so checkpoint/resume (repro.resilience) needs explicit
    # get/set hooks to carry them across a process boundary
    lines.append("    def get_held():")
    if held_names:
        lines.append(
            "        return {"
            + ", ".join(f"{n!r}: np.array({n})" for n in held_names)
            + "}"
        )
    else:
        lines.append("        return {}")
    lines.append("")
    lines.append("    def set_held(values):")
    if held_names:
        lines.append(f"        nonlocal {', '.join(held_names)}")
        for name in held_names:
            lines.append(
                f"        {name} = np.asarray("
                f"values[{name!r}], dtype=float).copy()"
            )
    else:
        lines.append("        pass")
    lines.append("")
    lines.append("    return outputs, rhs, sync, get_held, set_held")
    return "\n".join(lines) + "\n"


_shared_program_cache = None
_batch_cache_metrics = None

#: default LRU capacity of :func:`shared_program_cache`
#: (``$REPRO_BATCH_CACHE_CAP`` overrides)
DEFAULT_PROGRAM_CACHE_CAP = 64


def batch_cache_metrics():
    """The metrics registry the shared program cache reports into
    (``batch.cache_evicted`` plus the standard ``cache.*`` counters)."""
    global _batch_cache_metrics
    if _batch_cache_metrics is None:
        from repro.service.telemetry import MetricsRegistry

        _batch_cache_metrics = MetricsRegistry()
    return _batch_cache_metrics


def shared_program_cache():
    """The process-wide cache of compiled :class:`BatchProgram` artefacts.

    Keyed by the O0 plan fingerprint plus records/sweeps/opt extras (see
    :func:`batch_program_cache_key`), so two :class:`BatchSimulator`
    instances over the same plan — even over independently built but
    structurally identical diagrams — compile once and share the
    program.  Lazily imports the service-layer cache to keep
    ``repro.core`` importable without ``repro.service``.

    LRU-bounded: long campaigns churn through thousands of distinct
    scenario plans, so residency is capped
    (``$REPRO_BATCH_CACHE_CAP``, default
    :data:`DEFAULT_PROGRAM_CACHE_CAP`) and every eviction increments
    the ``batch.cache_evicted`` counter on :func:`batch_cache_metrics`.
    """
    global _shared_program_cache
    if _shared_program_cache is None:
        from repro.service.cache import PlanCache

        raw = os.environ.get("REPRO_BATCH_CACHE_CAP", "").strip()
        try:
            capacity = int(raw) if raw else DEFAULT_PROGRAM_CACHE_CAP
        except ValueError:
            capacity = DEFAULT_PROGRAM_CACHE_CAP
        registry = batch_cache_metrics()
        _shared_program_cache = PlanCache(
            capacity=max(1, capacity),
            metrics=registry,
            on_evict=lambda key: registry.counter(
                "batch.cache_evicted"
            ).inc(),
        )
    return _shared_program_cache


def reset_shared_program_cache() -> None:
    """Drop the process-wide program cache (tests / cap reconfig)."""
    global _shared_program_cache
    _shared_program_cache = None


def batch_program_cache_key(
    diagram: Diagram,
    records: Optional[List[str]] = None,
    sweep_paths: Sequence[str] = (),
    opt_config=None,
    native: bool = False,
) -> str:
    """Content key identifying one compiled batch program.

    Hashes the *unoptimized* plan (parameter values included — folded
    constants bake them into the source) plus everything else that
    shaped the emitted program: record labels, sweep-path order and the
    optimizer configuration.  Distinct opt levels therefore never serve
    each other's artefacts.
    """
    diagram.finalise()
    network = FlatNetwork([diagram])
    extra: Dict[str, Any] = {
        "backend": "batch-program",
        "batch.records": tuple(records) if records else "<default>",
        "batch.sweep_paths": tuple(sorted(sweep_paths)),
    }
    # native-lowered programs carry an extra LoweredModel; they must
    # never serve (or be served by) NumPy-only compilations
    if native:
        extra["batch.native"] = True
    if opt_config is not None and opt_config.is_active:
        extra["opt"] = opt_config.cache_token()
    return network.plan().fingerprint(extra=extra)


def compile_batch_program(
    diagram: Diagram,
    records: Optional[List[str]] = None,
    sweep_paths: Sequence[str] = (),
    opt_level: int = 0,
    opt_config=None,
    native: bool = False,
) -> BatchProgram:
    """Lower ``diagram`` into a reusable :class:`BatchProgram`.

    This is the expensive half of :class:`BatchSimulator` — flatten,
    plan, emit NumPy expressions, render the vectorised source — pulled
    out so callers (notably the service layer's plan cache) can compile
    once and instantiate many simulators.  ``sweep_paths`` fixes which
    block parameters become per-instance matrix rows; their *values*
    arrive later, at simulator construction.

    ``opt_level`` / ``opt_config`` run the :mod:`repro.core.opt` pass
    pipeline before emission.  Swept parameters are automatically
    protected from rewriting (their ``SweepVar`` symbols must survive to
    the emitted source).

    ``native=True`` additionally lowers the diagram with
    :class:`~repro.codegen.common.CBatchLang` and attaches the result as
    :attr:`BatchProgram.native_model`, which is what the native-batch
    backend renders its C kernel from.  An unlowerable model (no C
    emitter path) leaves ``native_model`` None and the simulator falls
    back to the NumPy program.
    """
    ordered = tuple(sorted(sweep_paths))
    items: List[Tuple[Streamer, str, float, SweepVar]] = []
    for j, path in enumerate(ordered):
        block, key = _resolve_param(diagram, path)
        base = float(block.params[key])
        var = SweepVar(base, np.asarray([base]), f"P[{j}]")
        items.append((block, key, base, var))
        block.params[key] = var
    native_model = None
    try:
        from repro.codegen.common import (
            CBatchLang, CodegenError, NumpyLang, lower,
        )

        model = lower(
            diagram, NumpyLang(), records,
            opt_level=opt_level, opt_config=opt_config,
        )
        if native:
            try:
                native_model = lower(
                    diagram, CBatchLang(), records,
                    opt_level=opt_level, opt_config=opt_config,
                )
            except CodegenError:
                native_model = None  # NumPy-only program; backend demotes
    finally:
        for block, key, base, __ in items:
            block.params[key] = base
    source = _render_program(model)
    for (block, key, __, var), path in zip(items, ordered):
        if var.symbol not in source:
            raise BatchError(
                f"sweep {path!r}: the emitter for "
                f"{type(block).__name__} folds {key!r} into a "
                "derived literal, so the sweep would be silently "
                "ignored; sweep a parameter the emitter passes "
                "through verbatim"
            )
    return BatchProgram(
        model=model, source=source, sweep_paths=ordered,
        native_model=native_model,
    )


def merge_chunks(chunks: Sequence[BatchChunk], n: int) -> BatchResult:
    """Stitch streamed :class:`BatchChunk` slices back into one
    :class:`BatchResult` (the last chunk must be the final one)."""
    if not chunks or not chunks[-1].final:
        raise BatchError("chunk stream ended without a final chunk")
    last = chunks[-1]
    labels = list(last.series)
    times = np.concatenate([c.t for c in chunks]) if chunks else np.zeros(0)
    series = {
        label: (
            np.concatenate([c.series[label] for c in chunks])
            if any(len(c.t) for c in chunks) else np.zeros((0, n))
        )
        for label in labels
    }
    return BatchResult(
        t=times,
        series=series,
        final_states=last.final_states,
        n=n,
        stats=dict(last.stats),
    )


def _resolve_param(diagram: Diagram, path: str) -> Tuple[Streamer, str]:
    parts = path.split(".")
    if len(parts) < 2:
        raise BatchError(
            f"sweep path needs at least 'block.param': {path!r}"
        )
    node: Streamer = diagram
    for name in parts[:-1]:
        try:
            node = node.sub(name)
        except Exception:
            raise BatchError(
                f"sweep {path!r}: no block {name!r} under {node.path()}"
            ) from None
    key = parts[-1]
    if key not in node.params:
        raise BatchError(
            f"sweep {path!r}: block {node.path()} has no parameter "
            f"{key!r} (has: {sorted(node.params)})"
        )
    return node, key


class BatchSimulator:
    """Integrate N instances of one diagram as a single state matrix.

    Parameters
    ----------
    diagram:
        The dataflow diagram (codegen-supported blocks only).
    n:
        Number of instances.
    solver:
        A fixed-step solver name/instance (``supports_batch`` required).
    h:
        Default minor step.
    records:
        ``"block.port"`` paths to record (default: Scope inputs).
    sweeps:
        ``{"block.param": values}`` — per-instance parameter vectors,
        each of length ``n``.
    x0:
        Optional ``(n, n_state)`` initial-state override (for sweeping
        initial conditions, which live outside the RHS expressions).
    program:
        Optional precompiled :class:`BatchProgram` (e.g. from a warm
        :class:`~repro.service.cache.PlanCache` entry).  When given, the
        whole lower/render pipeline is skipped — only the cheap
        per-instantiation ``exec`` of the rendered ``_build`` factory
        runs — and ``diagram``/``records`` are ignored.  The ``sweeps``
        keys must match the paths the program was compiled for.
    opt_level / opt_config:
        Plan-optimizer configuration (:mod:`repro.core.opt`) applied
        while compiling the program.  Ignored when ``program`` is given.
    cache:
        Where to look up/share the compiled program when ``program`` is
        not given: ``None`` (default) uses the process-wide
        :func:`shared_program_cache`; a
        :class:`~repro.service.cache.PlanCache` uses that instance;
        ``False`` compiles privately (the pre-cache behaviour).
    backend:
        ``"batch"`` (default) runs the vectorised NumPy program;
        ``"native-batch"`` builds/loads the N-instance C kernel
        (:mod:`repro.core.backend.nativebatch`) and runs every chunk
        through it.  When the kernel cannot be built (no compiler,
        non-kernel solver, unlowerable model) the simulator *falls
        back* to the NumPy program — check :attr:`backend_name` /
        :attr:`backend_fallback_reason`; ``metrics`` (when given)
        counts the demotion under ``backend.fallback``.
    shards:
        Instance-axis shard count for the native kernel (None: one per
        core, capped).  Sharding never changes results — shards are
        contiguous row ranges of independent instances.
    native_cache_dir:
        Native artifact directory override (None: the process default).
    metrics:
        Optional :class:`~repro.service.telemetry.MetricsRegistry`
        receiving ``backend.fallback`` counters on native demotion.
    """

    def __init__(
        self,
        diagram: Optional[Diagram] = None,
        n: int = 1,
        solver: Any = "rk4",
        h: float = 1e-3,
        records: Optional[List[str]] = None,
        sweeps: Optional[Mapping[str, Sequence[float]]] = None,
        x0: Optional[np.ndarray] = None,
        program: Optional[BatchProgram] = None,
        opt_level: int = 0,
        opt_config=None,
        cache: Any = None,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
        native_cache_dir: Any = None,
        metrics: Any = None,
    ) -> None:
        if n < 1:
            raise BatchError(f"need at least one instance, got {n}")
        if h <= 0:
            raise BatchError(f"non-positive step {h}")
        self.backend_requested = backend or "batch"
        if self.backend_requested not in ("batch", "native-batch"):
            raise BatchError(
                f"unknown batch backend {backend!r}; "
                "use 'batch' or 'native-batch'"
            )
        self.n = int(n)
        self.h = float(h)
        self.binding = SolverBinding(solver)
        if not self.binding.solver.supports_batch:
            raise BatchError(
                f"solver {self.binding.strategy_name!r} does not support "
                "batched state matrices (adaptive/implicit solvers make "
                "scalar accept/reject decisions that would couple "
                "instances); use a fixed-step solver"
            )

        sweep_values: Dict[str, np.ndarray] = {}
        for path, values in sorted((sweeps or {}).items()):
            values = np.asarray(values, dtype=float)
            if values.shape != (self.n,):
                raise BatchError(
                    f"sweep {path!r}: expected {self.n} values, got "
                    f"shape {values.shape}"
                )
            sweep_values[path] = values

        native_wanted = self.backend_requested == "native-batch"
        if program is None:
            if diagram is None:
                raise BatchError(
                    "need either a diagram or a precompiled program"
                )
            from repro.core.opt import resolve_config

            config = resolve_config(opt_level, opt_config)
            sweep_paths = tuple(sorted(sweep_values))

            def compile_program() -> BatchProgram:
                return compile_batch_program(
                    diagram, records=records, sweep_paths=sweep_paths,
                    opt_config=config, native=native_wanted,
                )

            if cache is False:
                program = compile_program()
            else:
                store = shared_program_cache() if cache is None else cache
                key = batch_program_cache_key(
                    diagram, records=records, sweep_paths=sweep_paths,
                    opt_config=config, native=native_wanted,
                )
                program = store.get_or_compile(key, compile_program)
        elif tuple(sorted(sweep_values)) != program.sweep_paths:
            raise BatchError(
                f"sweep paths {tuple(sorted(sweep_values))} do not match "
                f"the precompiled program's {program.sweep_paths}"
            )

        self.program = program
        self.model = program.model
        self.plan = program.model.plan
        self.source = program.source
        self.sweep_paths = list(program.sweep_paths)
        self._P = (
            np.stack([sweep_values[path] for path in program.sweep_paths])
            if program.sweep_paths else np.zeros((0, self.n))
        )
        namespace: Dict[str, Any] = {"np": np}
        exec(program.code, namespace)
        (
            self._outputs, self._rhs, self._sync,
            self._get_held, self._set_held,
        ) = namespace["_build"](self.n, self._P)

        n_state = len(self.model.initial_state)
        if x0 is None:
            row = np.asarray(self.model.initial_state, dtype=float)
            self.x0 = np.tile(row, (self.n, 1))
        else:
            self.x0 = np.ascontiguousarray(x0, dtype=float)
            if self.x0.shape != (self.n, n_state):
                raise BatchError(
                    f"x0 must have shape ({self.n}, {n_state}), got "
                    f"{self.x0.shape}"
                )

        self._native = None
        self.backend_fallback_reason: Optional[str] = None
        if native_wanted:
            from repro.core.backend.base import (
                KERNEL_SOLVERS, BackendUnavailable,
            )
            from repro.core.backend.nativebatch import NativeBatchKernel

            solver_name = self.binding.strategy_name
            try:
                if solver_name not in KERNEL_SOLVERS:
                    raise BackendUnavailable(
                        f"solver {solver_name!r} has no native batch "
                        f"stages (kernel backends support "
                        f"{KERNEL_SOLVERS})"
                    )
                self._native = NativeBatchKernel(
                    program, solver_name, self.n, self._P,
                    shards=shards, cache_dir=native_cache_dir,
                )
            except BackendUnavailable as exc:
                self.backend_fallback_reason = str(exc)
                if metrics is not None:
                    metrics.counter("backend.fallback").inc()
                    metrics.counter("backend.fallback.native-batch").inc()
        self.backend_name = (
            "native-batch" if self._native is not None else "batch"
        )
        self.shards = (
            self._native.shards if self._native is not None else None
        )

    # ------------------------------------------------------------------
    # execution-backend adapter
    # ------------------------------------------------------------------
    def as_program(self):
        """This simulator behind the uniform
        :class:`~repro.core.backend.base.BackendProgram` surface (the
        same adapter the ``batch`` registry entry returns)."""
        from repro.core.backend.batchentry import BatchProgramAdapter

        return BatchProgramAdapter(self)

    # ------------------------------------------------------------------
    # checkpointing hooks (resilience layer)
    # ------------------------------------------------------------------
    def held_state(self) -> Dict[str, np.ndarray]:
        """The generated program's sample-and-hold registers, by name."""
        if self._native is not None:
            return self._native.held_state()
        return self._get_held()

    def restore_held_state(self, values: Mapping[str, Any]) -> None:
        """Re-inject registers captured by :meth:`held_state`."""
        if self._native is not None:
            self._native.restore_held(values)
            return
        self._set_held(values)

    def resume_point(
        self, t: float, x: np.ndarray, step: int, minor_steps: int
    ) -> Dict[str, Any]:
        """Package a chunk boundary as a :meth:`run_chunked` ``resume``
        argument (plain data: safe for the snapshot codec)."""
        return {
            "t": float(t),
            "x": np.asarray(x, dtype=float).copy(),
            "step": int(step),
            "minor_steps": int(minor_steps),
            "held": self.held_state(),
        }

    def run_chunked(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
        chunk_steps: Optional[int] = None,
        resume: Optional[Mapping[str, Any]] = None,
    ):
        """Integrate to ``t_end``, yielding a :class:`BatchChunk` every
        ``chunk_steps`` minor steps (one final chunk when omitted).

        The step/record/sync sequence is exactly :meth:`run`'s — chunking
        only decides when accumulated records are handed out — so the
        concatenation of the chunks is bitwise identical to an unchunked
        run.  Between chunks a caller may abort, stream partials, or
        check deadlines; this is the cooperative cancellation point the
        service layer's job engine relies on.

        ``resume`` (from :meth:`resume_point`, captured at a chunk
        boundary) continues a previous run mid-stream: the state matrix,
        clock, step counters and held registers are re-injected and the
        already-run ``sync`` is *not* repeated, so the chunks yielded
        after a resume are bitwise the chunks the uninterrupted run
        would have yielded.
        """
        h = self.h if h is None else float(h)
        if h <= 0:
            raise BatchError(f"non-positive step {h}")
        if chunk_steps is not None and chunk_steps < 1:
            raise BatchError(f"chunk_steps must be >= 1: {chunk_steps}")
        if self._native is not None:
            yield from self._run_chunked_native(
                t_end, h, record_every, chunk_steps, resume
            )
            return
        if resume is not None:
            x = np.asarray(resume["x"], dtype=float).copy()
            if x.shape != self.x0.shape:
                raise BatchError(
                    f"resume state shape {x.shape} != {self.x0.shape}"
                )
            t = float(resume["t"])
            if resume.get("held") is not None:
                self.restore_held_state(resume["held"])
        else:
            x = self.x0.copy()
            t = 0.0
        times: List[float] = []
        recorded: Dict[str, List[np.ndarray]] = {
            label: [] for label, __ in self.model.records
        }

        def snapshot(t: float, x: np.ndarray) -> None:
            sig = self._outputs(t, x)
            times.append(t)
            for label, signal in self.model.records:
                value = np.asarray(sig[signal], dtype=float)
                if value.ndim == 0:
                    value = np.full(self.n, float(value))
                recorded[label].append(value.copy())

        def flush(t_now: float, steps: int, final: bool) -> BatchChunk:
            chunk = BatchChunk(
                t=np.asarray(times, dtype=float),
                series={
                    label: np.stack(values) if values
                    else np.zeros((0, self.n))
                    for label, values in recorded.items()
                },
                t_now=t_now,
                steps=steps,
                final=final,
            )
            times.clear()
            for values in recorded.values():
                values.clear()
            return chunk

        if resume is not None:
            step = int(resume["step"])
            minor_steps = int(resume["minor_steps"])
            # the sync at this point in time already ran before the
            # resume point was cut; repeating it would double-advance
            # sample-and-hold registers
        else:
            step = 0
            minor_steps = 0
            self._sync(t, x)
        while t < t_end - 1e-12:
            hh = min(h, t_end - t)
            if step % record_every == 0:
                snapshot(t, x)
            result = self.binding.step(self._rhs, t, x, hh)
            x = result.y
            t = result.t
            minor_steps += 1
            step += 1
            self._sync(t, x)
            if (
                chunk_steps is not None
                and minor_steps % chunk_steps == 0
                and t < t_end - 1e-12
            ):
                partial = flush(t, minor_steps, final=False)
                partial.resume = self.resume_point(t, x, step, minor_steps)
                yield partial
        snapshot(t, x)

        chunk = flush(t, minor_steps, final=True)
        chunk.final_states = x
        chunk.stats = {
            "instances": self.n,
            "minor_steps": minor_steps,
            "states_per_instance": x.shape[1],
            "solver": self.binding.strategy_name,
            "sweeps": list(self.sweep_paths),
        }
        yield chunk

    def _run_chunked_native(
        self,
        t_end: float,
        h: float,
        record_every: int,
        chunk_steps: Optional[int],
        resume: Optional[Mapping[str, Any]],
    ):
        """:meth:`run_chunked` on the C kernel.  The whole step/record/
        sync loop — including the chunk-cut and resume arithmetic — runs
        inside :func:`batch_run`; Python only sizes record buffers and
        packages chunks, so per-chunk overhead is O(records), not
        O(steps)."""
        kernel = self._native
        if resume is not None:
            x = np.array(resume["x"], dtype=float, order="C")
            if x.shape != self.x0.shape:
                raise BatchError(
                    f"resume state shape {x.shape} != {self.x0.shape}"
                )
            t = float(resume["t"])
            if resume.get("held") is not None:
                kernel.restore_held(resume["held"])
            step = int(resume["step"])
            minor_steps = int(resume["minor_steps"])
            # the pre-resume sync already ran inside the kernel before
            # the resume point was cut; cold=False skips repeating it
            cold = False
        else:
            x = np.ascontiguousarray(self.x0, dtype=float).copy()
            t = 0.0
            step = 0
            minor_steps = 0
            cold = True
        labels = [label for label, __ in self.model.records]
        done = False
        while not done:
            if chunk_steps is not None:
                max_steps = chunk_steps - (minor_steps % chunk_steps)
            else:
                max_steps = 0
            t, step, done, rec_t, rec_vals, taken = kernel.run_segment(
                t, t_end, h, record_every, step, max_steps, cold, x
            )
            cold = False
            minor_steps += taken
            chunk = BatchChunk(
                t=rec_t.copy(),
                series={
                    label: np.ascontiguousarray(rec_vals[:, :, i])
                    for i, label in enumerate(labels)
                },
                t_now=t,
                steps=minor_steps,
                final=done,
            )
            if done:
                chunk.final_states = x
                chunk.stats = {
                    "instances": self.n,
                    "minor_steps": minor_steps,
                    "states_per_instance": x.shape[1],
                    "solver": self.binding.strategy_name,
                    "sweeps": list(self.sweep_paths),
                    "backend": "native-batch",
                    "shards": kernel.shards,
                    "artifact": str(kernel.so_path),
                    "artifact_cache_hit": kernel.cache_hit,
                }
            else:
                chunk.resume = self.resume_point(t, x, step, minor_steps)
            yield chunk

    def run(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
    ) -> BatchResult:
        """Integrate all instances to ``t_end`` with fixed step ``h``."""
        chunks = list(
            self.run_chunked(t_end, h=h, record_every=record_every)
        )
        return merge_chunks(chunks, self.n)


def simulate_sequential(
    diagram_factory: Callable[[], Diagram],
    n: int,
    t_end: float,
    solver: Any = "rk4",
    h: float = 1e-3,
    records: Optional[List[str]] = None,
    sweeps: Optional[Mapping[str, Sequence[float]]] = None,
    record_every: int = 1,
) -> BatchResult:
    """Reference implementation: N independent interpreter runs.

    Each instance gets a fresh diagram from ``diagram_factory`` (with its
    swept parameter values applied as plain floats), its own
    :class:`FlatNetwork`, and the same fixed-step loop the batch backend
    uses — the bitwise baseline the batched backend is checked against,
    and the N-Python-loops baseline bench S4 measures against.
    """
    if n < 1:
        raise BatchError(f"need at least one instance, got {n}")
    sweep_arrays = {
        path: np.asarray(values, dtype=float)
        for path, values in (sweeps or {}).items()
    }
    for path, values in sweep_arrays.items():
        if values.shape != (n,):
            raise BatchError(
                f"sweep {path!r}: expected {n} values, got shape "
                f"{values.shape}"
            )

    times: List[float] = []
    series: Dict[str, List[List[float]]] = {}
    finals: List[np.ndarray] = []
    minor_steps = 0
    for i in range(n):
        diagram = diagram_factory()
        for path, values in sweep_arrays.items():
            block, key = _resolve_param(diagram, path)
            block.params[key] = float(values[i])
        diagram.finalise()
        network = FlatNetwork([diagram])
        record_paths = list(records or [])
        if not record_paths:
            for leaf in network.order:
                if type(leaf).__name__ == "Scope":
                    for port in leaf.dports.values():
                        record_paths.append(f"{leaf.name}.{port.name}")
        ports = {
            path: diagram.port_at(path) for path in record_paths
        }
        if i == 0:
            series = {path: [] for path in record_paths}
        binding = SolverBinding(solver)
        if not binding.solver.supports_batch:
            raise BatchError(
                f"solver {binding.strategy_name!r} is not a fixed-step "
                "solver; the sequential reference mirrors the batch loop"
            )
        x = network.initial_state()
        t = 0.0
        rows: Dict[str, List[float]] = {path: [] for path in record_paths}
        instance_times: List[float] = []

        def snapshot(t: float, x: np.ndarray) -> None:
            network.evaluate(t, x)
            instance_times.append(t)
            for path, port in ports.items():
                rows[path].append(port.read_scalar())

        step = 0
        for leaf in network.order:
            leaf.on_sync(t)
        while t < t_end - 1e-12:
            hh = min(h, t_end - t)
            if step % record_every == 0:
                snapshot(t, x)
            result = binding.step(network.rhs, t, x, hh)
            x = result.y
            t = result.t
            minor_steps += 1
            step += 1
            for leaf in network.order:
                leaf.on_sync(t)
        snapshot(t, x)

        if i == 0:
            times = instance_times
        for path in record_paths:
            series[path].append(rows[path])
        finals.append(x)

    return BatchResult(
        t=np.asarray(times, dtype=float),
        series={
            path: np.asarray(columns, dtype=float).T
            for path, columns in series.items()
        },
        final_states=np.stack(finals) if finals else np.zeros((0, 0)),
        n=n,
        stats={
            "instances": n,
            "minor_steps": minor_steps,
            "solver": str(solver),
            "sweeps": sorted(sweep_arrays),
        },
    )
