"""Setup shim for environments without the ``wheel`` package.

The offline environment ships setuptools 65 but no ``wheel``, so PEP-517
editable installs fail with "invalid command 'bdist_wheel'".  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``pip install -e .``, which pip falls back to) use the legacy develop
path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
