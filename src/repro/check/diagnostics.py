"""The diagnostic vocabulary of the static checker.

A :class:`Diagnostic` is one finding: a *stable code* (``STR001``,
``SM002``, ``W8``, ...) that tools and CI can match on, a severity, the
qualified path of the offending element, a human message, optional
machine-readable ``details`` and an optional machine-applicable
:class:`FixIt`.

Codes are stable API: tests pin them, suppressions name them, and the
service gate reports them — renaming a code is a breaking change.
Severities form a total order (``info < warning < error``) so thresholds
like ``--fail-on=warning`` are a simple rank comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

#: the three severity levels, in ascending order of badness
INFO = "info"
WARNING = "warning"
ERROR = "error"

SEVERITIES = (INFO, WARNING, ERROR)
_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Ascending rank of a severity name (unknown names are rejected)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


def worst_severity(severities) -> Optional[str]:
    """The highest-ranked severity in an iterable, or None if empty."""
    worst: Optional[str] = None
    for severity in severities:
        if worst is None or severity_rank(severity) > severity_rank(worst):
            worst = severity
    return worst


@dataclass(frozen=True)
class FixIt:
    """A machine-applicable repair for one diagnostic.

    ``apply`` mutates the checked model in place (remove the shadowed
    transition, delete the dead block and its flows, ...).  Fix-its are
    conservative: a rule only attaches one when the repair is provably
    behaviour-preserving for the *reported defect* — applying every
    fix-it and re-linting must converge to a clean model (the property
    test in ``tests/check/test_fixits.py`` holds the checker to that).
    """

    description: str
    apply: Callable[[], None] = field(compare=False)

    def __call__(self) -> None:
        self.apply()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixIt({self.description!r})"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static checker.

    Field order matters: ``(code, severity, subject, message)`` mirrors
    the legacy :class:`~repro.core.validation.Violation` so the W-rule
    compatibility subclass can be constructed positionally.
    """

    code: str       # stable rule code, e.g. "STR001", "SM002", "W8"
    severity: str   # "info" | "warning" | "error"
    subject: str    # qualified path of the offending element
    message: str
    #: optional machine-applicable repair
    fixit: Optional[FixIt] = None
    #: machine-readable extras (cycle paths, guard/trigger info, ...)
    details: Optional[Mapping[str, Any]] = None

    def __str__(self) -> str:
        return f"[{self.code}/{self.severity}] {self.subject}: {self.message}"

    @property
    def rank(self) -> int:
        return severity_rank(self.severity)

    def to_json(self) -> dict:
        """A plain-dict rendering for ``--format=json`` and artefacts."""
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
        }
        if self.details:
            out["details"] = dict(self.details)
        if self.fixit is not None:
            out["fixit"] = self.fixit.description
        return out


def apply_fixits(diagnostics) -> int:
    """Apply every attached fix-it; returns how many were applied.

    The caller is expected to re-run the checks afterwards — repairs can
    cascade (removing a dead block may orphan its upstream source, which
    the next pass then flags and repairs in turn).
    """
    applied = 0
    for diagnostic in diagnostics:
        if diagnostic.fixit is not None:
            diagnostic.fixit()
            applied += 1
    return applied
