"""Code generation from hybrid models.

The paper's pitch is a single platform "from requirement analysis, model
design, simulation, until generation code".  This package closes the last
step for the continuous (streamer) half of a model:

* :mod:`repro.codegen.pygen` — a standalone Python module (no ``repro``
  import) with an RK4 integration loop; round-trip tested against the
  library simulation in bench S3;
* :mod:`repro.codegen.cgen` — equivalent C99 (single translation unit,
  CSV output), validated structurally (the offline CI has no compiler);
* :mod:`repro.codegen.common` — the shared lowering: flatten the diagram,
  name signals/states, and emit per-block output/derivative expressions.

Supported blocks: every continuous block of :mod:`repro.dataflow` plus
ZOH/UnitDelay/DiscretePID sampled blocks.  Custom streamers raise
:class:`~repro.codegen.common.UnsupportedBlockError` — generate from
library blocks or extend the emitter registry.
"""

from repro.codegen.common import CodegenError, UnsupportedBlockError, lower
from repro.codegen.pygen import generate_python
from repro.codegen.cgen import generate_c
from repro.codegen.smgen import (
    SMGenError,
    flatten_machine,
    generate_statemachine_c,
    generate_statemachine_python,
)

__all__ = [
    "CodegenError",
    "SMGenError",
    "UnsupportedBlockError",
    "flatten_machine",
    "generate_c",
    "generate_python",
    "generate_statemachine_c",
    "generate_statemachine_python",
    "lower",
]
