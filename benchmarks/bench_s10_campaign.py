"""Experiment S10 — scenario campaign throughput and coverage saturation.

The campaign engine's cost model has two axes: how fast scenarios move
through the differential oracles (scenarios/sec, batch-family vectorised
path vs the sequential reference it is checked against), and how fast
the steered campaign saturates its coverage universes (the whole point
of steering: fewer scenarios to the same coverage).  Both land in
``BENCH_S10.json``.
"""

import time

from benchmarks.conftest import pid_plant_diagram
from repro.core.batch import BatchSimulator, simulate_sequential
from repro.scenarios.campaign import (
    CampaignConfig,
    CampaignRunner,
    execute_scenario,
)
from repro.scenarios.coverage import DIMENSIONS

T_END = 0.1
BACKENDS = ["compiled-python"]


def _config(**overrides):
    base = dict(
        seed=0, t_end=T_END, backends=BACKENDS, workers=4,
        round_size=16,
    )
    base.update(overrides)
    return CampaignConfig(**base)


def test_s10_batch_vs_sequential_path(report, bench_json):
    """One batch-family workload: vectorised vs N interpreter loops."""
    n = 32
    sim = BatchSimulator(
        pid_plant_diagram(0), n, solver="rk4", h=1.0 / 512.0,
        records=["plant.out"],
    )
    sim.run(0.01)  # warm the compiled program

    start = time.perf_counter()
    sim.run(0.5)
    batch_wall = time.perf_counter() - start

    start = time.perf_counter()
    simulate_sequential(
        lambda: pid_plant_diagram(0), n, 0.5, solver="rk4",
        h=1.0 / 512.0, records=["plant.out"],
    )
    sequential_wall = time.perf_counter() - start

    report("S10: batch vs sequential scenario path (N=32 instances)", [
        f"sequential: {sequential_wall * 1e3:8.1f} ms "
        f"({n / sequential_wall:6.1f} instances/s)",
        f"batch     : {batch_wall * 1e3:8.1f} ms "
        f"({n / batch_wall:6.1f} instances/s)",
        f"ratio     : {sequential_wall / batch_wall:8.1f}x",
    ])
    bench_json("s10", {
        "batch_path": {
            "n_instances": n,
            "sequential_wall_ms": sequential_wall * 1e3,
            "batch_wall_ms": batch_wall * 1e3,
            "speedup": sequential_wall / batch_wall,
        },
    })


def test_s10_campaign_throughput(report, bench_json):
    """Scenarios/sec through the JobEngine, parallel vs serial."""
    count = 32
    walls = {}
    for workers in (1, 4):
        runner = CampaignRunner(_config(count=count, workers=workers))
        start = time.perf_counter()
        result = runner.run()
        walls[workers] = time.perf_counter() - start
        assert result.ok, result.divergences

    report(f"S10: campaign throughput ({count} scenarios, steered)", [
        f"workers=1: {walls[1]:6.2f} s "
        f"({count / walls[1]:6.1f} scenarios/s)",
        f"workers=4: {walls[4]:6.2f} s "
        f"({count / walls[4]:6.1f} scenarios/s)",
        f"parallel speedup: {walls[1] / walls[4]:5.2f}x",
    ])
    bench_json("s10", {
        "campaign_throughput": {
            "count": count,
            "serial_wall_s": walls[1],
            "parallel_wall_s": walls[4],
            "serial_scenarios_per_s": count / walls[1],
            "parallel_scenarios_per_s": count / walls[4],
        },
    })


def test_s10_coverage_saturation(report, bench_json):
    """Coverage fraction per dimension after each steered round."""
    rounds, round_size = 6, 16
    config = _config(count=rounds * round_size)
    runner = CampaignRunner(config)
    curve = []
    index = 0
    for __ in range(rounds):
        specs, index = runner._select_round(index, round_size)
        for spec in specs:
            outcome = execute_scenario(spec, config)
            assert outcome.ok, outcome.detail
            runner.ledger.merge_outcome(outcome.coverage)
        curve.append({
            dim: round(runner.ledger.fraction(dim), 4)
            for dim in DIMENSIONS
        })

    # saturation is monotone: the ledger only ever grows
    for dim in DIMENSIONS:
        fractions = [point[dim] for point in curve]
        assert fractions == sorted(fractions)

    report("S10: coverage saturation over steered rounds "
           f"({rounds} x {round_size} scenarios)", [
        f"round {i + 1}: " + "  ".join(
            f"{dim}={point[dim]:.0%}" for dim in DIMENSIONS
        )
        for i, point in enumerate(curve)
    ])
    bench_json("s10", {
        "coverage_saturation": {
            "rounds": rounds,
            "round_size": round_size,
            "curve": curve,
        },
    })
