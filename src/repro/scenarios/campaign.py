"""The campaign driver: thousands of scenarios, one coverage ledger.

:class:`CampaignRunner` walks a deterministic seed stream, turns each
seed into a :class:`~repro.scenarios.spec.ScenarioSpec`, and pushes the
scenarios through the service :class:`~repro.service.JobEngine` as
:class:`ScenarioJob` specs.  Each family's executor is a *differential
oracle*: the scenario passes only when two independent computations of
the same workload agree bitwise (interpreter vs compiled backends at
O0/O1/O2, batch vs sequential, crashed-and-recovered vs uninterrupted,
first run vs second run) — or, for the ``defect`` family, when the
static checker fires exactly the codes the builder plants.  The one
sanctioned relaxation: comparisons *across* opt levels tolerate
last-ulp drift when the O2 fuser reassociated arithmetic; backend-vs-
interpreter comparisons at the same level stay exact always.

Coverage steering selects *which seeds run*, never what a seed means:
every round draws ``round_size * lookahead`` candidate specs off the
stream and keeps the ``round_size`` whose predicted contributions hit
the most still-unexercised coverage keys.  Replay of a failing seed is
therefore exact by construction (`ScenarioSpec.from_seed` is pure).

The mutation self-test (``mutate_seeds``) corrupts the *candidate* side
of a scenario's comparison just before the differential check — the
standing proof that the oracle actually looks at the data, the
campaign's analogue of a mutation-testing kill.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

import numpy as np

from repro.scenarios.coverage import CampaignCoverage, DIMENSIONS
from repro.scenarios.spec import DEMOTING_SOLVERS, ScenarioSpec

#: 2^-9 step: every generated time grid is binary-exact, so equality
#: failures are real divergences, never accumulation-order noise
DEFAULT_H = 1.0 / 512.0


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class CampaignConfig:
    """Everything a campaign run (or a single replay) depends on."""

    count: int = 200
    seed: int = 0
    workers: int = 4
    #: compiled backends to differentially compare against the
    #: interpreter (None: compiled-python, plus native-c when usable)
    backends: Optional[List[str]] = None
    steer: bool = True
    round_size: int = 32
    #: candidate pool multiplier per steering round
    lookahead: int = 4
    t_end: float = 0.25
    h: float = DEFAULT_H
    #: spool directory for fault-family checkpoints (None: a tempdir)
    work_dir: Optional[str] = None
    #: scenario seeds whose comparisons are deliberately corrupted
    mutate_seeds: FrozenSet[int] = frozenset()
    #: optimizer levels the differential families sweep; every backend
    #: is compared against the interpreter at each of these
    opt_levels: Tuple[int, ...] = (0, 1, 2)
    #: relative tolerance for cross-level comparisons whose O2 plan
    #: reassociated arithmetic (fused ops); exact equality elsewhere
    reassoc_rtol: float = 1e-9

    def resolved_backends(self) -> List[str]:
        if self.backends is not None:
            return list(self.backends)
        from repro.core.backend import has_c_compiler

        names = ["compiled-python"]
        if has_c_compiler():
            names.append("native-c")
        return names


# ----------------------------------------------------------------------
# outcomes
# ----------------------------------------------------------------------
@dataclass
class ScenarioOutcome:
    """What one executed scenario reports back to the runner."""

    seed: int
    family: str
    ok: bool
    detail: str = ""
    coverage: Dict[str, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "family": self.family,
            "ok": self.ok,
            "detail": self.detail,
            "coverage": {
                dim: sorted(values)
                for dim, values in self.coverage.items()
            },
        }


class _Recorder:
    """Per-scenario coverage scratchpad (merged by the runner)."""

    def __init__(self) -> None:
        self.sets: Dict[str, Set[str]] = {dim: set() for dim in DIMENSIONS}

    def rules(self, codes) -> None:
        self.sets["rules"].update(codes)

    def solver(self, name: str) -> None:
        self.sets["solvers"].add(name)

    def backend(self, name: str) -> None:
        self.sets["backends"].add(name)

    def plan(self, plan) -> None:
        self.sets["opcodes"].update(
            type(node.leaf).__name__ for node in plan.nodes
        )

    def opt_report(self, plan) -> None:
        report = getattr(plan, "opt_report", None)
        if report is None:
            return
        for key, value in report.counts().items():
            if value:
                self.sets["passes"].add(key.split(".", 1)[0])

    def as_outcome(self) -> Dict[str, List[str]]:
        return {
            dim: sorted(values)
            for dim, values in self.sets.items() if values
        }


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def _diff_series(
    reference, candidate, label: str
) -> Optional[str]:
    """A divergence message comparing two ProgramResults, or None."""
    if not np.array_equal(reference.t, candidate.t):
        return f"{label}: time grids differ"
    if set(reference.series) != set(candidate.series):
        return (
            f"{label}: record keys differ "
            f"({sorted(reference.series)} vs {sorted(candidate.series)})"
        )
    for key in sorted(reference.series):
        if not np.array_equal(reference.series[key], candidate.series[key]):
            return f"{label}: series {key!r} diverges"
    if not np.array_equal(reference.final_state, candidate.final_state):
        return f"{label}: final states differ"
    return None


def _diff_series_tol(
    reference, candidate, label: str, rtol: float
) -> Optional[str]:
    """Like :func:`_diff_series`, but values compare within ``rtol``.

    Used only across optimizer levels whose plan *reassociated*
    arithmetic (O2 fusion): ``(a + b) + c`` and ``a + (b + c)`` differ
    in the last ulps, which is a property of float addition, not a
    miscompile.  Time grids and record keys must still match exactly —
    reassociation never changes the schedule.
    """
    if not np.array_equal(reference.t, candidate.t):
        return f"{label}: time grids differ"
    if set(reference.series) != set(candidate.series):
        return (
            f"{label}: record keys differ "
            f"({sorted(reference.series)} vs {sorted(candidate.series)})"
        )
    for key in sorted(reference.series):
        if not np.allclose(
            reference.series[key], candidate.series[key],
            rtol=rtol, atol=rtol, equal_nan=True,
        ):
            return f"{label}: series {key!r} diverges beyond rtol={rtol:g}"
    if not np.allclose(
        reference.final_state, candidate.final_state,
        rtol=rtol, atol=rtol, equal_nan=True,
    ):
        return f"{label}: final states differ beyond rtol={rtol:g}"
    return None


def _plan_reassociates(plan, level: int) -> bool:
    """Did this plan's optimizer actually reorder arithmetic?

    Only levels that allow reassociation (O2+) *and* whose report shows
    fused ops get the tolerance comparison; an O2 plan the fuser left
    untouched must still match bitwise.
    """
    if level < 2:
        return False
    report = getattr(plan, "opt_report", None)
    if report is None:
        return False
    return any(
        value for key, value in report.counts().items()
        if key.startswith("fuse.")
    )


def _mutate_result(result) -> None:
    """Corrupt one sample in-place (the self-test's injected bug)."""
    for key in sorted(result.series):
        series = result.series[key]
        if series.size:
            series[-1] = series[-1] + 1.0 if series[-1] == series[-1] else 1.0
            return


# ----------------------------------------------------------------------
# family executors
# ----------------------------------------------------------------------
def _run_differential(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """dag / dag_sampled / feedback / plant: backends across opt levels.

    The interpreter anchors every comparison: each level's interpreter
    run is compared against the base level (bitwise up to O1; within
    ``reassoc_rtol`` at O2 *when the plan actually fused/reassociated*,
    bitwise otherwise), and every compiled backend must match the
    interpreter *at its own level* bitwise — backend and interpreter
    execute the same optimized plan, so even a reassociated O2 plan
    leaves them no excuse to differ in a single ulp.
    """
    from repro.core.backend import CompileRequest, compile_program

    solver = spec.params.get("solver", "rk4")
    mutate = spec.seed in config.mutate_seeds
    levels = tuple(config.opt_levels) or (0,)
    interp: Dict[int, Any] = {}
    reassociated: Dict[int, bool] = {}
    for level in levels:
        request = CompileRequest(
            diagram=spec.build(), solver=solver, h=config.h,
            opt_level=level,
        )
        program = compile_program(request, "interpreter")
        rec.plan(program.plan)
        if level:
            rec.opt_report(program.plan)
        rec.backend(program.backend)
        rec.solver(solver)
        interp[level] = program.run(config.t_end)
        reassociated[level] = _plan_reassociates(program.plan, level)
    base = levels[0]
    for level in levels[1:]:
        label = f"interpreter O{level} vs O{base}"
        if reassociated[level]:
            detail = _diff_series_tol(
                interp[base], interp[level], label, config.reassoc_rtol,
            )
        else:
            detail = _diff_series(interp[base], interp[level], label)
        if detail:
            return detail
    for backend in config.resolved_backends():
        for level in levels:
            request = CompileRequest(
                diagram=spec.build(), solver=solver, h=config.h,
                opt_level=level,
            )
            program = compile_program(request, backend)
            rec.backend(program.backend)
            result = program.run(config.t_end)
            if mutate:
                _mutate_result(result)
            detail = _diff_series(
                interp[level], result,
                f"{backend} (ran {program.backend}) O{level} "
                "vs interpreter",
            )
            if detail:
                return detail
    return None


def _diff_batch(reference, candidate, label: str) -> Optional[str]:
    """Bitwise comparison of two batch results (``(T, n)`` series plus
    ``(n, n_state)`` final matrices)."""
    if not np.array_equal(reference.t, candidate.t):
        return f"{label}: time grids differ"
    if set(reference.series) != set(candidate.series):
        return f"{label}: record keys differ"
    for key in sorted(reference.series):
        if not np.array_equal(reference.series[key], candidate.series[key]):
            return f"{label}: series {key!r} diverges"
    if not np.array_equal(reference.final_states, candidate.final_states):
        return f"{label}: final states differ"
    return None


def _diff_batch_tol(
    reference, candidate, label: str, rtol: float
) -> Optional[str]:
    """:func:`_diff_batch` with value tolerance (reassociated O2 plans
    only); grids and keys still compare exactly."""
    if not np.array_equal(reference.t, candidate.t):
        return f"{label}: time grids differ"
    if set(reference.series) != set(candidate.series):
        return f"{label}: record keys differ"
    for key in sorted(reference.series):
        if not np.allclose(
            reference.series[key], candidate.series[key],
            rtol=rtol, atol=rtol, equal_nan=True,
        ):
            return f"{label}: series {key!r} diverges beyond rtol={rtol:g}"
    if not np.allclose(
        reference.final_states, candidate.final_states,
        rtol=rtol, atol=rtol, equal_nan=True,
    ):
        return f"{label}: final states differ beyond rtol={rtol:g}"
    return None


def _run_batch(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """batch: the vectorised backend — and, with a toolchain, the
    N-instance C kernel — against N sequential runs.

    The native-batch leg runs the differential matrix across the
    campaign's opt levels: bitwise against ``simulate_sequential`` up to
    O1 (and at O2 when the fuser left the plan alone), within
    ``reassoc_rtol`` when the O2 plan actually reassociated arithmetic
    (``_plan_reassociates``).  Without a compiler the leg is skipped —
    the NumPy comparison above already covered the semantics.
    """
    from repro.core.backend.base import KERNEL_SOLVERS
    from repro.core.backend.native import has_c_compiler
    from repro.core.batch import BatchSimulator, simulate_sequential

    params = spec.params
    n = params["n"]
    solver = params["solver"]
    diagram = spec.build()
    sweeps = None
    if params.get("sweep"):
        gains = sorted(
            name for name, sub in diagram.subs.items()
            if type(sub).__name__ == "Gain"
        )
        if gains:
            base = float(diagram.subs[gains[0]].params["k"])
            sweeps = {
                f"{gains[0]}.k": [
                    round(base * (0.8 + 0.1 * i), 6) for i in range(n)
                ],
            }
    simulator = BatchSimulator(
        diagram=diagram, n=n, solver=solver, h=config.h, sweeps=sweeps,
    )
    rec.plan(simulator.program.plan)
    batch = simulator.run(config.t_end)
    if spec.seed in config.mutate_seeds:
        for key in sorted(batch.series):
            if batch.series[key].size:
                batch.series[key][-1, -1] += 1.0
                break
    sequential = simulate_sequential(
        spec.build, n, config.t_end, solver=solver, h=config.h,
        sweeps=sweeps,
    )
    rec.solver(solver)
    rec.backend("batch")
    rec.backend("interpreter")
    detail = _diff_batch(sequential, batch, "batch vs sequential")
    if detail:
        return detail
    if not has_c_compiler() or solver not in KERNEL_SOLVERS:
        return None
    for level in tuple(config.opt_levels) or (0,):
        native_sim = BatchSimulator(
            diagram=spec.build(), n=n, solver=solver, h=config.h,
            sweeps=sweeps, opt_level=level, backend="native-batch",
        )
        if native_sim.backend_name != "native-batch":
            # an unlowerable model demoted to the NumPy program, which
            # the comparison above already vetted at this level
            continue
        rec.backend("native-batch")
        if level:
            rec.opt_report(native_sim.plan)
        native = native_sim.run(config.t_end)
        label = f"native-batch O{level} vs sequential"
        if _plan_reassociates(native_sim.plan, level):
            detail = _diff_batch_tol(
                sequential, native, label, config.reassoc_rtol,
            )
        else:
            detail = _diff_batch(sequential, native, label)
        if detail:
            return detail
    return None


def _run_solver(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """solver: adaptive/implicit kinds — rerun determinism + demotion."""
    from repro.core.backend import CompileRequest, compile_program

    solver = spec.params["solver"]
    assert solver in DEMOTING_SOLVERS
    results = []
    for attempt in range(2):
        request = CompileRequest(
            diagram=spec.build(), solver=solver, h=config.h, opt_level=0,
        )
        program = compile_program(request, "interpreter")
        if attempt == 0:
            rec.plan(program.plan)
        results.append(program.run(config.t_end))
    rec.solver(solver)
    rec.backend("interpreter")
    if spec.seed in config.mutate_seeds:
        _mutate_result(results[1])
    detail = _diff_series(results[0], results[1], f"{solver} rerun")
    if detail:
        return detail
    # a compiled-backend request must demote, not silently miscompile
    request = CompileRequest(
        diagram=spec.build(), solver=solver, h=config.h, opt_level=0,
    )
    program = compile_program(request, "compiled-python")
    if program.backend != "interpreter":
        return (
            f"solver {solver!r} unexpectedly compiled on "
            f"{program.backend}"
        )
    return None


def _run_fault(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """fault: crash + checkpoint resume must land on the same finals."""
    from repro.resilience import FaultInjector
    from repro.service import JobEngine
    from repro.service.jobs import SingleRunJob

    t_end = 0.4
    crash_step = spec.params["crash_step"]
    if config.work_dir:
        spool = os.path.join(config.work_dir, f"fault-{spec.seed}")
        os.makedirs(spool, exist_ok=True)
    else:
        spool = tempfile.mkdtemp(prefix=f"scenario-fault-{spec.seed}-")
    engine = JobEngine(workers=1)
    try:
        baseline = engine.submit(SingleRunJob(
            name=f"baseline-{spec.seed}", model_factory=spec.build,
            t_end=t_end, validate=False,
        )).result(timeout=120)
        injector = FaultInjector(seed=spec.seed).crash_at_step(crash_step)
        recovered = engine.submit(SingleRunJob(
            name=f"faulted-{spec.seed}", model_factory=spec.build,
            t_end=t_end, validate=False, retries=2, backoff=0.0,
            checkpoint_dir=spool, checkpoint_every_steps=10,
            fault_injector=injector,
        )).result(timeout=120)
    finally:
        engine.shutdown()
    rec.backend("interpreter")
    rec.solver("rk4")

    def matrix(trajectory) -> np.ndarray:
        states = np.asarray(trajectory.states, dtype=float)
        return np.column_stack([
            np.asarray(trajectory.times, dtype=float),
            states.reshape(len(trajectory), -1),
        ])

    probes = {name: matrix(t) for name, t in recovered.probes.items()}
    reference = {name: matrix(t) for name, t in baseline.probes.items()}
    if spec.seed in config.mutate_seeds and probes:
        probes[sorted(probes)[0]][-1, -1] += 1.0
    if set(probes) != set(reference):
        return "fault recovery: probe sets differ"
    for name in sorted(probes):
        if probes[name].shape != reference[name].shape:
            return f"fault recovery: probe {name!r} lengths differ"
        if not np.array_equal(probes[name], reference[name]):
            return f"fault recovery: probe {name!r} diverges"
    return None


def _probe_arrays(model, names: Sequence[str]) -> Dict[str, np.ndarray]:
    out = {}
    for name in names:
        trajectory = model.probe(name)
        out[name] = np.column_stack([
            np.asarray(trajectory.times, dtype=float),
            np.asarray(trajectory.states, dtype=float).reshape(
                len(trajectory), -1
            ),
        ])
    return out


def _run_multirate(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """multirate: two-rate threads — rerun determinism + lint harvest."""
    from repro.check import run_checks

    names = ["fast_y", "slow_y"]
    if spec.params["feedthrough"]:
        names.append("tap_y")
    runs = []
    for __ in range(2):
        model = spec.build()
        model.run(0.2, validate=False)
        runs.append(_probe_arrays(model, names))
    result = run_checks(spec.build())
    rec.rules(d.code for d in result.diagnostics)
    rec.solver("rk4")
    if spec.seed in config.mutate_seeds:
        runs[1][names[0]][-1, -1] += 1.0
    for name in names:
        if runs[0][name].shape != runs[1][name].shape:
            return f"multirate rerun: probe {name!r} lengths differ"
        if not np.array_equal(runs[0][name], runs[1][name]):
            return f"multirate rerun: probe {name!r} diverges"
    return None


def _run_defect(
    spec: ScenarioSpec, config: CampaignConfig, rec: _Recorder
) -> Optional[str]:
    """defect: the planted flaw's codes must actually fire."""
    from repro.check import CheckConfig, run_checks
    from repro.scenarios.defects import DEFECTS

    defect = DEFECTS[spec.params["defect"]]
    result = run_checks(
        defect.builder(), config=CheckConfig(**defect.config),
    )
    fired = {d.code for d in result.diagnostics}
    rec.rules(fired)
    expected = set(defect.expected)
    if spec.seed in config.mutate_seeds:
        expected.add("FAKE999")  # an impossible code: must be missed
    missing = expected - fired
    if missing:
        return (
            f"defect {spec.params['defect']!r}: expected codes not "
            f"fired: {sorted(missing)} (fired: {sorted(fired)})"
        )
    return None


_EXECUTORS = {
    "dag": _run_differential,
    "dag_sampled": _run_differential,
    "feedback": _run_differential,
    "plant": _run_differential,
    "batch": _run_batch,
    "solver": _run_solver,
    "fault": _run_fault,
    "multirate": _run_multirate,
    "defect": _run_defect,
}


def execute_scenario(
    spec: ScenarioSpec, config: CampaignConfig
) -> ScenarioOutcome:
    """Run one scenario through its family oracle."""
    recorder = _Recorder()
    executor = _EXECUTORS.get(spec.family)
    if executor is None:
        return ScenarioOutcome(
            seed=spec.seed, family=spec.family, ok=False,
            detail=f"unknown family {spec.family!r}",
        )
    try:
        detail = executor(spec, config, recorder)
    except Exception as exc:  # an oracle crash is a divergence too
        detail = f"executor raised {type(exc).__name__}: {exc}"
    return ScenarioOutcome(
        seed=spec.seed, family=spec.family, ok=detail is None,
        detail=detail or "", coverage=recorder.as_outcome(),
    )


# ----------------------------------------------------------------------
# the engine-facing job spec
# ----------------------------------------------------------------------
def _scenario_job_class():
    """Build the ScenarioJob dataclass lazily (keeps the service layer
    an execution detail of the runner, not an import-time dependency)."""
    global ScenarioJob
    if ScenarioJob is not None:
        return ScenarioJob
    from repro.service.jobs import JobSpec

    @dataclass
    class _ScenarioJob(JobSpec):
        scenario: Optional[ScenarioSpec] = None
        campaign: Optional[CampaignConfig] = None

        kind = "scenario"

        def execute(self, ctx) -> ScenarioOutcome:
            ctx.checkpoint()
            return execute_scenario(self.scenario, self.campaign)

    ScenarioJob = _ScenarioJob
    return ScenarioJob


ScenarioJob: Optional[type] = None


# ----------------------------------------------------------------------
# reports
# ----------------------------------------------------------------------
@dataclass
class CampaignReport:
    """The JSON-serialisable result of one campaign."""

    master_seed: int
    count: int
    families: Dict[str, int]
    divergences: List[Dict[str, Any]]
    coverage: Dict[str, Dict[str, Any]]
    steered: bool
    backends: List[str]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def failing_seeds(self) -> List[int]:
        return [entry["seed"] for entry in self.divergences]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "master_seed": self.master_seed,
            "count": self.count,
            "ok": self.ok,
            "families": dict(sorted(self.families.items())),
            "divergences": self.divergences,
            "failing_seeds": self.failing_seeds(),
            "coverage": self.coverage,
            "steered": self.steered,
            "backends": self.backends,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @staticmethod
    def load(path: str) -> "CampaignReport":
        with open(path) as handle:
            data = json.load(handle)
        return CampaignReport(
            master_seed=data["master_seed"],
            count=data["count"],
            families=dict(data["families"]),
            divergences=list(data["divergences"]),
            coverage=dict(data["coverage"]),
            steered=bool(data["steered"]),
            backends=list(data["backends"]),
        )

    def render(self) -> str:
        lines = [
            f"campaign: {self.count} scenarios, master seed "
            f"{self.master_seed}, backends {', '.join(self.backends)}"
            + (" (steered)" if self.steered else ""),
            "families: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.families.items())
            ),
        ]
        for dim, entry in self.coverage.items():
            missing = entry["missing"]
            lines.append(
                f"coverage {dim:<9} {len(entry['hit']):3d}"
                f"/{len(entry['universe']):<3d} ({entry['fraction']:6.1%})"
                + (f"  missing: {', '.join(missing)}" if missing else "")
            )
        if self.divergences:
            lines.append(f"DIVERGENCES: {len(self.divergences)}")
            for entry in self.divergences:
                lines.append(
                    f"  seed {entry['seed']} ({entry['family']}): "
                    f"{entry['detail']}"
                )
            lines.append(
                "replay any failure: python -m repro.scenarios replay "
                f"--seed {self.divergences[0]['seed']}"
            )
        else:
            lines.append("no divergences")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Drives one campaign: seed stream -> steering -> jobs -> ledger."""

    def __init__(self, config: Optional[CampaignConfig] = None) -> None:
        self.config = config or CampaignConfig()
        self.ledger = CampaignCoverage()
        self.outcomes: List[ScenarioOutcome] = []

    # -- the deterministic seed stream ---------------------------------
    def seed_for(self, index: int) -> int:
        """Scenario seed ``index`` of the master stream (stable across
        processes: pure integer arithmetic, no hashing)."""
        value = (
            self.config.seed * 1_000_003 + index * 2_654_435_761 + 12_345
        )
        return value % (2 ** 31)

    # -- steering ------------------------------------------------------
    def _score(self, spec: ScenarioSpec) -> int:
        score = 0
        for dim, predicted in spec.targets().items():
            score += len(predicted & self.ledger.unexercised(dim))
        return score

    def _select_round(
        self, start_index: int, want: int
    ) -> Tuple[List[ScenarioSpec], int]:
        """The specs to run this round and the next stream index."""
        if not self.config.steer:
            specs = [
                ScenarioSpec.from_seed(self.seed_for(i))
                for i in range(start_index, start_index + want)
            ]
            return specs, start_index + want
        pool_size = max(want, want * max(1, self.config.lookahead))
        candidates = [
            ScenarioSpec.from_seed(self.seed_for(i))
            for i in range(start_index, start_index + pool_size)
        ]
        # self-test seeds always run: scoring them to the front keeps
        # ``--mutate-seed`` meaningful under steering
        mutated = self.config.mutate_seeds
        scored = sorted(
            enumerate(candidates),
            key=lambda pair: (
                pair[1].seed not in mutated,
                -self._score(pair[1]),
                pair[0],
            ),
        )
        chosen = sorted(index for index, __ in scored[:want])
        return [candidates[i] for i in chosen], start_index + pool_size

    # -- execution -----------------------------------------------------
    def run(self) -> CampaignReport:
        from repro.service import JobEngine

        config = self.config
        job_class = _scenario_job_class()
        engine = JobEngine(
            workers=config.workers,
            queue_limit=max(64, 2 * config.round_size),
        )
        index = 0
        try:
            while len(self.outcomes) < config.count:
                want = min(
                    config.round_size, config.count - len(self.outcomes),
                )
                specs, index = self._select_round(index, want)
                handles = [
                    engine.submit(job_class(
                        name=f"scenario-{spec.seed}",
                        scenario=spec, campaign=config,
                    ))
                    for spec in specs
                ]
                round_outcomes = [
                    handle.result(timeout=600) for handle in handles
                ]
                # merge in seed-stream order: the ledger (and therefore
                # next round's steering) is independent of worker timing
                for outcome in round_outcomes:
                    self.outcomes.append(outcome)
                    self.ledger.merge_outcome(outcome.coverage)
        finally:
            engine.shutdown()
        return self.report()

    def run_over_cluster(
        self, url: str, timeout: float = 600.0
    ) -> CampaignReport:
        """Drive the campaign against a running ``repro.cluster`` HTTP
        endpoint instead of an in-process JobEngine.

        Steering stays coordinator-side (the ledger merges in seed-
        stream order, exactly as :meth:`run`); only scenario execution
        is remote — each selected seed becomes one ``kind="scenario"``
        cluster job, and the outcome is rebuilt from the JSON result
        summary.  ``mutate_seeds`` does not travel: the cluster executes
        the honest oracle, so run self-tests with the local runner.
        """
        from repro.cluster.client import ClusterClient
        from repro.cluster.requests import ClusterJobRequest

        client = ClusterClient(url)
        config = self.config
        params: Dict[str, Any] = {"t_end": config.t_end, "h": config.h}
        if config.backends is not None:
            params["backends"] = list(config.backends)
        index = 0
        while len(self.outcomes) < config.count:
            want = min(
                config.round_size, config.count - len(self.outcomes),
            )
            specs, index = self._select_round(index, want)
            job_ids = [
                client.submit(ClusterJobRequest(
                    kind="scenario",
                    params={"seed": spec.seed, **params},
                    client="campaign", checkpoint=False,
                    name=f"scenario-{spec.seed}",
                ))
                for spec in specs
            ]
            for spec, job_id in zip(specs, job_ids):
                summary = client.result(job_id, timeout=timeout)["result"]
                outcome = ScenarioOutcome(
                    seed=int(summary.get("seed", spec.seed)),
                    family=str(summary.get("family", spec.family)),
                    ok=bool(summary.get("ok", False)),
                    detail=str(summary.get("detail", "")),
                    coverage={
                        dim: list(values)
                        for dim, values in (
                            summary.get("coverage") or {}
                        ).items()
                    },
                )
                self.outcomes.append(outcome)
                self.ledger.merge_outcome(outcome.coverage)
        return self.report()

    def report(self) -> CampaignReport:
        config = self.config
        return CampaignReport(
            master_seed=config.seed,
            count=len(self.outcomes),
            families=dict(Counter(o.family for o in self.outcomes)),
            divergences=[
                o.to_dict() for o in self.outcomes if not o.ok
            ],
            coverage=self.ledger.as_dict(),
            steered=config.steer,
            backends=config.resolved_backends(),
        )


def replay(
    seed: int, config: Optional[CampaignConfig] = None
) -> ScenarioOutcome:
    """Re-execute exactly the scenario a campaign ran for ``seed``."""
    return execute_scenario(
        ScenarioSpec.from_seed(seed), config or CampaignConfig(),
    )
