"""Diagram: a composite streamer with convenient name-based wiring.

``Diagram`` wraps the raw composite-streamer API in the style block
diagrams are usually described::

    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=2.0, ki=1.0))
    d.add(FirstOrderLag("plant", tau=1.0))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    d.expose("y", "plant.out")          # boundary OUT DPort

``connect`` inserts relays automatically when one source feeds several
destinations (the paper's relay stereotype, W2), so diagram authors never
build fan-out chains by hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.dport import Direction, DPort
from repro.core.streamer import Streamer, StreamerError


class DiagramError(Exception):
    """Raised on bad diagram wiring."""


class Diagram(Streamer):
    """A composite streamer with path-addressed connect/expose helpers."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._pending: Dict[int, List[DPort]] = {}  # src pad -> dst pads
        self._pad_of: Dict[int, DPort] = {}
        self._relay_count = 0
        self._finalised = False

    # ------------------------------------------------------------------
    def add(self, streamer: Streamer) -> Streamer:
        """Add a block or sub-diagram."""
        return self.add_sub(streamer)

    def port_at(self, path: str) -> DPort:
        """Resolve ``"block.port"`` (or nested ``"sub.block.port"``)."""
        parts = path.split(".")
        if len(parts) < 2:
            raise DiagramError(
                f"port path needs at least 'block.port': {path!r}"
            )
        node: Streamer = self
        for name in parts[:-1]:
            try:
                node = node.sub(name)
            except StreamerError:
                raise DiagramError(
                    f"no block {name!r} under {node.path()}"
                ) from None
        try:
            return node.dport(parts[-1])
        except StreamerError:
            raise DiagramError(
                f"block {node.path()} has no DPort {parts[-1]!r}"
            ) from None

    def connect(self, source_path: str, target_path: str) -> None:
        """Queue a connection; fan-out relays materialise in finalise()."""
        if self._finalised:
            raise DiagramError(
                f"diagram {self.name!r} already finalised"
            )
        src = self.port_at(source_path)
        dst = self.port_at(target_path)
        self._pad_of[id(src)] = src
        self._pending.setdefault(id(src), []).append(dst)

    def expose(
        self, name: str, inner_path: str, direction: Optional[Direction] = None
    ) -> DPort:
        """Create a boundary DPort wired to an inner port.

        Direction defaults to the inner port's own direction: exposing an
        inner OUT makes a boundary OUT, an inner IN a boundary IN.
        """
        inner = self.port_at(inner_path)
        chosen = direction or inner.direction
        boundary = self.add_boundary(name, chosen, inner.flow_type)
        if chosen is Direction.OUT:
            self._pad_of[id(inner)] = inner
            self._pending.setdefault(id(inner), []).append(boundary)
        else:
            self._pad_of[id(boundary)] = boundary
            self._pending.setdefault(id(boundary), []).append(inner)
        return boundary

    # ------------------------------------------------------------------
    def finalise(self) -> "Diagram":
        """Materialise flows, inserting relay chains for fan-out (W2)."""
        if self._finalised:
            return self
        self._finalised = True
        for src_id, dsts in self._pending.items():
            src = self._pad_of[src_id]
            self._wire(src, dsts)
        self._pending.clear()
        return self

    def _wire(self, src: DPort, dsts: List[DPort]) -> None:
        if len(dsts) == 1:
            self.add_flow(src, dsts[0])
            return
        # fan-out: a chain of relays, each providing one tap plus the tail
        current = src
        remaining = list(dsts)
        while len(remaining) > 2:
            relay = self.add_relay(
                f"__relay{self._relay_count}", src.flow_type
            )
            self._relay_count += 1
            self.add_flow(current, relay.input)
            self.add_flow(relay.out_a, remaining.pop(0))
            current = relay.out_b
        relay = self.add_relay(f"__relay{self._relay_count}", src.flow_type)
        self._relay_count += 1
        self.add_flow(current, relay.input)
        self.add_flow(relay.out_a, remaining[0])
        self.add_flow(relay.out_b, remaining[1])

    # convenience: leaves() et al. require finalisation first
    def leaves(self):  # type: ignore[override]
        if not self._finalised:
            self.finalise()
        return super().leaves()

    def all_flows(self):  # type: ignore[override]
        if not self._finalised:
            self.finalise()
        return super().all_flows()
