"""Snapshot codec: wire format, typed failures, capture/restore identity."""

from __future__ import annotations

import numpy as np
import pytest

from tests.resilience.conftest import (
    assert_probes_bitwise, build_control_model, reference_run,
    run_until_crash,
)

from repro.resilience import (
    FingerprintMismatchError, SNAPSHOT_VERSION, Snapshot, SnapshotCodec,
    SnapshotCorruptError, SnapshotError, SnapshotVersionError,
    corrupt_bytes, decode_blob, decode_snapshot, encode_blob,
    encode_snapshot,
)
from repro.umlrt.signal import Message, Priority


class TestBlobFormat:
    def test_round_trip_preserves_types(self):
        doc = {
            "f": 0.1 + 0.2,
            "i": 42,
            "none": None,
            "flag": True,
            "s": "text",
            "arr": np.linspace(0.0, 1.0, 7),
            "ints": np.arange(4, dtype=np.int64),
            "tup": (1.0, "two", (3,)),
            "nested": {"list": [1.0, None, {"x": 2}]},
        }
        out = decode_blob(encode_blob(doc))
        assert out["f"] == doc["f"]  # shortest-repr float round trip
        assert out["i"] == 42 and out["none"] is None and out["flag"] is True
        assert np.array_equal(out["arr"], doc["arr"])
        assert out["arr"].dtype == doc["arr"].dtype
        assert out["ints"].dtype == np.int64
        assert out["tup"] == (1.0, "two", (3,))
        assert out["nested"]["list"][2]["x"] == 2

    def test_float_bitwise_round_trip(self):
        values = np.random.default_rng(0).standard_normal(64)
        out = decode_blob(encode_blob({"v": [float(x) for x in values]}))
        assert all(a == b for a, b in zip(out["v"], values))

    def test_message_round_trip(self):
        msg = Message(
            signal="dip", data=(1.0, "x"), priority=Priority.HIGH,
            timestamp=0.25,
        )
        out = decode_blob(encode_blob({"m": msg}))["m"]
        assert out.signal == "dip" and out.data == (1.0, "x")
        assert out.priority is Priority.HIGH and out.timestamp == 0.25

    def test_live_object_rejected_with_path(self):
        class Alive:
            pass

        with pytest.raises(SnapshotError, match=r"\$\.x\.y"):
            encode_blob({"x": {"y": Alive()}})

    def test_reserved_keys_rejected(self):
        with pytest.raises(SnapshotError):
            encode_blob({"__nd__": 1})

    def test_corruption_detected(self):
        data = encode_blob({"x": 1.0})
        header_end = data.find(b"\n") + 1
        with pytest.raises(SnapshotCorruptError):
            decode_blob(corrupt_bytes(data, header_end + 2))

    def test_truncation_detected(self):
        data = encode_blob({"x": list(range(100))})
        with pytest.raises(SnapshotCorruptError):
            decode_blob(data[:-10])

    def test_bad_magic_detected(self):
        with pytest.raises(SnapshotCorruptError):
            decode_blob(b"NOTASNAP 1 0 2\n{}")

    def test_future_version_refused(self):
        snapshot = Snapshot(
            version=SNAPSHOT_VERSION, fingerprint="f", t=0.0, step=0,
            payload={},
        )
        data = encode_snapshot(snapshot)
        bumped = data.replace(
            b"REPROSNAP %d" % SNAPSHOT_VERSION,
            b"REPROSNAP %d" % (SNAPSHOT_VERSION + 1), 1,
        )
        with pytest.raises(SnapshotVersionError):
            decode_blob(bumped)


class TestCaptureRestore:
    T_END = 2.0

    def test_crash_resume_is_bitwise(self):
        reference = reference_run(self.T_END)
        codec = SnapshotCodec()

        crashed = build_control_model()
        scheduler = run_until_crash(crashed, self.T_END, crash_step=60)
        blob = encode_snapshot(codec.capture(scheduler))
        del crashed, scheduler

        resumed = build_control_model()
        fresh = resumed.scheduler(sync_interval=0.01)
        codec.restore(fresh, decode_snapshot(blob))
        fresh.run(self.T_END)
        assert_probes_bitwise(reference, resumed)

    def test_crash_resume_across_discrete_events(self):
        # crash after the dip transition flipped the damper off
        reference = reference_run(self.T_END)
        codec = SnapshotCodec()
        crashed = build_control_model()
        scheduler = run_until_crash(crashed, self.T_END, crash_step=120)
        snapshot = codec.capture(scheduler)
        assert snapshot.payload["machines"]  # state machine captured

        resumed = build_control_model()
        fresh = resumed.scheduler(sync_interval=0.01)
        codec.restore(fresh, snapshot)
        # restored machine is in the post-transition state
        assert (
            resumed.rts.tops[0].behaviour.active_path
            == crashed.rts.tops[0].behaviour.active_path
        )
        fresh.run(self.T_END)
        assert_probes_bitwise(reference, resumed)

    def test_capture_requires_built_scheduler(self):
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        with pytest.raises(SnapshotError):
            SnapshotCodec().capture(scheduler)

    def test_fingerprint_mismatch_is_typed_and_restores_nothing(self):
        codec = SnapshotCodec()
        model = build_control_model()
        scheduler = run_until_crash(model, self.T_END, crash_step=50)
        snapshot = codec.capture(scheduler)

        # a structurally different run configuration: other sync grid
        other = build_control_model()
        target = other.scheduler(sync_interval=0.02)
        target.build()
        before = target.state.copy()
        t_before = other.time.raw
        with pytest.raises(FingerprintMismatchError):
            codec.restore(target, snapshot)
        # nothing was mutated before the check fired
        assert np.array_equal(target.state, before)
        assert other.time.raw == t_before
        assert target.major_steps == 0

    def test_fingerprint_ignores_runtime_param_values(self):
        # params are runtime state (capsules flip them mid-run); two
        # models differing only in a param value share a fingerprint
        codec = SnapshotCodec()
        a = build_control_model()
        b = build_control_model()
        b.streamers[1].params["enabled"] = 0.0
        sa = a.scheduler(sync_interval=0.01)
        sb = b.scheduler(sync_interval=0.01)
        sa.build()
        sb.build()
        assert codec.fingerprint(sa) == codec.fingerprint(sb)

    def test_restored_stats_match(self):
        reference = reference_run(self.T_END)
        codec = SnapshotCodec()
        crashed = build_control_model()
        scheduler = run_until_crash(crashed, self.T_END, crash_step=77)
        snapshot = codec.capture(scheduler)
        resumed = build_control_model()
        fresh = resumed.scheduler(sync_interval=0.01)
        codec.restore(fresh, snapshot)
        fresh.run(self.T_END)
        ref_stats = reference.stats()
        res_stats = resumed.stats()
        # rhs_evaluations is a network-level counter that only counts
        # post-restore work; everything else must match exactly
        for key in ("major_steps", "events_fired"):
            assert res_stats[key] == ref_stats[key], key
