"""Shared benchmark helpers.

Every benchmark prints the table/series it reproduces (run with ``-s`` to
see them inline); the same summaries are appended to
``benchmarks/results.txt`` so EXPERIMENTS.md can cite a stable artefact.
Machine-readable headline metrics additionally land in ``BENCH_<id>.json``
at the repo root (one file per bench id, schema
``{"bench": ..., "metrics": {...}, "timestamp": ...}``) so CI can archive
them without scraping text.
"""

from __future__ import annotations

import datetime
import json
import pathlib

import pytest

RESULTS = pathlib.Path(__file__).resolve().parent / "results.txt"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS.write_text("")
    yield


@pytest.fixture
def report():
    """Print a block and append it to benchmarks/results.txt."""

    def emit(title: str, lines) -> None:
        block = [f"== {title} =="]
        block.extend(str(line) for line in lines)
        text = "\n".join(block)
        print("\n" + text)
        with RESULTS.open("a") as handle:
            handle.write(text + "\n\n")

    return emit


def _plain(value):
    """NumPy scalars/arrays are not JSON serializable; coerce to
    built-ins so benches can pass metric values straight through."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "tolist"):  # np scalar or array
        return _plain(value.tolist())
    if hasattr(value, "item") and not isinstance(
        value, (bool, int, float, str)
    ):
        return value.item()
    return value


def write_bench_json(bench_id: str, metrics: dict) -> pathlib.Path:
    """Write/merge headline metrics into ``BENCH_<id>.json`` at the repo
    root.  Merging (rather than overwriting) lets one bench file report
    from several test functions; the file is rewritten whole each call so
    a crash mid-run never leaves truncated JSON."""
    metrics = _plain(metrics)
    path = REPO_ROOT / f"BENCH_{bench_id.upper()}.json"
    merged = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if existing.get("bench") == bench_id.upper():
                merged = existing.get("metrics", {})
        except (ValueError, OSError):
            merged = {}
    merged.update(metrics)
    payload = {
        "bench": bench_id.upper(),
        "metrics": merged,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture
def bench_json():
    """Emit machine-readable metrics: ``bench_json("s4", {...})``."""
    return write_bench_json


def pid_plant_diagram(blocks: int = 0):
    """The canonical closed loop used across C1/C2/S3, optionally padded
    with a chain of extra unity-gain blocks to scale model size."""
    from repro.dataflow import Diagram, FirstOrderLag, Gain, PID, Step, Sum

    d = Diagram(f"loop{blocks}")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("err.out", "pid.in")
    previous = "pid.out"
    for index in range(blocks):
        d.add(Gain(f"pad{index}", k=1.0))
        d.connect(previous, f"pad{index}.in")
        previous = f"pad{index}.out"
    d.connect(previous, "plant.in")
    d.connect("plant.out", "err.in2")
    return d
