"""Zero-crossing detection.

Hybrid models turn continuous conditions (level exceeded, angle through
zero, temperature past a threshold) into discrete signals for capsules.
After every solver step the detector inspects each registered event
function ``g(t, y)``; a sign change within the step is localised by
bisection on linearly interpolated states.  Localisation accuracy is
bounded by ``t_tol`` and interpolation error, which is adequate for the
major-step sizes the hybrid scheduler uses (and is itself ablated in
bench S1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

#: Event function: g(t, y) -> float; the event fires when g crosses zero.
EventFunction = Callable[[float, np.ndarray], float]


@dataclass
class EventSpec:
    """A registered zero-crossing event.

    Parameters
    ----------
    name:
        Event name, used as the signal name sent to capsules.
    function:
        The guard function ``g(t, y)``.
    direction:
        ``+1`` fire on rising crossings only, ``-1`` falling only,
        ``0`` both.
    terminal:
        If True, integration in :func:`repro.solvers.ivp.integrate`
        stops at this event.
    """

    name: str
    function: EventFunction
    direction: int = 0
    terminal: bool = False

    def __post_init__(self) -> None:
        if self.direction not in (-1, 0, 1):
            raise ValueError(f"direction must be -1, 0 or 1: {self.direction}")


@dataclass
class EventOccurrence:
    """A localised zero crossing."""

    spec: EventSpec
    t: float
    y: np.ndarray
    direction: int  # +1 rising, -1 falling


class ZeroCrossingDetector:
    """Detects and localises sign changes of event functions over steps."""

    def __init__(self, specs: List[EventSpec], t_tol: float = 1e-9) -> None:
        self.specs = list(specs)
        self.t_tol = t_tol
        self._last_values: Optional[List[float]] = None
        self._last_t: Optional[float] = None
        self.detected = 0

    def reset(self, t0: float, y0: np.ndarray) -> None:
        """Prime the detector with the initial state."""
        self._last_t = t0
        self._last_values = [
            float(spec.function(t0, np.asarray(y0, dtype=float)))
            for spec in self.specs
        ]

    def check_step(
        self,
        t0: float,
        y0: np.ndarray,
        t1: float,
        y1: np.ndarray,
        make_interpolator=None,
    ) -> List[EventOccurrence]:
        """Return events occurring in ``(t0, t1]``, ordered by time.

        States inside the step are interpolated: linearly between ``y0``
        and ``y1`` by default, or through the dense interpolant returned
        by ``make_interpolator()`` (built lazily, only when a sign change
        actually needs localising).  Each crossing is bisected to within
        ``t_tol``.
        """
        if self._last_values is None or self._last_t != t0:
            self.reset(t0, y0)
        y0 = np.asarray(y0, dtype=float)
        y1 = np.asarray(y1, dtype=float)
        occurrences: List[EventOccurrence] = []
        new_values: List[float] = []
        interpolator = None
        for idx, spec in enumerate(self.specs):
            g0 = self._last_values[idx]
            g1 = float(spec.function(t1, y1))
            new_values.append(g1)
            crossing = self._crossing_direction(g0, g1)
            if crossing == 0:
                continue
            if spec.direction != 0 and crossing != spec.direction:
                continue
            if interpolator is None and make_interpolator is not None:
                interpolator = make_interpolator()
            t_event, y_event = self._bisect(
                spec.function, t0, y0, t1, y1, g0, interpolator
            )
            occurrences.append(
                EventOccurrence(spec, t_event, y_event, crossing)
            )
            self.detected += 1
        self._last_t = t1
        self._last_values = new_values
        occurrences.sort(key=lambda occ: occ.t)
        return occurrences

    @staticmethod
    def _crossing_direction(g0: float, g1: float) -> int:
        if g0 < 0.0 <= g1:
            return 1
        if g0 > 0.0 >= g1:
            return -1
        return 0

    def _bisect(
        self,
        g: EventFunction,
        t0: float,
        y0: np.ndarray,
        t1: float,
        y1: np.ndarray,
        g0: float,
        interpolator=None,
    ) -> Tuple[float, np.ndarray]:
        lo, hi = t0, t1
        g_lo = g0
        span = t1 - t0
        if span <= 0:
            return t1, y1

        if interpolator is not None:
            state_at = interpolator
        else:
            def state_at(t: float) -> np.ndarray:
                alpha = (t - t0) / span
                return (1.0 - alpha) * y0 + alpha * y1

        for __ in range(200):
            if hi - lo <= self.t_tol:
                break
            mid = 0.5 * (lo + hi)
            g_mid = float(g(mid, state_at(mid)))
            if (g_lo < 0.0) == (g_mid < 0.0) and g_mid != 0.0:
                lo, g_lo = mid, g_mid
            else:
                hi = mid
        t_event = hi
        return t_event, state_at(t_event)
