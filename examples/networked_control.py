"""Networked control loop: dead time, sensor noise, actuator limits and
sensor failover.

A realistic control scenario stressing the block library's "hostile
plumbing" elements:

* the feedback path crosses a network with 80 ms transport delay;
* the sensor is noisy (deterministic white noise, sampled-and-held);
* a *redundant* second sensor takes over when a health flag drops
  (Switch block; the failover instant is a zero-crossing the supervisor
  capsule observes);
* the actuator is slew-limited (RateLimiter) and saturated;
* the controller is a discrete PID at 20 ms — everything the paper's
  streamer architecture has to host at once.

Run:  python examples/networked_control.py
"""

import numpy as np

from repro import Capsule, HybridModel, Protocol, StateMachine
from repro.analysis import step_metrics
from repro.dataflow import (
    Constant,
    Diagram,
    DiscretePID,
    FirstOrderLag,
    RateLimiter,
    Saturation,
    Step,
    Sum,
    Switch,
    TransportDelay,
    WhiteNoise,
)

HEALTH = Protocol.define(
    "SensorHealth", outgoing=(), incoming=("failover",)
)


class FailoverWatcher(Capsule):
    """Logs the failover instant reported by the mux's zero crossing."""

    def __init__(self, name="watcher"):
        self.failover_time = None
        super().__init__(name)

    def build_structure(self):
        self.create_port("health", HEALTH.base())

    def build_behaviour(self):
        sm = StateMachine("watcher")
        sm.add_state("primary")
        sm.add_state("backup")
        sm.initial("primary")
        sm.add_transition(
            "primary", "backup", trigger=("health", "failover"),
            action=lambda c, m: setattr(c, "failover_time", m.data),
        )
        return sm


class ReportingMux(Switch):
    """A Switch that reports falling health crossings over an SPort."""

    def __init__(self, name, threshold=0.5):
        super().__init__(name, threshold)
        self.add_sport("alarm", HEALTH.conjugate())

    def on_zero_crossing(self, name, t, direction):
        if direction < 0 and self.sport("alarm").connected:
            self.sport("alarm").send("failover", t)


def build_model() -> HybridModel:
    d = Diagram("netloop")
    # rebuild with the reporting mux variant
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(DiscretePID("pid", kp=1.2, ki=0.8, ts=0.02,
                      u_min=-4.0, u_max=4.0))
    d.add(RateLimiter("slew", rising=8.0, falling=-8.0, ts=0.02))
    d.add(Saturation("sat", lower=-3.0, upper=3.0))
    d.add(FirstOrderLag("plant", tau=0.8))
    d.add(WhiteNoise("noise", amplitude=0.02, seed=7))
    d.add(Sum("sensorA", signs="++"))
    d.add(Sum("sensorB", signs="++"))
    d.add(Constant("bias", value=0.01))
    d.add(Step("health", t_step=6.0, amplitude=-1.0, offset=1.0))
    d.add(ReportingMux("mux", threshold=0.5))
    d.add(TransportDelay("network", delay=0.08))
    d.connect("ref.out", "err.in1")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "slew.in")
    d.connect("slew.out", "sat.in")
    d.connect("sat.out", "plant.in")
    d.connect("plant.out", "sensorA.in1")
    d.connect("noise.out", "sensorA.in2")
    d.connect("plant.out", "sensorB.in1")
    d.connect("bias.out", "sensorB.in2")
    d.connect("sensorA.out", "mux.in1")
    d.connect("sensorB.out", "mux.in2")
    d.connect("health.out", "mux.ctrl")
    d.connect("mux.out", "network.in")
    d.connect("network.out", "err.in2")
    d.expose("y", "plant.out")
    d.finalise()

    model = HybridModel("networked")
    model.default_thread.h = 0.005
    model.add_streamer(d)
    watcher = model.add_capsule(FailoverWatcher("watcher"))
    model.connect_sport(
        watcher.port("health"), d.sub("mux").sport("alarm")
    )
    model.add_probe("y", d.dport("y"))
    return model


def main() -> None:
    model = build_model()
    model.run(until=12.0, sync_interval=0.02)

    trajectory = model.probe("y")
    metrics = step_metrics(trajectory, target=1.0)
    watcher = model.rts.tops[0]
    values = trajectory.component(0)
    times = trajectory.times
    post_failover = values[np.searchsorted(times, 8.0):]

    print("networked control loop, 12 s simulated")
    print(f"  settling time (2%):    {metrics.settling_time:.2f} s "
          "(with 80 ms dead time)")
    print(f"  overshoot:             {metrics.overshoot:.1%}")
    print(f"  failover detected at:  t = {watcher.failover_time:.3f} s "
          "(health drops at 6.0)")
    print(f"  state after failover:  {watcher.behaviour.active_path}")
    print(f"  level held post-failover: "
          f"[{post_failover.min():.3f}, {post_failover.max():.3f}]")

    assert metrics.settling_time is not None
    assert watcher.behaviour.active_path == "backup"
    assert abs(watcher.failover_time - 6.0) < 0.05
    assert abs(post_failover.mean() - 1.0) < 0.05
    print("OK")


if __name__ == "__main__":
    main()
