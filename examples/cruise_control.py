"""Cruise control: block-diagram modelling, baselines and code generation.

A car longitudinal model (first-order lag from drive force to speed plus
a hill disturbance) under PID cruise control, built entirely from the
library block set via :class:`repro.dataflow.Diagram`.  A driver capsule
changes the set speed at run time through an SPort (the blocks' built-in
``set_<param>`` tuning protocol).

The same diagram is then run through the paper's two strawmen — the
Kühl dataflow→capsule translation and the Bichler equations-in-states
capsule — and through the Python code generator, printing a comparison
table.

Run:  python examples/cruise_control.py
"""

import time as wallclock

import numpy as np

from repro import Capsule, HybridModel, Protocol, StateMachine
from repro.baselines import BichlerModel, KuhlTranslation, information_loss
from repro.codegen import generate_python
from repro.dataflow import (
    Constant,
    Diagram,
    FirstOrderLag,
    Gain,
    PID,
    Step,
    Sum,
)

DRIVER = Protocol.define(
    "Driver", outgoing=("set_value",), incoming=()
)


def build_diagram() -> Diagram:
    """speed loop: err = setpoint - v; force = PID(err); v = lag(force) + hill."""
    d = Diagram("cruise")
    d.add(Constant("setpoint", value=20.0))        # m/s target
    d.add(Sum("err", signs="+-"))
    # tf = 0.5 keeps the derivative-filter pole slow enough for the
    # coarse fixed steps used below (RK4 stability: |h*lambda| < 2.8)
    d.add(PID("pid", kp=800.0, ki=120.0, kd=0.0, tf=0.5, u_min=-2000.0,
              u_max=4000.0))
    # car: m dv/dt = F - b v  ->  lag with tau = m/b, k = 1/b
    d.add(FirstOrderLag("car", tau=1000.0 / 50.0, k=1.0 / 50.0))
    d.add(Step("hill", t_step=40.0, amplitude=-500.0))  # grade force at 40 s
    d.add(Sum("force_sum", signs="++"))
    d.connect("setpoint.out", "err.in1")
    d.connect("car.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "force_sum.in1")
    d.connect("hill.out", "force_sum.in2")
    d.connect("force_sum.out", "car.in")
    d.expose("speed", "car.out")
    return d


class Driver(Capsule):
    """Raises the set speed to 25 m/s at t = 20 s via the timing service."""

    def build_structure(self):
        self.create_port("cmd", DRIVER.base())

    def build_behaviour(self):
        sm = StateMachine("driver")
        sm.add_state("cruising20")
        sm.add_state("cruising25")
        sm.initial("cruising20")
        sm.add_transition(
            "cruising20", "cruising25", trigger=("timer", "timeout"),
            action=lambda c, m: c.send("cmd", "set_value", 25.0),
        )
        return sm

    def on_start(self):
        self.inform_in(20.0)


def run_streamer_model():
    diagram = build_diagram()
    diagram.finalise()
    # give the setpoint block an SPort so the driver can retune it
    setpoint = diagram.sub("setpoint")
    setpoint.add_sport("tune", DRIVER.conjugate())

    model = HybridModel("cruise")
    # the car dynamics are slow (tau = 20 s); a 10 ms RK4 minor step is
    # already far below the accuracy floor of the model
    model.default_thread.h = 0.01
    driver = model.add_capsule(Driver("driver"))
    model.add_streamer(diagram)
    model.connect_sport(driver.port("cmd"), setpoint.sport("tune"))
    model.add_probe("v", diagram.dport("speed"))
    t0 = wallclock.perf_counter()
    model.run(until=60.0, sync_interval=0.05)
    wall = wallclock.perf_counter() - t0
    return model, wall


def main() -> None:
    model, streamer_wall = run_streamer_model()
    v = model.probe("v")
    speeds = v.component(0)
    times = v.times
    v20 = speeds[np.searchsorted(times, 19.0)]
    v25 = speeds[np.searchsorted(times, 39.0)]
    v_hill = speeds[-1]
    print("cruise control, 60 s simulated")
    print(f"  speed before setpoint change (t=19): {v20:6.2f} m/s "
          "(target 20)")
    print(f"  speed before hill (t=39)           : {v25:6.2f} m/s "
          "(target 25)")
    print(f"  speed after hill rejection (t=60)  : {v_hill:6.2f} m/s "
          "(target 25)")
    assert abs(v20 - 20.0) < 0.5 and abs(v25 - 25.0) < 0.5
    assert abs(v_hill - 25.0) < 0.5, "hill disturbance not rejected"

    # ------------------------------------------------------------------
    # baselines on the same (autonomous) diagram
    # ------------------------------------------------------------------
    print("\nbaseline comparison (same diagram, fixed setpoint, 20 s):")
    kuhl = KuhlTranslation(build_diagram(), h=0.05, probe="car.out")
    t0 = wallclock.perf_counter()
    kuhl.run(20.0)
    kuhl_wall = wallclock.perf_counter() - t0
    bichler = BichlerModel(build_diagram(), h=0.05, probe="car.out")
    t0 = wallclock.perf_counter()
    bichler.run(20.0)
    bichler_wall = wallclock.perf_counter() - t0

    print(f"  {'approach':<28}{'messages':>10}{'wall s':>10}")
    kuhl_msgs = kuhl.message_metrics(20.0)["messages_total"]
    bich_msgs = bichler.metrics(20.0)["messages_total"]
    print(f"  {'streamers (this paper)':<28}"
          f"{model.stats()['messages_dispatched']:>10}"
          f"{streamer_wall:>10.3f}")
    print(f"  {'Kuhl translation':<28}{kuhl_msgs:>10}{kuhl_wall:>10.3f}")
    print(f"  {'Bichler eqs-in-states':<28}{bich_msgs:>10}"
          f"{bichler_wall:>10.3f}")
    print(f"  Kuhl size: {kuhl.size_metrics()}")
    print(f"  Kuhl information loss: {information_loss(build_diagram())}")

    # ------------------------------------------------------------------
    # code generation round trip
    # ------------------------------------------------------------------
    source = generate_python(
        build_diagram(), records=["car.out"], default_h=0.05
    )
    namespace: dict = {}
    exec(compile(source, "cruise_gen.py", "exec"), namespace)
    generated = namespace["simulate"](20.0, h=0.05)
    gen_final = generated["car.out"][-1]
    print(f"\ngenerated-code speed at t=20: {gen_final:.3f} m/s "
          f"({len(source.splitlines())} lines of generated Python)")
    assert abs(gen_final - 20.0) < 0.5
    print("OK")


if __name__ == "__main__":
    main()
