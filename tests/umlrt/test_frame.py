"""Frame service: incarnate, plug-in, destroy."""

import pytest

from tests.conftest import PING, Echo, Pinger

from repro.umlrt.capsule import Capsule, PartKind
from repro.umlrt.frame import FrameError
from repro.umlrt.runtime import RTSystem


class Host(Capsule):
    def build_structure(self):
        self.create_part("opt", Echo, kind=PartKind.OPTIONAL)
        self.create_part("plug", Echo, kind=PartKind.PLUGIN)
        self.create_part("fixed", Echo, kind=PartKind.FIXED)


class TestIncarnate:
    def test_incarnate_optional(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        instance = rts.frame.incarnate(host, "opt")
        assert instance.instance_name == "host.opt"
        assert host.part("opt").occupied
        assert rts.frame.incarnated == 1
        assert instance.behaviour.started

    def test_incarnated_capsule_communicates(self, rts):
        host = rts.add_top(Host("host"))
        pinger = rts.add_top(Pinger("pinger", pings=0))
        rts.start()
        echo = rts.frame.incarnate(host, "opt")
        pinger.connect(pinger.port("p"), echo.port("p"))
        pinger.send("p", "ping")
        rts.run()
        assert pinger.pongs == 1

    def test_cannot_incarnate_fixed(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        with pytest.raises(FrameError):
            rts.frame.incarnate(host, "fixed")

    def test_cannot_incarnate_occupied(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        rts.frame.incarnate(host, "opt")
        with pytest.raises(FrameError):
            rts.frame.incarnate(host, "opt")


class TestPlugIn:
    def test_plug_in(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        external = Echo("external")
        rts.frame.plug_in(host, "plug", external)
        assert host.part_instance("plug") is external
        assert external.runtime is rts

    def test_plug_in_wrong_type(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        with pytest.raises(FrameError):
            rts.frame.plug_in(host, "plug", Pinger("wrong"))

    def test_plug_in_wrong_kind(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        with pytest.raises(FrameError):
            rts.frame.plug_in(host, "opt", Echo("x"))


class TestDestroy:
    def test_destroy_frees_part(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        rts.frame.incarnate(host, "opt")
        rts.frame.destroy(host, "opt")
        assert not host.part("opt").occupied
        assert rts.frame.destroyed == 1

    def test_destroy_unlinks_ports(self, rts):
        host = rts.add_top(Host("host"))
        pinger = rts.add_top(Pinger("pinger", pings=0))
        rts.start()
        echo = rts.frame.incarnate(host, "opt")
        pinger.connect(pinger.port("p"), echo.port("p"))
        rts.frame.destroy(host, "opt")
        assert not pinger.port("p").wired

    def test_messages_after_destroy_are_dropped(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        echo = rts.frame.incarnate(host, "opt")
        port = echo.port("p")
        rts.frame.destroy(host, "opt")
        rts.deliver(port, __import__(
            "repro.umlrt.signal", fromlist=["Message"]
        ).Message("ping"))
        assert rts.messages_to_dead == 1

    def test_destroy_empty_part(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        with pytest.raises(FrameError):
            rts.frame.destroy(host, "opt")

    def test_reincarnation_after_destroy(self, rts):
        host = rts.add_top(Host("host"))
        rts.start()
        rts.frame.incarnate(host, "opt")
        rts.frame.destroy(host, "opt")
        fresh = rts.frame.incarnate(host, "opt")
        assert fresh.behaviour.started
