"""``python -m repro.cluster`` entry point."""

from repro.cluster.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
