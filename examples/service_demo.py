"""The simulation service: a mixed workload through one facade.

A :class:`repro.SimulationService` owns a worker pool, a
content-addressed plan cache and a metrics registry.  This demo pushes
a mixed workload through it, the way a tuning/CI rig would:

* three cruise-control **single runs** (different set speeds), executed
  concurrently, with one of them streamed live (PROGRESS telemetry);
* a 60-instance **pendulum gain sweep** (vectorised batch job), with
  partial trajectories streamed chunk by chunk (CHUNK telemetry);
* the same sweep **resubmitted**, to show the warm plan cache skipping
  compilation entirely;
* a final **metrics snapshot**: job counters, wall-time percentiles,
  cache hit rate, queue state.

Run:  python examples/service_demo.py
"""

import numpy as np

from repro import HybridModel, SimulationService
from repro.dataflow import (
    Constant,
    Diagram,
    FirstOrderLag,
    PID,
    SecondOrderSystem,
    Step,
    Sum,
)
from repro.service import BatchJob, SingleRunJob
from repro.service.telemetry import CHUNK, PROGRESS


# ----------------------------------------------------------------------
# workload 1: cruise control (hybrid single runs)
# ----------------------------------------------------------------------
def cruise_model(setpoint: float) -> HybridModel:
    """PID speed loop: err = setpoint - v; force = PID(err); v = lag."""
    d = Diagram("cruise")
    d.add(Constant("setpoint", value=setpoint))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=800.0, ki=120.0, kd=0.0, tf=0.5,
              u_min=-2000.0, u_max=4000.0))
    d.add(FirstOrderLag("car", tau=1000.0 / 50.0, k=1.0 / 50.0))
    d.connect("setpoint.out", "err.in1")
    d.connect("car.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "car.in")
    d.finalise()
    model = HybridModel(f"cruise{setpoint:g}")
    model.default_thread.h = 0.01
    model.add_streamer(d)
    model.add_probe("v", d.port_at("car.out"))
    return model


# ----------------------------------------------------------------------
# workload 2: pendulum gain sweep (vectorised batch job)
# ----------------------------------------------------------------------
def pendulum_loop() -> Diagram:
    """PID against a lightly damped linearised pendulum (PT2)."""
    d = Diagram("pend")
    d.add(Step("ref", amplitude=0.2))     # 0.2 rad step command
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=40.0, ki=20.0, kd=8.0, tf=0.05))
    d.add(SecondOrderSystem("pend", omega=3.13, zeta=0.05, k=1.0))
    d.connect("ref.out", "err.in1")
    d.connect("pend.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "pend.in")
    return d


KP_AXIS = np.linspace(5.0, 120.0, 60)


def pendulum_sweep_job() -> BatchJob:
    return BatchJob(
        diagram_factory=pendulum_loop, n=len(KP_AXIS), t_end=3.0,
        solver="rk4", h=1e-3, records=["pend.out"],
        sweeps={"pid.kp": KP_AXIS}, record_every=20,
    )


def main() -> None:
    with SimulationService(workers=4, cache_capacity=32) as svc:
        # -- submit everything up front (concurrent execution) ----------
        setpoints = (15.0, 20.0, 25.0)
        cruise_handles = [
            svc.submit(SingleRunJob(
                model_factory=lambda sp=sp: cruise_model(sp),
                t_end=40.0, sync_interval=0.05, stream_slices=4,
            ))
            for sp in setpoints
        ]
        sweep_spec = pendulum_sweep_job()
        sweep_handle = svc.submit(sweep_spec)

        # -- stream the sweep's partial trajectories --------------------
        print("pendulum sweep, streamed:")
        for event in sweep_handle.stream():
            if event.kind == CHUNK:
                print(f"  t={event.t:5.2f}s  chunk of "
                      f"{event.payload['rows']} recorded rows x "
                      f"{len(KP_AXIS)} instances"
                      f"{'  (final)' if event.payload['final'] else ''}")

        # -- stream one cruise run's progress ---------------------------
        print("cruise run (set speed 25 m/s), streamed:")
        for event in cruise_handles[2].stream():
            if event.kind == PROGRESS:
                v = event.payload["probes"].get("v", float("nan"))
                print(f"  t={event.t:5.1f}s  v={v:6.2f} m/s  "
                      f"({event.payload['fraction']:4.0%})")

        # -- collect results --------------------------------------------
        for sp, handle in zip(setpoints, cruise_handles):
            run = handle.result(timeout=120.0)
            v_final = float(run.probes["v"].y_final[0])
            print(f"cruise set={sp:5.1f} m/s -> final v={v_final:6.2f} "
                  f"({run.stats['major_steps']} major steps)")
            assert abs(v_final - sp) < 0.5

        sweep = sweep_handle.result(timeout=120.0)
        y = sweep.series["pend.out"]
        tail = y[3 * len(sweep.t) // 4:, :]
        score = np.max(np.abs(tail - 0.2), axis=0)
        best = int(np.argmin(score))
        print(f"sweep: best kp={KP_AXIS[best]:.1f} "
              f"(tail error {score[best]:.4f})")
        assert score[best] < 0.01

        # -- warm-cache resubmission ------------------------------------
        before = svc.cache.stats()
        resubmit = svc.submit(sweep_spec).result(timeout=120.0)
        after = svc.cache.stats()
        assert np.array_equal(resubmit.series["pend.out"], y)
        assert after["compiles"] == before["compiles"], \
            "resubmission must not recompile"
        assert after["hits"] == before["hits"] + 1
        print(f"resubmitted sweep: cache hit (compiles still "
              f"{after['compiles']}, hits {after['hits']})")

        # -- metrics snapshot -------------------------------------------
        snap = svc.metrics_snapshot()
        done = snap["counters"].get("jobs.done", 0)
        wall = snap["histograms"].get("job.wall_time", {})
        print("metrics snapshot:")
        print(f"  jobs done       : {done}")
        print(f"  job wall time   : p50={wall.get('p50', 0):.3f}s "
              f"p95={wall.get('p95', 0):.3f}s")
        print(f"  cache           : {snap['cache']}")
        print(f"  queue           : {snap['queue']}")
        assert done == len(setpoints) + 2
    print("OK")


if __name__ == "__main__":
    main()
