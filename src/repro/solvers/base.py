"""Solver base classes and shared numerics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

#: ODE right-hand side: f(t, y) -> dy/dt
RHS = Callable[[float, np.ndarray], np.ndarray]


class SolverError(Exception):
    """Raised on numerical failure (divergence, NaN, step underflow)."""


@dataclass
class StepResult:
    """Outcome of one solver step.

    Attributes
    ----------
    t:
        Time reached (``t0 + h_taken``).
    y:
        State at ``t``.
    h_taken:
        Step actually taken (adaptive solvers may shrink it).
    h_next:
        Suggested next step (fixed-step solvers echo ``h_taken``).
    error_estimate:
        Scaled local error norm if the method provides one, else ``None``.
    """

    t: float
    y: np.ndarray
    h_taken: float
    h_next: float
    error_estimate: Optional[float] = None


class SolverBase:
    """Common interface of all solvers.

    Subclasses implement :meth:`step`; :attr:`order` is the classical
    convergence order used in accuracy benchmarks (bench S1) and by the
    adaptive step controller.
    """

    name: str = "solver"
    order: int = 1
    #: True if the method solves an implicit stage equation each step.
    implicit: bool = False
    #: True if the step size adapts to a local error estimate.
    adaptive: bool = False
    #: True if :meth:`step` accepts a stacked ``(n_instances, n_state)``
    #: state matrix (all state arithmetic element-wise, no norms or
    #: scalar accept/reject decisions coupling instances).
    supports_batch: bool = False

    def step(self, f: RHS, t: float, y: np.ndarray, h: float) -> StepResult:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any per-integration internal state (step controller etc.)."""

    # -- checkpointing hooks (resilience layer) -------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Extract the solver's in-flight integration state.

        The contract is *bitwise resumability*: feeding the returned
        mapping to :meth:`restore_state` on a fresh instance of the same
        solver class must make subsequent :meth:`step` calls produce
        exactly the values an uninterrupted instance would have produced.
        Stateless methods return ``{}``; methods with controllers or
        caches (FSAL slots, PI error history, iteration counters)
        override both hooks.  Values must be plain data (floats, ints,
        ndarrays) — the snapshot codec refuses live objects.
        """
        return {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Re-inject state captured by :meth:`snapshot_state`."""
        if state:
            raise SolverError(
                f"{self.name}: unexpected snapshot state keys "
                f"{sorted(state)} (solver is stateless)"
            )

    @staticmethod
    def _check_finite(y: np.ndarray, t: float, name: str) -> None:
        if not np.all(np.isfinite(y)):
            raise SolverError(
                f"{name}: non-finite state at t={t:.6g} "
                "(diverged or step too large)"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class FixedStepSolver(SolverBase):
    """Base for methods that take exactly the step they are given.

    Every fixed-step ``_advance`` is shape-agnostic element-wise
    arithmetic, so these methods integrate a stacked ``(n, n_state)``
    batch exactly as they integrate one ``(n_state,)`` vector — each row
    sees bit-identical operations.
    """

    supports_batch = True

    def step(self, f: RHS, t: float, y: np.ndarray, h: float) -> StepResult:
        if h <= 0:
            raise SolverError(f"{self.name}: non-positive step {h}")
        y_new = self._advance(f, t, np.asarray(y, dtype=float), h)
        self._check_finite(y_new, t + h, self.name)
        return StepResult(t=t + h, y=y_new, h_taken=h, h_next=h)

    def _advance(self, f: RHS, t: float, y: np.ndarray, h: float) -> np.ndarray:
        raise NotImplementedError


def error_norm(error: np.ndarray, y_old: np.ndarray, y_new: np.ndarray,
               rtol: float, atol: float) -> float:
    """Hairer-style scaled RMS norm of a local error estimate."""
    scale = atol + rtol * np.maximum(np.abs(y_old), np.abs(y_new))
    if error.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((error / scale) ** 2)))
