"""Channels: policies, statistics, thread safety."""

import threading

import pytest

from repro.core.channel import Channel, ChannelError, ChannelPolicy


class TestBasics:
    def test_fifo_order(self):
        channel = Channel("c", capacity=4)
        for item in (1, 2, 3):
            channel.push(item)
        assert channel.drain() == [1, 2, 3]

    def test_pop_empty(self):
        assert Channel("c").pop() is None

    def test_len_and_empty(self):
        channel = Channel("c")
        assert channel.empty
        channel.push("x")
        assert len(channel) == 1 and not channel.empty

    def test_peek_latest(self):
        channel = Channel("c")
        assert channel.peek_latest() is None
        channel.push(1)
        channel.push(2)
        assert channel.peek_latest() == 2
        assert len(channel) == 2  # peek does not remove

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Channel("c", capacity=0)


class TestPolicies:
    def test_block_raises_on_overflow(self):
        channel = Channel("c", capacity=2, policy=ChannelPolicy.BLOCK)
        channel.push(1)
        channel.push(2)
        with pytest.raises(ChannelError):
            channel.push(3)
        assert channel.dropped == 1

    def test_try_push_on_block(self):
        channel = Channel("c", capacity=1, policy=ChannelPolicy.BLOCK)
        assert channel.try_push(1)
        assert not channel.try_push(2)
        assert channel.drain() == [1]

    def test_overwrite_evicts_oldest(self):
        channel = Channel("c", capacity=2, policy=ChannelPolicy.OVERWRITE)
        channel.push(1)
        channel.push(2)
        channel.push(3)
        assert channel.drain() == [2, 3]
        assert channel.dropped == 1

    def test_latest_keeps_one(self):
        channel = Channel("c", capacity=64, policy=ChannelPolicy.LATEST)
        assert channel.capacity == 1  # LATEST forces depth 1
        for item in range(5):
            channel.push(item)
        assert channel.drain() == [4]


class TestStatistics:
    def test_counters(self):
        channel = Channel("c", capacity=2)
        channel.push(1)
        channel.push(2)
        channel.pop()
        assert channel.pushed == 2
        assert channel.popped == 1
        assert channel.max_depth == 2


class TestCloseAndStreaming:
    """Regression tests for the end-of-stream contract the service and
    resilience layers rely on."""

    def test_close_wakes_every_blocked_waiter(self):
        channel = Channel("c")
        woke = []
        barrier = threading.Barrier(4)

        def waiter():
            barrier.wait()
            # blocks until close(); must return (None, False), not hang
            woke.append(channel.pop_item(block=True, timeout=10))

        threads = [threading.Thread(target=waiter) for __ in range(3)]
        for thread in threads:
            thread.start()
        barrier.wait()  # all three are about to block
        channel.close()
        for thread in threads:
            thread.join(timeout=10)
        assert not any(thread.is_alive() for thread in threads), \
            "close() left a blocked popper hanging"
        assert woke == [(None, False)] * 3

    def test_iteration_delivers_queued_none_item(self):
        # a legitimately queued None must reach the consumer, not be
        # mistaken for exhaustion
        channel = Channel("c")
        channel.push(1)
        channel.push(None)
        channel.push(2)
        channel.close()
        assert list(channel) == [1, None, 2]

    def test_pop_item_disambiguates_none(self):
        channel = Channel("c")
        assert channel.pop_item() == (None, False)
        channel.push(None)
        assert channel.pop_item() == (None, True)
        assert channel.pop_item() == (None, False)

    def test_items_queued_before_close_stay_poppable(self):
        channel = Channel("c")
        channel.push("x")
        channel.close()
        assert channel.pop() == "x"
        with pytest.raises(ChannelError):
            channel.push("y")

    def test_iteration_terminates_with_concurrent_producer(self):
        channel = Channel("c", capacity=128)

        def producer():
            for i in range(50):
                channel.push(i)
            channel.close()

        thread = threading.Thread(target=producer)
        thread.start()
        received = list(channel)
        thread.join(timeout=10)
        assert received == list(range(50))

    def test_snapshot_restore_round_trip(self):
        channel = Channel("c", capacity=8)
        for item in (1, None, "x"):
            channel.push(item)
        channel.pop()
        state = channel.snapshot_state()
        fresh = Channel("c", capacity=8)
        fresh.restore_state(state)
        assert fresh.drain() == [None, "x"]
        assert fresh.pushed == 3 and fresh.popped == 3


class TestThreadSafety:
    def test_concurrent_push_pop(self):
        channel = Channel("c", capacity=10_000)
        received = []

        def producer():
            for i in range(1000):
                channel.push(i)

        def consumer():
            while len(received) < 1000:
                item = channel.pop()
                if item is not None:
                    received.append(item)

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert sorted(received) == list(range(1000))
