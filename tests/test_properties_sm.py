"""Property-based tests on state machines and generated code equivalence.

The strongest property in the suite: for *random* flat machines and
random signal scripts, the generated table-driven Python machine is
observationally equivalent to the hierarchical interpreter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_statemachine_python
from repro.umlrt.signal import Message
from repro.umlrt.statemachine import StateMachine


class FakePort:
    def __init__(self, name):
        self.name = name


class Ctx:
    pass


STATE_NAMES = ["s0", "s1", "s2", "s3", "s4"]
SIGNALS = ["a", "b", "c"]
PORTS = ["p", "q"]


@st.composite
def flat_machines(draw):
    """A random flat machine: 2-5 states, random transition table."""
    n_states = draw(st.integers(min_value=2, max_value=5))
    states = STATE_NAMES[:n_states]
    sm = StateMachine("random")
    for state in states:
        sm.add_state(state)
    sm.initial(states[0])
    n_transitions = draw(st.integers(min_value=1, max_value=8))
    seen = set()
    for __ in range(n_transitions):
        source = draw(st.sampled_from(states))
        target = draw(st.sampled_from(states))
        signal = draw(st.sampled_from(SIGNALS))
        port = draw(st.sampled_from(PORTS + [None]))
        key = (source, port, signal)
        # also skip if an any-port rule already covers this signal, or a
        # port-specific rule exists and we'd add the any-port rule: the
        # interpreter resolves those by declaration order, the generated
        # table by specificity -- out of scope for this property
        if key in seen or (source, None, signal) in seen or any(
            k[0] == source and k[2] == signal for k in seen
        ):
            continue
        seen.add(key)
        sm.add_transition(
            source, target,
            trigger=(port, signal) if port is not None else signal,
        )
    return sm


@st.composite
def scripts(draw):
    length = draw(st.integers(min_value=0, max_value=20))
    return [
        (draw(st.sampled_from(PORTS)), draw(st.sampled_from(SIGNALS)))
        for __ in range(length)
    ]


class TestGeneratedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(flat_machines(), scripts())
    def test_generated_machine_equivalent_to_interpreter(
        self, machine, script
    ):
        namespace = {}
        exec(compile(generate_statemachine_python(machine),
                     "<gen>", "exec"), namespace)
        cls = [v for k, v in namespace.items()
               if isinstance(v, type) and k.endswith("StateMachine")][0]
        generated = cls()
        generated.start()
        machine.start(Ctx())
        for port, signal in script:
            live_fired = machine.dispatch(
                Ctx(), Message(signal, port=FakePort(port))
            )
            gen_fired = generated.dispatch(port, signal)
            assert gen_fired == live_fired
            assert generated.state == machine.active_path

    @settings(max_examples=40, deadline=None)
    @given(flat_machines(), scripts())
    def test_interpreter_active_state_always_valid(self, machine, script):
        machine.start(Ctx())
        valid = set(machine.all_states())
        for port, signal in script:
            machine.dispatch(Ctx(), Message(signal, port=FakePort(port)))
            assert machine.active_path in valid

    @settings(max_examples=40, deadline=None)
    @given(flat_machines(), scripts())
    def test_dispatch_conservation(self, machine, script):
        """Every message either fires or is dropped — never both/neither."""
        machine.start(Ctx())
        fired = 0
        for port, signal in script:
            if machine.dispatch(Ctx(), Message(signal,
                                               port=FakePort(port))):
                fired += 1
        assert fired + machine.dropped_messages == len(script)
        assert machine.rtc_steps == len(script)
