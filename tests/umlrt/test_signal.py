"""Signals, messages and their total ordering."""

import pytest

from repro.umlrt.signal import (
    INIT_SIGNAL,
    TIMEOUT_SIGNAL,
    Message,
    Priority,
    Signal,
)


class TestSignal:
    def test_valid_names(self):
        assert Signal("start").name == "start"
        assert Signal("too_hot").name == "too_hot"
        assert Signal("x1").name == "x1"

    @pytest.mark.parametrize("bad", ["", "has space", "semi;colon", "a-b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            Signal(bad)

    def test_signals_are_value_objects(self):
        assert Signal("a") == Signal("a")
        assert Signal("a") != Signal("b")
        assert hash(Signal("a")) == hash(Signal("a"))

    def test_builtin_signals(self):
        assert TIMEOUT_SIGNAL.name == "timeout"
        assert INIT_SIGNAL.name == "rtBound"


class TestPriority:
    def test_ordering(self):
        assert Priority.PANIC > Priority.HIGH > Priority.GENERAL
        assert Priority.GENERAL > Priority.LOW > Priority.BACKGROUND

    def test_five_levels(self):
        assert len(Priority) == 5


class TestMessage:
    def test_defaults(self):
        message = Message("go")
        assert message.priority is Priority.GENERAL
        assert message.data is None
        assert message.timestamp == 0.0

    def test_sort_key_priority_dominates(self):
        low = Message("a", priority=Priority.LOW, timestamp=0.0)
        high = Message("b", priority=Priority.HIGH, timestamp=5.0)
        assert high.sort_key() < low.sort_key()

    def test_sort_key_time_within_priority(self):
        early = Message("a", timestamp=1.0)
        late = Message("b", timestamp=2.0)
        assert early.sort_key() < late.sort_key()

    def test_sort_key_fifo_tiebreak(self):
        first = Message("a", timestamp=1.0)
        second = Message("b", timestamp=1.0)
        assert first.sort_key() < second.sort_key()

    def test_sort_keys_are_unique(self):
        messages = [Message("x") for __ in range(100)]
        keys = {m.sort_key() for m in messages}
        assert len(keys) == 100

    def test_is_timeout(self):
        assert Message("timeout").is_timeout()
        assert not Message("tick").is_timeout()
