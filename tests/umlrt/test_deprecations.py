"""Deprecated public names must warn on use and map to canonical ones."""

import warnings

import pytest

import repro.umlrt
import repro.umlrt.runtime
from repro.umlrt import RTRuntimeError


class TestRuntimeErrorAlias:
    def test_package_alias_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="RTRuntimeError"):
            alias = repro.umlrt.RuntimeError_
        assert alias is RTRuntimeError

    def test_module_alias_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="RTRuntimeError"):
            alias = repro.umlrt.runtime.RuntimeError_
        assert alias is RTRuntimeError

    def test_canonical_name_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.umlrt.RTRuntimeError is RTRuntimeError
            assert (
                repro.umlrt.runtime.RTRuntimeError is RTRuntimeError
            )

    def test_canonical_name_exported(self):
        assert "RTRuntimeError" in repro.umlrt.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.umlrt.NoSuchName_
        with pytest.raises(AttributeError):
            repro.umlrt.runtime.NoSuchName_
