"""S12 — schedulability analysis cost and deadline-aware admission.

Two claims from the static-analysis story:

* the full RTA pipeline (task-set derivation + exact response-time
  analysis with blocking) is cheap enough to run at submission time —
  sub-10ms on a 204-block diagram;
* closing the loop from analysis to runtime pays: on an overloaded
  100-job mix, deadline-aware admission with EDF dispatch strictly
  improves the met-deadline rate over plain FIFO, because hopeless jobs
  are shed at submission instead of clogging the queue.

Headline metrics land in ``BENCH_S12.json``.
"""

from __future__ import annotations

import random
import statistics
import time
from dataclasses import dataclass

from benchmarks.conftest import pid_plant_diagram

from repro.analysis.schedulability import (
    response_time_analysis, sched_report, taskset_from_model,
)
from repro.core.model import HybridModel
from repro.service.admission import DeadlineAdmission
from repro.service.engine import JobEngine
from repro.service.jobs import DeadlineInfeasible, JobContext, JobSpec

RTA_BUDGET_MS = 10.0


def big_model(blocks: int = 200) -> HybridModel:
    """The padded PID loop as a hybrid model: 204 leaf blocks on one
    thread stepped once per sync interval."""
    model = HybridModel(f"s12-{blocks}")
    model.default_thread.h = 0.01
    model.add_streamer(pid_plant_diagram(blocks).finalise())
    return model


def test_s12_analysis_cost(report, bench_json):
    model = big_model()
    leaves = sum(1 for __ in model.streamers[0].leaves())

    samples = []
    for __ in range(20):
        start = time.perf_counter()
        taskset = taskset_from_model(model, 0.01)
        analysis = response_time_analysis(taskset)
        samples.append((time.perf_counter() - start) * 1e3)
    rta_ms = statistics.median(samples)
    assert analysis.schedulable

    start = time.perf_counter()
    full = sched_report(model, 0.01)
    report_ms = (time.perf_counter() - start) * 1e3
    assert full["schedulable"]

    report("S12 schedulability analysis cost", [
        f"model: {leaves} leaf blocks",
        f"derive + exact RTA: {rta_ms:.3f} ms (median of 20)",
        f"full --explain-sched report (incl. two sensitivity "
        f"bisections): {report_ms:.1f} ms",
        f"budget: {RTA_BUDGET_MS:.0f} ms",
    ])
    bench_json("s12", {
        "model_blocks": leaves,
        "rta_ms": rta_ms,
        "sched_report_ms": report_ms,
        "rta_budget_ms": RTA_BUDGET_MS,
    })
    assert rta_ms < RTA_BUDGET_MS, (
        f"RTA on {leaves} blocks took {rta_ms:.2f}ms "
        f"(budget {RTA_BUDGET_MS}ms)"
    )


@dataclass
class SpinJob(JobSpec):
    """Cooperatively spins for ``duration`` seconds, checkpointing."""

    duration: float = 0.02
    kind = "spin"

    def execute(self, ctx: JobContext) -> str:
        end = time.monotonic() + self.duration
        while time.monotonic() < end:
            ctx.checkpoint()
            time.sleep(0.002)
        return "spun"


def overloaded_mix(seed: int = 42, jobs: int = 100):
    """100 jobs whose aggregate demand far exceeds two workers'
    capacity inside the deadlines: a shedding policy must choose."""
    rng = random.Random(seed)
    return [
        SpinJob(
            duration=rng.choice([0.01, 0.02, 0.04]),
            deadline=rng.uniform(0.05, 0.6),
        )
        for __ in range(jobs)
    ]


def run_mix(engine: JobEngine, mix) -> dict:
    rejected = 0
    for spec in mix:
        try:
            engine.submit(spec)
        except DeadlineInfeasible:
            rejected += 1
    engine.drain(timeout=120.0)
    counters = engine.metrics.snapshot()["counters"]
    met = counters.get("sched.deadline_met", 0)
    missed = counters.get("sched.deadline_missed", 0)
    return {
        "met": met,
        "missed": missed,
        "rejected": rejected,
        "met_rate": met / max(1, met + missed),
    }


def test_s12_admission_vs_fifo(report, bench_json):
    with JobEngine(workers=2, queue_limit=128) as fifo_engine:
        fifo = run_mix(fifo_engine, overloaded_mix())

    admission = DeadlineAdmission()
    admission.cost_model.seed("spin", 0.02)
    with JobEngine(
        workers=2, queue_limit=128, dispatch="edf", admission=admission,
    ) as sched_engine:
        sched = run_mix(sched_engine, overloaded_mix())

    report("S12 deadline-aware admission vs FIFO (100-job overload)", [
        f"fifo:      met {fifo['met']:3d}  missed {fifo['missed']:3d}  "
        f"rejected {fifo['rejected']:3d}  met-rate {fifo['met_rate']:.2f}",
        f"admission: met {sched['met']:3d}  missed {sched['missed']:3d}  "
        f"rejected {sched['rejected']:3d}  met-rate "
        f"{sched['met_rate']:.2f}",
    ])
    bench_json("s12", {
        "fifo": fifo,
        "admission_edf": sched,
        "met_rate_improvement": sched["met_rate"] - fifo["met_rate"],
    })
    # the acceptance property: deadline-aware admission strictly
    # improves the met-deadline rate on the overloaded mix
    assert sched["met_rate"] > fifo["met_rate"]
    assert sched["rejected"] > 0
