"""Model well-formedness validation: the W-rules.

DESIGN.md §5 extracts twelve well-formedness rules (W1..W12) from §2 of
the paper.  Most are enforced *at construction time* by the classes
involved (a mis-typed flow can never be created, a streamer cannot contain
a capsule); this module re-checks them over a finished model and adds the
whole-model rules that no single constructor can see: relay usage (W2),
single drivers and algebraic loops (W8/W12 via trial flattening), thread
partitioning (W10) and connectivity warnings.

``validate_model(model)`` returns a list of :class:`Violation`; with
``strict=True`` any error-severity violation raises
:class:`ValidationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel


@dataclass(frozen=True)
class Violation:
    """One rule violation found during validation."""

    rule: str       # "W1".."W12"
    severity: str   # "error" | "warning"
    subject: str    # qualified name of the offending element
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}/{self.severity}] {self.subject}: {self.message}"


class ValidationError(Exception):
    """Raised in strict mode when error-severity violations exist."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        lines = "\n".join(str(v) for v in violations)
        super().__init__(f"{len(violations)} validation error(s):\n{lines}")


def validate_model(model: "HybridModel", strict: bool = True) -> List[Violation]:
    """Run every whole-model W-rule check.  See module docstring."""
    violations: List[Violation] = []
    violations.extend(_check_flow_types(model))          # W1
    violations.extend(_check_relays(model))              # W2
    violations.extend(_check_port_bindings(model))       # W3
    violations.extend(_check_behaviour_kinds(model))     # W4
    violations.extend(_check_capsule_dports(model))      # W5
    containment = _check_containment(model)              # W6
    violations.extend(containment)
    violations.extend(_check_sport_bridges(model))       # W7
    if not containment:
        # flattening assumes a well-formed tree; skip if W6 is violated
        violations.extend(_check_network(model))         # W8, W12
    violations.extend(_check_threads(model))             # W10

    errors = [v for v in violations if v.severity == "error"]
    if strict and errors:
        raise ValidationError(errors)
    return violations


# ----------------------------------------------------------------------
# individual rules
# ----------------------------------------------------------------------
def _all_streamers(model: "HybridModel") -> List[Streamer]:
    """All streamers in the tree.

    Tolerates non-streamer children (a W6 violation smuggled past the API
    guards): the walkers must survive an invalid model so the validator
    can report it rather than crash.
    """
    out: List[Streamer] = []

    def walk(streamer: Streamer) -> None:
        out.append(streamer)
        for sub in streamer.subs.values():
            if isinstance(sub, Streamer):
                walk(sub)

    for top in model.streamers:
        walk(top)
    return out


def _all_flows(model: "HybridModel"):
    flows = list(model.flows)
    for streamer in _all_streamers(model):
        flows.extend(streamer.flows)
    return flows


def _all_relays(model: "HybridModel"):
    relays = list(model.relays.values())
    for streamer in _all_streamers(model):
        relays.extend(streamer.relays.values())
    return relays


def _check_flow_types(model) -> List[Violation]:
    out = []
    for flow in _all_flows(model):
        if not flow.source.flow_type.subset_of(flow.target.flow_type):
            out.append(Violation(
                "W1", "error", repr(flow),
                f"source flow type {flow.source.flow_type.name!r} is not "
                f"a subset of target {flow.target.flow_type.name!r}",
            ))
    return out


def _check_relays(model) -> List[Violation]:
    out = []
    flows = _all_flows(model)
    for relay in _all_relays(model):
        incoming = sum(1 for f in flows if f.target is relay.input)
        out_a = sum(1 for f in flows if f.source is relay.out_a)
        out_b = sum(1 for f in flows if f.source is relay.out_b)
        if incoming != 1:
            out.append(Violation(
                "W2", "error", relay.name,
                f"relay needs exactly one incoming flow, found {incoming}",
            ))
        if out_a != 1 or out_b != 1:
            out.append(Violation(
                "W2", "error", relay.name,
                "relay must generate exactly two flows "
                f"(out_a: {out_a}, out_b: {out_b})",
            ))
    return out


def _check_port_bindings(model) -> List[Violation]:
    out = []
    for streamer in _all_streamers(model):
        for dport in streamer.dports.values():
            if dport.flow_type is None:  # defensive; ctor already rejects
                out.append(Violation(
                    "W3", "error", dport.qualified_name,
                    "DPort without flow type",
                ))
        for sport in streamer.sports.values():
            if sport.role is None:
                out.append(Violation(
                    "W3", "error", sport.qualified_name,
                    "SPort without protocol role",
                ))
    return out


def _check_behaviour_kinds(model) -> List[Violation]:
    out = []
    for streamer in _all_streamers(model):
        if hasattr(streamer, "behaviour") and getattr(
            streamer, "behaviour"
        ) is not None:
            out.append(Violation(
                "W4", "error", streamer.path(),
                "streamer carries a state machine; streamer behaviour "
                "must be a solver computing equations",
            ))
    return out


def _check_capsule_dports(model) -> List[Violation]:
    out = []
    for (capsule_name, port_name), dport in model.capsule_dports.items():
        if not dport.relay_only:
            out.append(Violation(
                "W5", "error", f"{capsule_name}.{port_name}",
                "capsule DPorts must be relay-only; capsules process no "
                "data",
            ))
    return out


def _check_containment(model) -> List[Violation]:
    out = []
    for streamer in _all_streamers(model):
        for sub in streamer.subs.values():
            if isinstance(sub, Capsule):
                out.append(Violation(
                    "W6", "error", streamer.path(),
                    f"streamer contains capsule {sub.instance_name!r}; "
                    "streamers never contain capsules",
                ))
    return out


def _check_sport_bridges(model) -> List[Violation]:
    out = []
    for streamer, sport in model.all_sports():
        if not sport.connected:
            out.append(Violation(
                "W7", "warning", sport.qualified_name,
                "SPort is not connected to any capsule port",
            ))
    return out


def _check_network(model) -> List[Violation]:
    """W8 (single driver) and W12 (algebraic loops) via trial flattening."""
    from repro.core.network import FlatNetwork, NetworkError

    out: List[Violation] = []
    if not model.streamers:
        return out
    try:
        network = FlatNetwork(model.streamers, model.flows)
    except NetworkError as exc:
        rule = "W12" if "algebraic" in str(exc) else "W8"
        out.append(Violation(rule, "error", model.name, str(exc)))
        return out
    for port in network.unconnected_inputs:
        out.append(Violation(
            "W8", "warning", port.qualified_name,
            "IN DPort has no driver; it will hold its initial value",
        ))
    return out


def _check_threads(model) -> List[Violation]:
    out = []
    for top in model.streamers:
        if top.thread is None:
            out.append(Violation(
                "W10", "warning", top.path(),
                "top streamer not yet assigned to a thread; the default "
                "thread will adopt it at build time",
            ))
    seen = {}
    for thread in model.threads:
        for streamer in thread.streamers:
            if id(streamer) in seen:
                out.append(Violation(
                    "W10", "error", streamer.path(),
                    f"streamer on two threads: {seen[id(streamer)]} and "
                    f"{thread.name}",
                ))
            seen[id(streamer)] = thread.name
    return out
