"""The W-rule validator over whole models."""

import pytest

from tests.conftest import ConstLeaf, GainLeaf, IntegratorLeaf, PING

from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.core.validation import ValidationError, validate_model


def rules_of(violations):
    return {v.rule for v in violations}


class TestCleanModel:
    def test_no_errors(self, model):
        const = model.add_streamer(ConstLeaf("c", 1.0))
        integ = model.add_streamer(IntegratorLeaf("i"))
        model.add_flow(const.dport("y"), integ.dport("u"))
        assert validate_model(model, strict=True) == []

    def test_empty_model_valid(self, model):
        assert validate_model(model) == []


class TestW2Relays:
    def test_fully_wired_relay_ok(self, model):
        const = model.add_streamer(ConstLeaf("c", 1.0))
        a = model.add_streamer(IntegratorLeaf("a"))
        b = model.add_streamer(IntegratorLeaf("b"))
        relay = model.add_relay("split", SCALAR)
        model.add_flow(const.dport("y"), relay.input)
        model.add_flow(relay.out_a, a.dport("u"))
        model.add_flow(relay.out_b, b.dport("u"))
        assert validate_model(model) == []

    def test_half_wired_relay_flagged(self, model):
        const = model.add_streamer(ConstLeaf("c", 1.0))
        a = model.add_streamer(IntegratorLeaf("a"))
        relay = model.add_relay("split", SCALAR)
        model.add_flow(const.dport("y"), relay.input)
        model.add_flow(relay.out_a, a.dport("u"))
        # out_b dangling: relay must generate exactly two flows
        violations = validate_model(model, strict=False)
        assert "W2" in rules_of(violations)

    def test_strict_mode_raises(self, model):
        model.add_relay("dangling", SCALAR)
        with pytest.raises(ValidationError):
            validate_model(model, strict=True)


class TestW7SPorts:
    def test_unconnected_sport_warns(self, model):
        streamer = model.add_streamer(ConstLeaf("c", 1.0))
        streamer.add_sport("ctl", PING.conjugate())
        violations = validate_model(model, strict=True)  # warnings pass
        assert any(v.rule == "W7" and v.severity == "warning"
                   for v in violations)


class TestW8W12ViaNetwork:
    def test_unconnected_input_warns(self, model):
        model.add_streamer(IntegratorLeaf("i"))
        violations = validate_model(model, strict=True)
        assert any(v.rule == "W8" and v.severity == "warning"
                   for v in violations)

    def test_algebraic_loop_is_error(self, model):
        a = model.add_streamer(GainLeaf("a"))
        b = model.add_streamer(GainLeaf("b"))
        model.add_flow(a.dport("y"), b.dport("u"))
        model.add_flow(b.dport("y"), a.dport("u"))
        with pytest.raises(ValidationError) as excinfo:
            validate_model(model, strict=True)
        assert any(v.rule == "W12" for v in excinfo.value.violations)

    def test_double_driver_is_error(self, model):
        a = model.add_streamer(ConstLeaf("a", 1.0))
        b = model.add_streamer(ConstLeaf("b", 2.0))
        sink = model.add_streamer(IntegratorLeaf("sink"))
        model.add_flow(a.dport("y"), sink.dport("u"))
        model.add_flow(b.dport("y"), sink.dport("u"))
        violations = validate_model(model, strict=False)
        assert "W8" in rules_of(violations)
        assert any(v.severity == "error" for v in violations)


class TestW4W6Containment:
    def test_streamer_with_behaviour_attribute_flagged(self, model):
        streamer = model.add_streamer(ConstLeaf("c", 1.0))
        streamer.behaviour = object()  # simulate an illegal state machine
        violations = validate_model(model, strict=False)
        assert "W4" in rules_of(violations)

    def test_smuggled_capsule_flagged(self, model):
        """Even bypassing add_sub type checks, validation catches W6."""
        from repro.umlrt.capsule import Capsule

        top = Streamer("top")
        top.add_sub(ConstLeaf("inner", 1.0))
        smuggled = Capsule("smuggled")
        top.subs["smuggled"] = smuggled  # bypass the API guard
        model.add_streamer(top)
        violations = validate_model(model, strict=False)
        assert "W6" in rules_of(violations)


class TestViolationFormatting:
    def test_str_contains_rule_and_subject(self, model):
        model.add_relay("r", SCALAR)
        violations = validate_model(model, strict=False)
        text = str(violations[0])
        assert "W2" in text and "r" in text

    def test_validation_error_message(self, model):
        model.add_relay("r", SCALAR)
        with pytest.raises(ValidationError) as excinfo:
            validate_model(model, strict=True)
        assert "validation error" in str(excinfo.value)

    def test_model_validate_method(self, model):
        assert model.validate() == []
