"""Solver registry: name -> constructor.

The registry backs the ``solver`` stereotype's string-based configuration
(models and generated code refer to solvers by name) and the Strategy-
pattern hot swap measured in bench F1.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.solvers.adaptive import DormandPrince45
from repro.solvers.base import SolverBase, SolverError
from repro.solvers.fixed import RK4, Euler, Heun
from repro.solvers.implicit import BackwardEuler, Trapezoidal

_REGISTRY: Dict[str, Callable[..., SolverBase]] = {
    "euler": Euler,
    "heun": Heun,
    "rk4": RK4,
    "rk45": DormandPrince45,
    "backward_euler": BackwardEuler,
    "trapezoidal": Trapezoidal,
}


def available_solvers() -> Tuple[str, ...]:
    """Names of all registered solvers, sorted."""
    return tuple(sorted(_REGISTRY))


def make_solver(name: str, **kwargs: Any) -> SolverBase:
    """Instantiate a solver by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None
    return factory(**kwargs)


def register_solver(name: str, factory: Callable[..., SolverBase]) -> None:
    """Register a custom solver strategy (extension point)."""
    if name in _REGISTRY:
        raise SolverError(f"solver {name!r} already registered")
    _REGISTRY[name] = factory
