"""Flow types and the W1 subset rule."""

import pytest

from repro.core.flowtype import (
    SCALAR,
    DataKind,
    FlowField,
    FlowType,
    FlowTypeError,
)


def record(name, **fields):
    return FlowType.record(name, fields)


class TestConstruction:
    def test_scalar(self):
        assert SCALAR.is_scalar
        assert SCALAR.field_names == ("value",)
        assert SCALAR.field("value").kind is DataKind.FLOAT

    def test_record(self):
        ft = record("imu", ax=DataKind.FLOAT, gyro=(DataKind.FLOAT, "rad/s"))
        assert set(ft.field_names) == {"ax", "gyro"}
        assert ft.field("gyro").unit == "rad/s"

    def test_empty_rejected(self):
        with pytest.raises(FlowTypeError):
            FlowType("empty", [])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(FlowTypeError):
            FlowType("dup", [FlowField("a"), FlowField("a")])

    def test_bad_field_name(self):
        with pytest.raises(FlowTypeError):
            FlowField("not a name")

    def test_unknown_field_access(self):
        with pytest.raises(FlowTypeError):
            SCALAR.field("ghost")


class TestSubsetRule:
    def test_reflexive(self):
        ft = record("a", x=DataKind.FLOAT)
        assert ft.subset_of(ft)

    def test_proper_subset(self):
        small = record("small", x=DataKind.FLOAT)
        big = record("big", x=DataKind.FLOAT, y=DataKind.FLOAT)
        assert small.subset_of(big)
        assert not big.subset_of(small)

    def test_kind_mismatch_breaks_subset(self):
        a = record("a", x=DataKind.FLOAT)
        b = record("b", x=DataKind.INT)
        assert not a.subset_of(b)

    def test_unit_mismatch_breaks_subset(self):
        a = record("a", x=(DataKind.FLOAT, "m"))
        b = record("b", x=(DataKind.FLOAT, "ft"))
        assert not a.subset_of(b)

    def test_transitivity(self):
        a = record("a", x=DataKind.FLOAT)
        b = record("b", x=DataKind.FLOAT, y=DataKind.INT)
        c = record("c", x=DataKind.FLOAT, y=DataKind.INT, z=DataKind.BOOL)
        assert a.subset_of(b) and b.subset_of(c) and a.subset_of(c)

    def test_equality_ignores_type_name(self):
        """Structural typing: same fields = same type."""
        a = record("nameA", x=DataKind.FLOAT)
        b = record("nameB", x=DataKind.FLOAT)
        assert a == b
        assert hash(a) == hash(b)


class TestValues:
    def test_default_value(self):
        ft = record("mix", f=DataKind.FLOAT, i=DataKind.INT, b=DataKind.BOOL)
        assert ft.default_value() == {"f": 0.0, "i": 0, "b": False}

    def test_validate_ok(self):
        ft = record("mix", f=DataKind.FLOAT, b=DataKind.BOOL)
        ft.validate_value({"f": 1.5, "b": True})

    def test_validate_missing_field(self):
        ft = record("mix", f=DataKind.FLOAT)
        with pytest.raises(FlowTypeError, match="missing field"):
            ft.validate_value({})

    def test_validate_wrong_kind(self):
        ft = record("mix", i=DataKind.INT)
        with pytest.raises(FlowTypeError, match="expects int"):
            ft.validate_value({"i": 1.5})

    def test_bool_is_not_int(self):
        ft = record("mix", i=DataKind.INT)
        with pytest.raises(FlowTypeError):
            ft.validate_value({"i": True})

    def test_int_is_valid_float(self):
        ft = record("mix", f=DataKind.FLOAT)
        ft.validate_value({"f": 3})  # ints coerce to float fields

    def test_project(self):
        small = record("small", x=DataKind.FLOAT)
        value = {"x": 1.0, "y": 2.0}
        assert small.project(value) == {"x": 1.0}

    def test_project_missing(self):
        small = record("small", x=DataKind.FLOAT)
        with pytest.raises(FlowTypeError):
            small.project({"y": 2.0})
