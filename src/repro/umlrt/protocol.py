"""Protocols and protocol roles.

A UML-RT *protocol* names the set of signals that may travel between two
connected ports.  The *base* role lists signals from the point of view of
one side (``outgoing`` are sent, ``incoming`` received); the *conjugate*
role swaps the two sets.  A connector is well-formed only if it joins a
base role to a conjugate role of the same protocol (or two symmetric
protocols, where ``incoming == outgoing``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.umlrt.signal import Signal


class ProtocolError(Exception):
    """Raised for ill-formed protocol declarations or incompatible roles."""


@dataclass(frozen=True)
class Protocol:
    """A named, directed signal contract.

    Parameters
    ----------
    name:
        Protocol name; unique within a model.
    outgoing:
        Signals the base role sends.
    incoming:
        Signals the base role receives.
    """

    name: str
    outgoing: FrozenSet[Signal] = frozenset()
    incoming: FrozenSet[Signal] = frozenset()

    @staticmethod
    def define(
        name: str,
        outgoing: Iterable[str] = (),
        incoming: Iterable[str] = (),
    ) -> "Protocol":
        """Convenience constructor from plain signal-name strings."""
        out_names = list(outgoing)
        in_names = list(incoming)
        if len(set(out_names)) != len(out_names):
            raise ProtocolError(f"duplicate outgoing signals in {name}")
        if len(set(in_names)) != len(in_names):
            raise ProtocolError(f"duplicate incoming signals in {name}")
        return Protocol(
            name=name,
            outgoing=frozenset(Signal(n) for n in out_names),
            incoming=frozenset(Signal(n) for n in in_names),
        )

    @property
    def outgoing_names(self) -> FrozenSet[str]:
        return frozenset(s.name for s in self.outgoing)

    @property
    def incoming_names(self) -> FrozenSet[str]:
        return frozenset(s.name for s in self.incoming)

    def is_symmetric(self) -> bool:
        """A symmetric protocol is its own conjugate."""
        return self.outgoing == self.incoming

    def base(self) -> "ProtocolRole":
        return ProtocolRole(self, conjugated=False)

    def conjugate(self) -> "ProtocolRole":
        return ProtocolRole(self, conjugated=True)


@dataclass(frozen=True)
class ProtocolRole:
    """A protocol viewed from one end: base or conjugate."""

    protocol: Protocol
    conjugated: bool = False

    @property
    def name(self) -> str:
        suffix = "~" if self.conjugated else ""
        return f"{self.protocol.name}{suffix}"

    @property
    def sends(self) -> FrozenSet[str]:
        """Signal names this role is allowed to send."""
        if self.conjugated:
            return self.protocol.incoming_names
        return self.protocol.outgoing_names

    @property
    def receives(self) -> FrozenSet[str]:
        """Signal names this role is allowed to receive."""
        if self.conjugated:
            return self.protocol.outgoing_names
        return self.protocol.incoming_names

    def conjugate(self) -> "ProtocolRole":
        return ProtocolRole(self.protocol, conjugated=not self.conjugated)

    def compatible_with(self, other: "ProtocolRole") -> bool:
        """Two roles may be wired iff each side's sends ⊆ the peer's receives.

        The usual case is base↔conjugate of the same protocol; the subset
        formulation additionally admits structurally compatible protocols,
        which the paper's flow-type rule (W1) mirrors on the dataflow side.
        """
        return self.sends <= other.receives and other.sends <= self.receives


class ProtocolRegistry:
    """A model-wide registry enforcing unique protocol names."""

    def __init__(self) -> None:
        self._protocols: Dict[str, Protocol] = {}

    def register(self, protocol: Protocol) -> Protocol:
        existing = self._protocols.get(protocol.name)
        if existing is not None and existing != protocol:
            raise ProtocolError(
                f"protocol {protocol.name!r} already registered with a "
                "different signature"
            )
        self._protocols[protocol.name] = protocol
        return protocol

    def get(self, name: str) -> Protocol:
        try:
            return self._protocols[name]
        except KeyError:
            raise ProtocolError(f"unknown protocol {name!r}") from None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._protocols))

    def __len__(self) -> int:
        return len(self._protocols)

    def __contains__(self, name: str) -> bool:
        return name in self._protocols
