"""Optimizer configuration (O-levels, pass toggles) and rewrite report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: pipeline order; also the canonical pass names for toggles and reports
PASS_ORDER: Tuple[str, ...] = ("dce", "fold", "cse", "fuse")


@dataclass(frozen=True)
class OptConfig:
    """One optimizer configuration: an O-level plus per-pass toggles.

    ``level`` selects the contract (0 = off, 1 = bitwise-identity
    passes, 2 = O1 + float re-association); the boolean toggles switch
    individual passes off within a level.  ``reassociate`` defaults to
    ``level >= 2`` but can be forced either way for ablations.
    """

    level: int = 0
    dce: bool = True
    fold: bool = True
    cse: bool = True
    fuse: bool = True
    reassociate: Optional[bool] = None

    @classmethod
    def from_level(cls, level: int) -> "OptConfig":
        return cls(level=int(level))

    @property
    def allows_reassociation(self) -> bool:
        if self.reassociate is not None:
            return bool(self.reassociate)
        return self.level >= 2

    def enabled_passes(self) -> Tuple[str, ...]:
        if self.level <= 0:
            return ()
        return tuple(
            name for name in PASS_ORDER if getattr(self, name)
        )

    @property
    def is_active(self) -> bool:
        return self.level > 0 and bool(self.enabled_passes())

    def cache_token(self) -> str:
        """A stable short string keying compiled artefacts.

        Two configurations producing potentially different artefacts
        must map to different tokens — the token enters
        :meth:`~repro.core.plan.ExecutionPlan.fingerprint` and every
        service cache key, so O0 and O2 artefacts never collide.
        """
        if not self.is_active:
            return "O0"
        passes = ",".join(self.enabled_passes())
        suffix = "+reassoc" if self.allows_reassociation else ""
        return f"O{self.level}[{passes}]{suffix}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.cache_token()


def resolve_config(
    opt_level: int = 0, opt_config: Optional[OptConfig] = None
) -> OptConfig:
    """Normalise the ``(opt_level, opt_config)`` calling convention every
    plumbed API uses: an explicit config wins, else the level selects
    the default pass set."""
    if opt_config is not None:
        return opt_config
    return OptConfig.from_level(opt_level)


class OptReport:
    """Per-pass rewrite counts and subjects for one optimizer run.

    Carried on the optimized plan as ``plan.opt_report`` so backends,
    telemetry (``opt.blocks_removed`` / ``opt.ops_fused``) and the check
    CLI's ``--explain`` output can all surface what the pipeline did.
    Subjects are leaf *paths* (stable strings), never object references.
    """

    def __init__(self, config: OptConfig) -> None:
        self.config = config
        self.input_nodes = 0
        self.output_nodes = 0
        #: paths removed by dead-code elimination
        self.dce_removed: List[str] = []
        #: paths of every block evaluated away by constant folding
        self.folded: List[str] = []
        #: folded paths kept as literal-constant boundary blocks
        self.constants: List[str] = []
        #: (duplicate path, representative path) pairs merged by CSE
        self.cse_merged: List[Tuple[str, str]] = []
        #: member-path tuples of each fused chain
        self.fused_chains: List[Tuple[str, ...]] = []

    # ------------------------------------------------------------------
    @property
    def blocks_removed(self) -> int:
        """Total node-count shrink (the ``opt.blocks_removed`` metric)."""
        return max(0, self.input_nodes - self.output_nodes)

    @property
    def ops_fused(self) -> int:
        """Chain members collapsed into fused nodes
        (the ``opt.ops_fused`` metric)."""
        return sum(len(chain) for chain in self.fused_chains)

    def counts(self) -> Dict[str, int]:
        return {
            "dce.blocks_removed": len(self.dce_removed),
            "fold.blocks_folded": len(self.folded),
            "fold.constants_materialized": len(self.constants),
            "cse.blocks_merged": len(self.cse_merged),
            "fuse.chains": len(self.fused_chains),
            "fuse.ops_fused": self.ops_fused,
            "opt.blocks_removed": self.blocks_removed,
            "opt.ops_fused": self.ops_fused,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.cache_token(),
            "input_nodes": self.input_nodes,
            "output_nodes": self.output_nodes,
            "counts": self.counts(),
            "dce_removed": list(self.dce_removed),
            "folded": list(self.folded),
            "constants": list(self.constants),
            "cse_merged": [list(pair) for pair in self.cse_merged],
            "fused_chains": [list(chain) for chain in self.fused_chains],
        }

    def describe(self) -> str:
        """Human-readable per-pass summary (``--explain`` output)."""
        lines = [
            f"opt {self.config.cache_token()}: "
            f"{self.input_nodes} -> {self.output_nodes} nodes"
        ]
        if self.dce_removed:
            lines.append(
                f"  dce: removed {len(self.dce_removed)} dead block(s): "
                + ", ".join(self.dce_removed)
            )
        if self.folded:
            lines.append(
                f"  fold: folded {len(self.folded)} constant block(s) "
                f"into {len(self.constants)} literal(s): "
                + ", ".join(self.folded)
            )
        if self.cse_merged:
            lines.append(
                f"  cse: merged {len(self.cse_merged)} duplicate(s): "
                + ", ".join(f"{a} -> {b}" for a, b in self.cse_merged)
            )
        if self.fused_chains:
            lines.append(
                f"  fuse: fused {self.ops_fused} op(s) in "
                f"{len(self.fused_chains)} chain(s): "
                + "; ".join(
                    " -> ".join(chain) for chain in self.fused_chains
                )
            )
        if len(lines) == 1:
            lines.append("  (no rewrites applied)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptReport({self.config.cache_token()}, "
            f"removed={self.blocks_removed}, fused={self.ops_fused})"
        )
