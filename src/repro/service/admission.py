"""Deadline-aware admission control shared by service and cluster.

The schedulability engine's lesson applied at the service boundary: a
job whose predicted completion time already exceeds its deadline should
be *rejected at admission*, not queued to fail — the same reasoning that
makes SCHED001 reject an infeasible thread set before it runs.

Two pieces:

* :class:`CostModel` — per-job-kind exponential moving averages of
  observed wall time, with a global EMA fallback for kinds not yet
  seen.  This is the calibrated per-job cost predictor; the
  :class:`~repro.service.engine.JobEngine` feeds it every completed
  job, the cluster pool every worker DONE report.
* :class:`DeadlineAdmission` — the predicate: predicted completion is
  the predicted cost inflated by queue pressure
  (``cost * (1 + queued / workers)``, the cluster's historic formula),
  admitted iff it fits inside ``deadline * margin``.  Decisions are
  returned as :class:`AdmissionDecision` records so callers can emit
  them as ADMISSION telemetry and count them as ``sched.*`` metrics.

Jobs without a deadline are always admitted (only the queue bound
protects the service, as before); prediction starts once at least one
observation exists, so a cold service never rejects on a guess.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission evaluation."""

    admitted: bool
    #: "ok", "no_deadline", "cold" (no data yet) or "deadline_infeasible"
    reason: str
    #: predicted single-job cost, None while cold
    predicted_cost: Optional[float] = None
    #: predicted completion including queue pressure, None while cold
    predicted_completion: Optional[float] = None
    deadline: Optional[float] = None

    def as_payload(self) -> Dict[str, object]:
        """The ADMISSION telemetry payload."""
        return {
            "admitted": self.admitted,
            "reason": self.reason,
            "predicted_cost": self.predicted_cost,
            "predicted_completion": self.predicted_completion,
            "deadline": self.deadline,
        }


class CostModel:
    """Per-kind EMA cost predictor with a global fallback.

    ``observe(kind, wall)`` folds one completed job's wall time in;
    ``predict(kind)`` returns the kind's EMA, the global EMA when the
    kind is unseen, or ``None`` while no job has completed at all.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"EMA alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._by_kind: Dict[str, float] = {}
        self._global: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, kind: str, wall: float) -> None:
        if wall < 0:
            return
        with self._lock:
            previous = self._by_kind.get(kind)
            self._by_kind[kind] = (
                wall if previous is None
                else previous + self.alpha * (wall - previous)
            )
            self._global = (
                wall if self._global is None
                else self._global + self.alpha * (wall - self._global)
            )

    def predict(self, kind: str) -> Optional[float]:
        with self._lock:
            return self._by_kind.get(kind, self._global)

    def seed(self, kind: str, wall: float) -> None:
        """Pin an initial estimate (e.g. from a static analysis) that
        subsequent observations refine."""
        with self._lock:
            self._by_kind.setdefault(kind, wall)
            if self._global is None:
                self._global = wall

    def snapshot(self) -> Dict[str, Optional[float]]:
        with self._lock:
            out: Dict[str, Optional[float]] = dict(self._by_kind)
            out["*"] = self._global
            return out


class DeadlineAdmission:
    """The shared deadline-feasibility predicate."""

    def __init__(
        self, cost_model: Optional[CostModel] = None, margin: float = 1.0,
    ) -> None:
        if margin <= 0:
            raise ValueError(f"admission margin must be > 0: {margin}")
        self.cost_model = cost_model or CostModel()
        self.margin = margin

    def evaluate(
        self,
        kind: str,
        deadline: Optional[float],
        queued: int,
        workers: int,
    ) -> AdmissionDecision:
        """Admit unless predicted completion exceeds the deadline.

        ``queued`` jobs ahead on ``workers`` slots inflate the per-job
        prediction to ``cost * (1 + queued / workers)`` — each queued
        job delays this one by a worker-share of its cost.
        """
        if deadline is None:
            return AdmissionDecision(True, "no_deadline")
        cost = self.cost_model.predict(kind)
        if cost is None:
            return AdmissionDecision(
                True, "cold", deadline=deadline,
            )
        completion = cost * (1.0 + queued / max(1, workers))
        admitted = completion <= deadline * self.margin
        return AdmissionDecision(
            admitted=admitted,
            reason="ok" if admitted else "deadline_infeasible",
            predicted_cost=cost,
            predicted_completion=completion,
            deadline=deadline,
        )
