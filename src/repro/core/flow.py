"""Flows and relays: the ``connect`` analogues for dataflow (Table 1).

A :class:`Flow` joins exactly one source DPort to one destination DPort and
enforces the paper's W1 subset rule at construction.  A :class:`Relay`
"generates two similar flows from a flow" (W2): it is a transparent fan-out
node with one input pad and exactly two output pads, all sharing the
source's flow type.

Legal flow endpoints (checked here syntactically; the deeper structural
rules live in :mod:`repro.core.validation`):

* source: an ``OUT`` DPort, an ``IN`` boundary DPort of an enclosing
  composite (seen from inside), a relay output pad, or a capsule relay
  DPort;
* destination: an ``IN`` DPort, an ``OUT`` boundary DPort of an enclosing
  composite, a relay input pad, or a capsule relay DPort.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.core.dport import Direction, DPort
from repro.core.flowtype import FlowType


class FlowError(Exception):
    """Raised for ill-typed or ill-structured flows."""


_FLOW_SEQ = itertools.count()


class Flow:
    """A directed, typed dataflow connection between two DPorts."""

    def __init__(self, source: DPort, target: DPort) -> None:
        if source is target:
            raise FlowError("flow source and target are the same DPort")
        if not source.flow_type.subset_of(target.flow_type):
            raise FlowError(
                f"flow type violation (W1): source "
                f"{source.qualified_name} carries "
                f"{source.flow_type.name!r} which is not a subset of "
                f"target {target.qualified_name}'s "
                f"{target.flow_type.name!r}"
            )
        self.source = source
        self.target = target
        self.seq = next(_FLOW_SEQ)
        self.transfers = 0
        # hot path: scalar-to-scalar flows copy one float
        self._fast = source._is_scalar and target._is_scalar

    def propagate(self) -> None:
        """Copy the source's record into the target.

        Under the W1 subset rule the source may carry *fewer* fields than
        the target declares; target-only fields keep their previous value
        (initially the flow type's defaults).
        """
        if self._fast:
            self.target._store_scalar(self.source._scalar_value)
        else:
            merged = self.target.peek()
            merged.update(self.source.peek())
            self.target._store(merged)
        self.transfers += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.source.qualified_name} -> "
            f"{self.target.qualified_name})"
        )


class Relay:
    """A fan-out point: one incoming flow, exactly two outgoing flows (W2).

    The relay exposes three pads that behave like DPorts:

    * ``input`` — an IN pad receiving the incoming flow;
    * ``out_a`` / ``out_b`` — OUT pads, each driving one outgoing flow.

    All three pads share the relay's flow type; propagation copies the
    input record to both outputs unchanged ("two *similar* flows").
    Chains of relays implement higher fan-out.
    """

    def __init__(self, name: str, flow_type: FlowType) -> None:
        self.name = name
        self.flow_type = flow_type
        self.input = DPort("in", Direction.IN, flow_type, owner=self)
        self.out_a = DPort("out_a", Direction.OUT, flow_type, owner=self)
        self.out_b = DPort("out_b", Direction.OUT, flow_type, owner=self)

    @property
    def pads(self) -> List[DPort]:
        return [self.input, self.out_a, self.out_b]

    def propagate(self) -> None:
        """Copy the input record to both output pads."""
        if self.input._is_scalar:
            value = self.input._scalar_value
            self.out_a._store_scalar(value)
            self.out_b._store_scalar(value)
        else:
            value = self.input.peek()
            self.out_a._store(value)
            self.out_b._store(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relay({self.name!r}, {self.flow_type.name})"


def fan_out(name: str, flow_type: FlowType, ways: int) -> List[Relay]:
    """Build a relay chain providing ``ways`` similar copies of one flow.

    Returns the relays; the first relay's ``input`` is the chain input and
    the usable outputs are each relay's ``out_a`` plus the last relay's
    ``out_b``.  ``ways`` must be at least 2 (a single consumer needs no
    relay).
    """
    if ways < 2:
        raise FlowError(f"fan_out needs ways >= 2, got {ways}")
    relays = [Relay(f"{name}{i}", flow_type) for i in range(ways - 1)]
    return relays


def wire_fan_out(
    relays: List[Relay], flows: Optional[List[Flow]] = None
) -> List[Flow]:
    """Chain ``relays`` by connecting each ``out_b`` to the next ``input``."""
    flows = flows if flows is not None else []
    for a, b in zip(relays, relays[1:]):
        flows.append(Flow(a.out_b, b.input))
    return flows


def fan_out_taps(relays: List[Relay]) -> List[DPort]:
    """The usable output pads of a relay chain built by :func:`fan_out`."""
    if not relays:
        return []
    taps = [relay.out_a for relay in relays]
    taps.append(relays[-1].out_b)
    return taps
