"""Every registered defect builder fires exactly its planted codes."""

import pytest

from repro.check import CheckConfig, default_registry, run_checks
from repro.scenarios.defects import COVERED_CODES, DEFECTS


@pytest.mark.parametrize("name", sorted(DEFECTS))
def test_defect_fires_expected_codes(name):
    builder, expected, config = DEFECTS[name]
    result = run_checks(builder(), config=CheckConfig(**config))
    fired = {diag.code for diag in result.diagnostics}
    assert expected <= fired, (
        f"defect {name!r}: planted {sorted(expected)}, "
        f"fired {sorted(fired)}"
    )


def test_registry_coverage_is_honest():
    # COVERED_CODES is the union the defect corpus claims to reach
    claimed = set()
    for __, expected, __config in DEFECTS.values():
        claimed |= expected
    assert claimed == set(COVERED_CODES)


def test_corpus_reaches_at_least_ninety_percent_of_registry():
    registered = set(default_registry().codes())
    reachable = set(COVERED_CODES) & registered
    assert len(reachable) / len(registered) >= 0.90, (
        f"defect corpus covers {len(reachable)}/{len(registered)} "
        "registered codes"
    )


def test_builders_are_fresh_each_call():
    # builders must not share mutable state between invocations
    name = sorted(DEFECTS)[0]
    builder = DEFECTS[name].builder
    assert builder() is not builder()
