"""Deadline-feasibility lint (SCHED001)."""

from repro.check import CheckConfig, run_checks

from tests.check.builders import feedback_model, infeasible_model


class TestSCHED001:
    def test_infeasible_thread_rate_is_an_error(self):
        result = run_checks(infeasible_model())
        findings = result.by_code("SCHED001")
        assert findings
        assert findings[0].severity == "error"
        assert findings[0].details["sync_interval"] == 0.01

    def test_default_rates_feasible(self):
        result = run_checks(feedback_model())
        assert not result.by_code("SCHED001")

    def test_sync_interval_knob_changes_the_verdict(self):
        # the model that is clean at the default interval becomes
        # infeasible when the deadline shrinks to 100ns
        result = run_checks(
            feedback_model(),
            config=CheckConfig(sync_interval=1e-7),
        )
        errors = [
            d for d in result.by_code("SCHED001")
            if d.severity == "error"
        ]
        assert errors

    def test_plan_target_skipped(self):
        from repro.check.registry import CheckConfig as Cfg
        from repro.core.network import FlatNetwork
        from repro.core.plan import ExecutionPlan

        model = feedback_model()
        network = FlatNetwork(model.streamers, model.flows)
        plan = ExecutionPlan.compile(network)
        result = run_checks(plan, config=Cfg(select={"SCHED001"}))
        assert not result.diagnostics
