"""Synthetic leaves and hops the optimizer injects into rewritten plans.

These are ordinary :class:`~repro.core.streamer.Streamer` leaves (so the
interpreter, the fingerprint, thread views and the static checker treat
them like any other node) with one twist: they *alias* the original
blocks' DPort objects instead of creating new pads.  Keeping the
original pads means every surviving :class:`~repro.core.network.
ResolvedEdge`, probe and observer keeps working untouched — only the
computation feeding the pads changes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dport import DPort
from repro.core.streamer import Streamer


class PadCopy:
    """A synthetic hop copying one pad into another (CSE rewiring).

    Exactly mirrors :meth:`repro.core.flow.Flow.propagate` — the scalar
    fast path and the record merge path — so a consumer rewired onto a
    CSE representative sees bit-identical values.
    """

    __slots__ = ("source", "target", "transfers", "_fast")

    def __init__(self, source: DPort, target: DPort) -> None:
        self.source = source
        self.target = target
        self.transfers = 0
        self._fast = source._is_scalar and target._is_scalar

    def propagate(self) -> None:
        if self._fast:
            self.target._store_scalar(self.source._scalar_value)
        else:
            merged = self.target.peek()
            merged.update(self.source.peek())
            self.target._store(merged)
        self.transfers += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PadCopy({self.source.qualified_name} -> "
            f"{self.target.qualified_name})"
        )


class FoldedBlock(Streamer):
    """A constant-folded boundary block.

    Replaces a time-invariant, stateless block whose inputs were proven
    constant: the frozen output values (produced once, at optimize time,
    by the *original* block's own ``compute_outputs`` — so they are
    bitwise what the unoptimized run would compute) are re-written to
    the original OUT pads every evaluation.  It keeps the original
    block's name, so code generators emit the same signal variables.
    """

    direct_feedthrough = False
    time_invariant = True

    def __init__(self, original: Streamer) -> None:
        super().__init__(original.name)
        self._origin_path = original.path()
        out_pads = [
            pad for pad in original.dports.values()
            if pad.is_out and not pad.relay_only
        ]
        self.dports = {pad.name: pad for pad in out_pads}
        frozen: List[Tuple[DPort, Any, bool]] = []
        for pad in out_pads:
            if pad._is_scalar:
                frozen.append((pad, float(pad._scalar_value), True))
            else:
                frozen.append((pad, dict(pad.peek()), False))
        self._frozen = tuple(frozen)
        # canonical value summary: enters the plan fingerprint via params
        self.params = {
            "folded": tuple(
                (pad.name, value if scalar else tuple(sorted(value.items())))
                for pad, value, scalar in self._frozen
            ),
        }

    def origin_path(self) -> str:
        return self._origin_path

    def scalar_values(self) -> List[Tuple[str, float]]:
        """``(port name, frozen value)`` for scalar pads (codegen)."""
        values: List[Tuple[str, float]] = []
        for pad, value, scalar in self._frozen:
            if not scalar:
                raise TypeError(
                    f"folded block {self._origin_path} holds a record "
                    f"flow on {pad.name!r}; no scalar literal exists"
                )
            values.append((pad.name, value))
        return values

    def path(self) -> str:
        return f"folded:{self._origin_path}"

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        for pad, value, scalar in self._frozen:
            if scalar:
                pad._store_scalar(value)
            else:
                pad._store(dict(value))


def stage_spec(leaf: Streamer, driven_port: Optional[DPort]):
    """The fusable-op description of one chain member.

    Returns ``("gain", k)``, ``("bias", b)`` or ``("sum", terms)`` where
    ``terms`` is a tuple of ``(sign, frozen_value_or_None)`` — ``None``
    marks the single flow-driven slot.  Raises ``TypeError`` for block
    types the fusion pass must not touch.
    """
    kind = type(leaf).__name__
    if kind == "Gain":
        return ("gain", float(leaf.params["k"]))
    if kind == "Bias":
        return ("bias", float(leaf.params["bias"]))
    if kind == "Sum":
        terms: List[Tuple[str, Optional[float]]] = []
        for index, sign in enumerate(str(leaf.params["signs"])):
            pad = leaf.dport(f"in{index + 1}")
            if pad is driven_port:
                terms.append((sign, None))
            else:
                # undriven slots never change at runtime: freeze them
                terms.append((sign, float(pad._scalar_value)))
        return ("sum", tuple(terms))
    raise TypeError(f"block type {kind!r} is not fusable")


def _compile_stage(spec):
    """An exact-float closure replaying one member's ``compute_outputs``
    arithmetic (the O1 bitwise-identity guarantee)."""
    kind = spec[0]
    if kind == "gain":
        k = spec[1]

        def run(value: float) -> float:
            return k * value

    elif kind == "bias":
        b = spec[1]

        def run(value: float) -> float:
            return value + b

    else:  # sum: replicate the signed accumulation in slot order
        terms = spec[1]

        def run(value: float) -> float:
            total = 0.0
            for sign, frozen in terms:
                term = value if frozen is None else frozen
                total += term if sign == "+" else -term
            return total

    return run


def _affine_of(spec) -> Tuple[float, float]:
    """The ``v -> a*v + b`` form of one stage (O2 re-association)."""
    kind = spec[0]
    if kind == "gain":
        return spec[1], 0.0
    if kind == "bias":
        return 1.0, spec[1]
    # sum with one driven slot: v -> sign*v + sum(±frozen)
    scale, offset = 0.0, 0.0
    for sign, frozen in spec[1]:
        signed = 1.0 if sign == "+" else -1.0
        if frozen is None:
            scale = signed
        else:
            offset += signed * frozen
    return scale, offset


class FusedChain(Streamer):
    """A linear chain of gain/bias/sum blocks collapsed into one node.

    The fused node reads the chain head's driven IN pad, applies each
    member's op and writes the chain tail's OUT pad — the same pads the
    original blocks owned, so the incoming and outgoing resolved edges
    keep working verbatim.  It takes the *tail's* name so code
    generators assign the same output signal variable the tail did.

    With ``reassociate=False`` (O1) each member's float ops are replayed
    exactly, in order — bitwise identical to the unfused plan for
    fixed-step runs.  With ``reassociate=True`` (O2) the affine stages
    are composed into a single ``a*v + b``.
    """

    direct_feedthrough = True
    time_invariant = True

    def __init__(
        self,
        members: Sequence[Streamer],
        specs: Sequence[Tuple],
        in_pad: DPort,
        out_pad: DPort,
        reassociate: bool = False,
    ) -> None:
        if len(members) != len(specs) or len(members) < 2:
            raise ValueError("fused chain needs >= 2 members with specs")
        tail = members[-1]
        super().__init__(tail.name)
        self._member_paths = tuple(leaf.path() for leaf in members)
        self.head_leaf = members[0]
        self.tail_leaf = tail
        self.in_pad = in_pad
        self.out_pad = out_pad
        self.reassociate = bool(reassociate)
        self.specs: Tuple[Tuple, ...] = tuple(specs)
        self.dports = {in_pad.name: in_pad, out_pad.name: out_pad}
        if self.reassociate:
            scale, offset = 1.0, 0.0
            for spec in self.specs:
                a, b = _affine_of(spec)
                scale, offset = a * scale, a * offset + b
            self.affine: Optional[Tuple[float, float]] = (scale, offset)
            self._stages = ()
        else:
            self.affine = None
            self._stages = tuple(_compile_stage(s) for s in self.specs)
        self.params = {
            "stages": self.specs,
            "reassociate": self.reassociate,
        }

    @property
    def member_paths(self) -> Tuple[str, ...]:
        return self._member_paths

    def path(self) -> str:
        return "fused:" + "+".join(self._member_paths)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        value = self.in_pad.read_scalar()
        if self.affine is not None:
            value = self.affine[0] * value + self.affine[1]
        else:
            for stage in self._stages:
                value = stage(value)
        self.out_pad.write(float(value))


def synth_dag(
    seed: int,
    blocks: int = 12,
    sampled: bool = False,
    scope_channels: int = 3,
):
    """Deprecated alias: moved to :func:`repro.scenarios.synth.synth_dag`.

    The generator grew into the scenario-synthesis layer of the campaign
    engine (:mod:`repro.scenarios`); only the optimizer's synthetic leaf
    types stayed here.  This alias delegates (same seeds, same diagrams,
    bit-for-bit) and will be removed once external imports migrate.
    """
    import warnings

    warnings.warn(
        "repro.core.opt.synth.synth_dag has moved to "
        "repro.scenarios.synth.synth_dag; update the import "
        "(this compatibility alias will be removed)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenarios.synth import synth_dag as _synth_dag

    return _synth_dag(
        seed, blocks=blocks, sampled=sampled, scope_channels=scope_channels,
    )
