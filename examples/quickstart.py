"""Quickstart: a hybrid thermostat in ~80 lines.

The smallest model that exercises the whole paper: a *streamer* carrying
the continuous room-temperature ODE, a *capsule* with a two-state machine
supervising it, SPorts bridging the two over a channel, zero-crossing
events turning continuous threshold crossings into discrete signals, and
the hybrid scheduler interleaving both worlds.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Capsule, HybridModel, Protocol, StateMachine, Streamer
from repro.core.flowtype import SCALAR

# The signal contract between thermostat (base) and room (conjugate).
CTRL = Protocol.define(
    "HeaterCtrl", outgoing=("on", "off"), incoming=("tooHot", "tooCold")
)


class Room(Streamer):
    """Continuous world: dT/dt = -k (T - T_amb) + P * heater."""

    state_size = 1
    zero_crossing_names = ("hot", "cold")

    def __init__(self, name: str = "room") -> None:
        super().__init__(name)
        self.add_out("temp", SCALAR)
        self.add_sport("ctrl", CTRL.conjugate())
        self.params.update(
            k=0.1, T_amb=10.0, P=2.0, heater=0.0, hi=21.0, lo=19.0
        )

    def initial_state(self) -> np.ndarray:
        return np.array([15.0])

    def derivatives(self, t, state):
        p = self.params
        return np.array([
            -p["k"] * (state[0] - p["T_amb"]) + p["P"] * p["heater"]
        ])

    def compute_outputs(self, t, state):
        self.out_scalar("temp", state[0])

    def zero_crossings(self, t, state):
        return (state[0] - self.params["hi"], self.params["lo"] - state[0])

    def on_zero_crossing(self, name, t, direction):
        if direction > 0:  # only when the guard goes positive
            self.sport("ctrl").send("tooHot" if name == "hot" else "tooCold")

    def handle_signal(self, sport_name, message):
        self.params["heater"] = 1.0 if message.signal == "on" else 0.0


class Thermostat(Capsule):
    """Discrete world: heating <-> idle under run-to-completion."""

    def build_structure(self):
        self.create_port("env", CTRL.base())

    def build_behaviour(self):
        sm = StateMachine("thermostat")
        sm.add_state("heating", entry=lambda c, m: c.send("env", "on"))
        sm.add_state("idle", entry=lambda c, m: c.send("env", "off"))
        sm.initial("heating")
        sm.add_transition("heating", "idle", trigger=("env", "tooHot"))
        sm.add_transition("idle", "heating", trigger=("env", "tooCold"))
        return sm


def build_model() -> HybridModel:
    model = HybridModel("thermostat_demo")
    stat = model.add_capsule(Thermostat("stat"))
    room = model.add_streamer(Room("room"))
    model.connect_sport(stat.port("env"), room.sport("ctrl"))
    model.add_probe("T", room.dport("temp"))
    return model


def main() -> None:
    model = build_model()
    model.run(until=120.0, sync_interval=0.05)

    trajectory = model.probe("T")
    temps = trajectory.component(0)
    settled = temps[len(temps) // 2:]
    stats = model.stats()

    print("hybrid thermostat, 120 s simulated")
    print(f"  temperature band held: "
          f"[{settled.min():.2f}, {settled.max():.2f}] degC "
          f"(target 19..21)")
    print(f"  zero-crossing events fired : {stats['events_fired']}")
    print(f"  signals streamer->capsule  : {stats['signals_to_capsules']}")
    print(f"  signals capsule->streamer  : {stats['signals_to_streamers']}")
    print(f"  RTC messages dispatched    : {stats['messages_dispatched']}")
    assert 18.5 <= settled.min() and settled.max() <= 21.5, "band violated"
    print("OK")


if __name__ == "__main__":
    main()
