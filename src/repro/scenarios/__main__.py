"""Entry point for ``python -m repro.scenarios``."""

from repro.scenarios.cli import main

raise SystemExit(main())
