"""Adaptive explicit Runge-Kutta: Dormand-Prince 5(4).

The embedded 4th-order solution provides a local error estimate; a PI
step-size controller keeps the scaled error norm near 1.  This is the
default solver for simulation-quality (non-real-time) streamer runs and
the reference against which fixed-step accuracy is benchmarked (bench S1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.base import RHS, SolverBase, SolverError, StepResult, error_norm

# Dormand-Prince 5(4) Butcher tableau.
_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0])
_A = [
    np.array([]),
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
    np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84]),
]
_B5 = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0])
_B4 = np.array(
    [
        5179 / 57600,
        0.0,
        7571 / 16695,
        393 / 640,
        -92097 / 339200,
        187 / 2100,
        1 / 40,
    ]
)


class DormandPrince45(SolverBase):
    """Dormand-Prince RK5(4) with PI step control and FSAL reuse.

    Parameters
    ----------
    rtol, atol:
        Relative/absolute tolerances for the scaled error norm.
    safety:
        Step-size safety factor (classic 0.9).
    min_factor, max_factor:
        Bounds on per-step step-size change.
    max_rejects:
        Consecutive rejected steps before giving up.
    """

    name = "rk45"
    order = 5
    adaptive = True

    def __init__(
        self,
        rtol: float = 1e-6,
        atol: float = 1e-9,
        safety: float = 0.9,
        min_factor: float = 0.2,
        max_factor: float = 5.0,
        max_rejects: int = 20,
    ) -> None:
        if rtol <= 0 or atol <= 0:
            raise SolverError("tolerances must be positive")
        self.rtol = rtol
        self.atol = atol
        self.safety = safety
        self.min_factor = min_factor
        self.max_factor = max_factor
        self.max_rejects = max_rejects
        self._prev_err: Optional[float] = None
        self._fsal: Optional[np.ndarray] = None
        self._fsal_t: Optional[float] = None
        self.rejected_steps = 0
        self.accepted_steps = 0

    def reset(self) -> None:
        self._prev_err = None
        self._fsal = None
        self._fsal_t = None

    def snapshot_state(self):
        # the PI controller history and the FSAL slot are the only
        # inputs to future steps; counters ride along so resumed stats
        # match an uninterrupted run
        return {
            "prev_err": self._prev_err,
            "fsal": None if self._fsal is None else self._fsal.copy(),
            "fsal_t": self._fsal_t,
            "rejected_steps": self.rejected_steps,
            "accepted_steps": self.accepted_steps,
        }

    def restore_state(self, state):
        self._prev_err = state.get("prev_err")
        fsal = state.get("fsal")
        self._fsal = None if fsal is None else np.asarray(fsal, dtype=float)
        self._fsal_t = state.get("fsal_t")
        self.rejected_steps = int(state.get("rejected_steps", 0))
        self.accepted_steps = int(state.get("accepted_steps", 0))

    def step(self, f: RHS, t: float, y: np.ndarray, h: float) -> StepResult:
        """Attempt a step of at most ``h``; shrink until the error passes."""
        if h <= 0:
            raise SolverError(f"{self.name}: non-positive step {h}")
        y = np.asarray(y, dtype=float)
        rejects = 0
        while True:
            y_new, err = self._try_step(f, t, y, h)
            if err <= 1.0 or h <= 1e-14 * max(1.0, abs(t)):
                self.accepted_steps += 1
                h_next = h * self._growth_factor(err)
                self._prev_err = max(err, 1e-10)
                return StepResult(
                    t=t + h,
                    y=y_new,
                    h_taken=h,
                    h_next=h_next,
                    error_estimate=err,
                )
            rejects += 1
            self.rejected_steps += 1
            self._fsal = None  # FSAL invalid after rejection
            if rejects > self.max_rejects:
                raise SolverError(
                    f"rk45: {rejects} consecutive rejected steps at "
                    f"t={t:.6g} (err={err:.3g})"
                )
            h = max(
                h * max(self.min_factor, self.safety * err ** (-1.0 / 5.0)),
                1e-15,
            )

    def _growth_factor(self, err: float) -> float:
        if err == 0.0:
            return self.max_factor
        # PI controller: h_next = h * safety * err_n^{-b1} * err_{n-1}^{b2}
        beta1, beta2 = 0.7 / 5.0, 0.4 / 5.0
        factor = self.safety * err ** (-beta1)
        if self._prev_err is not None:
            factor *= self._prev_err ** beta2
        return float(min(self.max_factor, max(self.min_factor, factor)))

    def _try_step(self, f: RHS, t: float, y: np.ndarray, h: float):
        k = np.empty((7, y.size), dtype=float)
        if self._fsal is not None and self._fsal_t == t:
            k[0] = self._fsal
        else:
            k[0] = np.asarray(f(t, y), dtype=float)
        for i in range(1, 7):
            yi = y + h * (_A[i][: i] @ k[:i])
            k[i] = np.asarray(f(t + _C[i] * h, yi), dtype=float)
        y5 = y + h * (_B5 @ k)
        y4 = y + h * (_B4 @ k)
        self._check_finite(y5, t + h, self.name)
        err = error_norm(y5 - y4, y, y5, self.rtol, self.atol)
        # FSAL: k7 equals f(t+h, y5) by construction
        self._fsal = k[6]
        self._fsal_t = t + h
        return y5, err
