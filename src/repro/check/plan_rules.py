"""Plan/dataflow analyses over the flattened network / ExecutionPlan IR.

These rules read the normalised graph tables on the
:class:`~repro.check.context.CheckContext` — leaves, resolved edges,
observer edges, recorded algebraic cycles — so the same code serves a
:class:`~repro.core.model.HybridModel`, a dataflow diagram and a
compiled :class:`~repro.core.plan.ExecutionPlan`.

* **STR001** — delay-free algebraic cycles, with the full cycle path
  (the static, non-fatal face of W12).
* **STR002** — dead blocks: a block whose outputs nothing consumes,
  observes or probes, and that has no discrete side channel either.
* **STR003** — never-read outputs on otherwise-live blocks.
* **STR004** — constant-foldable subgraphs: chains of time-invariant,
  stateless blocks fed only by constants, recomputed every minor step.
* **STR005** — flow-type narrowing: a consumer declaring fields its
  driver never provides (legal under W1, but those fields silently hold
  their defaults forever).
* **STR006** — kernel-ineligible blocks: block types with no codegen
  emitter; a plan containing them always falls back from the compiled
  execution backends to the interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.flow import Relay
from repro.core.streamer import Streamer

from repro.check.context import CheckContext
from repro.check.diagnostics import FixIt
from repro.check.registry import DEFAULT_REGISTRY as REG

rule = REG.rule


def _data_ports(leaf: Streamer, direction_in: bool):
    return [
        port for port in leaf.dports.values()
        if port.is_in == direction_in and not port.relay_only
    ]


@rule("STR001", "delay-free algebraic cycle", "plan", "error",
      "W12 / paper §2: feedthrough cycles are unsolvable by forward "
      "propagation; the scheduler rejects them at build time")
def check_algebraic_cycles(ctx: CheckContext) -> None:
    for cycle in ctx.cycles:
        paths = [leaf.path() for leaf in cycle]
        segments: List[str] = []
        for index, leaf in enumerate(cycle):
            nxt = cycle[(index + 1) % len(cycle)]
            for edge in ctx.edges:
                if edge.src_leaf is leaf and edge.dst_leaf is nxt:
                    segments.append(
                        f"{edge.src_port.qualified_name} -> "
                        f"{edge.dst_port.qualified_name}"
                    )
                    break
        loop = " -> ".join(paths + [paths[0]])
        ctx.emit(
            paths[0],
            f"delay-free algebraic cycle: {loop}; insert a "
            "non-feedthrough block (unit delay, integrator) to break it",
            obj=cycle[0],
            details={"cycle": paths, "edges": segments},
        )


def _is_pure(leaf: Streamer) -> bool:
    """No state, no events, no signal side channel."""
    return (
        int(leaf.state_size) == 0
        and not leaf.sports
        and not tuple(leaf.zero_crossing_names)
    )


def _dead_leaves(ctx: CheckContext) -> List[Streamer]:
    dead: List[Streamer] = []
    for leaf in ctx.leaves:
        outs = _data_ports(leaf, direction_in=False)
        if not outs:
            continue  # a sink (Scope, Terminator): alive by side effect
        if leaf.sports or tuple(leaf.zero_crossing_names):
            continue  # signals or events escape through a side channel
        if any(ctx.port_is_read(port) for port in outs):
            continue
        dead.append(leaf)
    return dead


def _removal_fixit(ctx: CheckContext, leaf: Streamer):
    """A fix-it deleting ``leaf`` and its feeding flows, when safe.

    Only offered when every in-edge is a plain flow chain (no relay
    fan-out to unpick) and we know the containers to edit.
    """
    in_edges = ctx.in_edges_of(leaf)
    if any(
        isinstance(hop, Relay) for edge in in_edges for hop in edge.path
    ):
        return None
    model = ctx.model
    if leaf.parent is None and model is None:
        return None

    def remove() -> None:
        pads = {id(port) for port in leaf.dports.values()}

        def keeps(flow) -> bool:
            return (
                id(flow.source) not in pads and id(flow.target) not in pads
            )

        containers = []
        if model is not None:
            containers.append(model.flows)
            tops = model.streamers
        elif ctx.network is not None:
            containers.append(ctx.network.extra_flows)
            tops = ctx.network.tops
        else:  # pragma: no cover - guarded by the constructor checks
            tops = []

        def walk(streamer: Streamer) -> None:
            containers.append(streamer.flows)
            for sub in streamer.subs.values():
                if isinstance(sub, Streamer):
                    walk(sub)

        for top in tops:
            walk(top)
        for container in containers:
            container[:] = [flow for flow in container if keeps(flow)]
        if leaf.parent is not None:
            leaf.parent.subs.pop(leaf.name, None)
        elif model is not None:
            if leaf in model.streamers:
                model.streamers.remove(leaf)
            for thread in model.threads:
                if leaf in thread.streamers:
                    thread.streamers.remove(leaf)

    return FixIt(f"remove dead block {leaf.path()!r} and its flows", remove)


@rule("STR002", "dead block", "plan", "warning",
      "ROADMAP: bad plans rejected at submission — a block nothing "
      "reads burns solver time every minor step for no observable "
      "effect")
def check_dead_blocks(ctx: CheckContext) -> None:
    for leaf in _dead_leaves(ctx):
        ctx.emit(
            leaf.path(),
            "block output is never consumed, observed or probed; the "
            "block has no effect on the simulation",
            obj=leaf,
            fixit=_removal_fixit(ctx, leaf),
        )


@rule("STR003", "never-read output", "plan", "warning",
      "paper §2: flows exist to move data; an OUT DPort no flow, probe "
      "or observer reads is a wiring gap")
def check_never_read_outputs(ctx: CheckContext) -> None:
    dead = {id(leaf) for leaf in _dead_leaves(ctx)}
    for leaf in ctx.leaves:
        if id(leaf) in dead:
            continue  # STR002 already covers the whole block
        for port in _data_ports(leaf, direction_in=False):
            if not ctx.port_is_read(port):
                ctx.emit(
                    port.qualified_name,
                    "OUT DPort is computed every step but never read "
                    "(no flow, probe or observer)",
                    obj=leaf,
                )


@rule("STR004", "constant-foldable subgraph", "plan", "info",
      "perf: a time-invariant subgraph fed only by constants re-derives "
      "the same values every minor step; fold it into one Constant")
def check_constant_foldable(ctx: CheckContext) -> None:
    candidates: Dict[int, Streamer] = {
        id(leaf): leaf
        for leaf in ctx.leaves
        if _is_pure(leaf) and getattr(leaf, "time_invariant", False)
    }
    if not candidates:
        return
    in_edges: Dict[int, list] = {key: [] for key in candidates}
    for edge in ctx.edges:
        if id(edge.dst_leaf) in candidates:
            in_edges[id(edge.dst_leaf)].append(edge)

    foldable: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for key, leaf in candidates.items():
            if key in foldable:
                continue
            ports = _data_ports(leaf, direction_in=True)
            edges = in_edges[key]
            if len(edges) < len(ports):
                continue  # an undriven input: value unknown statically
            if all(id(edge.src_leaf) in foldable for edge in edges):
                foldable.add(key)
                changed = True

    # group foldable leaves into connected components along their edges
    parent: Dict[int, int] = {key: key for key in foldable}

    def find(key: int) -> int:
        while parent[key] != key:
            parent[key] = parent[parent[key]]
            key = parent[key]
        return key

    for edge in ctx.edges:
        a, b = id(edge.src_leaf), id(edge.dst_leaf)
        if a in foldable and b in foldable:
            parent[find(a)] = find(b)

    groups: Dict[int, List[Streamer]] = {}
    for leaf in ctx.leaves:  # deterministic member order
        if id(leaf) in foldable:
            groups.setdefault(find(id(leaf)), []).append(leaf)
    for members in groups.values():
        if len(members) < ctx.config.min_fold_size:
            continue
        paths = [leaf.path() for leaf in members]
        ctx.emit(
            paths[0],
            f"{len(members)} time-invariant blocks fed only by "
            f"constants ({', '.join(paths)}); the subgraph evaluates to "
            "a constant and could be folded",
            obj=members[0],
            details={"members": paths},
        )


@rule("STR005", "flow-type narrowing", "plan", "warning",
      "W1 corollary: a subset connection is legal, but target fields "
      "the source never provides silently keep their defaults")
def check_flow_type_narrowing(ctx: CheckContext) -> None:
    for edge in ctx.edges:
        src_type = edge.src_port.flow_type
        dst_type = edge.dst_port.flow_type
        if src_type == dst_type or not src_type.subset_of(dst_type):
            continue
        missing = [
            name for name in dst_type.field_names
            if name not in src_type.field_names
        ]
        ctx.emit(
            edge.dst_port.qualified_name,
            f"driver {edge.src_port.qualified_name} provides flow type "
            f"{src_type.name!r}, a strict subset of {dst_type.name!r}; "
            f"field(s) {', '.join(missing)} will always hold their "
            "default values",
            obj=edge.dst_leaf,
            details={"missing_fields": missing},
        )


@rule("STR006", "kernel-ineligible block", "plan", "info",
      "execution backends: compiled-python/native-c kernels are emitted "
      "from per-block-type codegen emitters; one block without an "
      "emitter demotes the whole plan to the interpreter")
def check_kernel_ineligible_blocks(ctx: CheckContext) -> None:
    from repro.codegen.common import _EMITTERS

    for leaf in ctx.leaves:
        kind = type(leaf).__name__
        if kind in _EMITTERS:
            continue
        ctx.emit(
            leaf.path(),
            f"block type {kind!r} has no codegen emitter; requesting a "
            "compiled execution backend (compiled-python, native-c) for "
            "this plan will fall back to the interpreter",
            obj=leaf,
            details={"block_type": kind},
        )
