"""Source blocks: signal generators with no inputs.

All sources are stateless (``state_size == 0``) and not direct-feedthrough
(they have no inputs), so they sit first in any evaluation order.
``WhiteNoise`` uses a counter-based deterministic generator so repeated
runs — and the paper's reproducibility story — are preserved even though
noise is "random".
"""

from __future__ import annotations

import math

import numpy as np

from repro.dataflow.block import Block, BlockError


class Constant(Block):
    """Emit ``value`` forever."""

    default_inputs = ()
    default_outputs = ("out",)
    time_invariant = True

    def __init__(self, name: str, value: float = 0.0) -> None:
        super().__init__(name, value=float(value))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self.params["value"])


class Step(Block):
    """0 before ``t_step``, ``amplitude`` after (plus ``offset``)."""

    def __init__(
        self,
        name: str,
        t_step: float = 0.0,
        amplitude: float = 1.0,
        offset: float = 0.0,
    ) -> None:
        super().__init__(
            name, t_step=float(t_step), amplitude=float(amplitude),
            offset=float(offset),
        )

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        p = self.params
        value = p["offset"] + (p["amplitude"] if t >= p["t_step"] else 0.0)
        self.out_scalar("out", value)


class Ramp(Block):
    """``slope * (t - t_start)`` after ``t_start``, 0 before."""

    def __init__(
        self, name: str, slope: float = 1.0, t_start: float = 0.0
    ) -> None:
        super().__init__(name, slope=float(slope), t_start=float(t_start))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        p = self.params
        self.out_scalar(
            "out", p["slope"] * max(0.0, t - p["t_start"])
        )


class Sine(Block):
    """``amplitude * sin(2π·freq·t + phase) + offset``."""

    def __init__(
        self,
        name: str,
        amplitude: float = 1.0,
        freq: float = 1.0,
        phase: float = 0.0,
        offset: float = 0.0,
    ) -> None:
        super().__init__(
            name, amplitude=float(amplitude), freq=float(freq),
            phase=float(phase), offset=float(offset),
        )

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        p = self.params
        self.out_scalar(
            "out",
            p["amplitude"] * math.sin(
                2.0 * math.pi * p["freq"] * t + p["phase"]
            ) + p["offset"],
        )


class Pulse(Block):
    """Periodic rectangular pulse with ``duty`` in (0, 1)."""

    def __init__(
        self,
        name: str,
        period: float = 1.0,
        duty: float = 0.5,
        amplitude: float = 1.0,
    ) -> None:
        if period <= 0:
            raise BlockError(f"pulse {name!r}: non-positive period {period}")
        if not 0.0 < duty < 1.0:
            raise BlockError(f"pulse {name!r}: duty must be in (0,1): {duty}")
        super().__init__(
            name, period=float(period), duty=float(duty),
            amplitude=float(amplitude),
        )

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        p = self.params
        phase = (t % p["period"]) / p["period"]
        self.out_scalar(
            "out", p["amplitude"] if phase < p["duty"] else 0.0
        )


class WhiteNoise(Block):
    """Deterministic pseudo-random noise, uniform in ±``amplitude``.

    Uses a splitmix64-style hash of ``(seed, sample_index)`` so the stream
    is reproducible and independent of solver step pattern: the noise is
    sampled and held per major step (``on_sync``), like a real DAC-driven
    disturbance injector.
    """

    def __init__(
        self, name: str, amplitude: float = 1.0, seed: int = 1
    ) -> None:
        super().__init__(name, amplitude=float(amplitude), seed=int(seed))
        self._index = 0
        self._held = 0.0

    @staticmethod
    def _hash(x: int) -> int:
        x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = x
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)

    def on_sync(self, t: float) -> None:
        raw = self._hash(self.params["seed"] * 0x10001 + self._index)
        self._index += 1
        uniform = raw / float(2 ** 64)  # [0, 1)
        self._held = (2.0 * uniform - 1.0) * self.params["amplitude"]

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self._held)


class TimeSource(Block):
    """Expose continuous time as a flow — the ``Time`` stereotype as data.

    Streamer networks that need the simulation clock as a signal (sweep
    generators, time-varying gains) read it from this block instead of
    keeping private clocks, guaranteeing a single monotone time base.
    """

    def __init__(self, name: str, scale: float = 1.0) -> None:
        super().__init__(name, scale=float(scale))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", t * self.params["scale"])
