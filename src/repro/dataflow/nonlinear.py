"""Static nonlinearities.

All stateless and direct-feedthrough except :class:`RelayHysteresis`,
which keeps a one-bit discrete memory (the relay state) updated at sync
points — and doubles as a clean example of a block publishing a
zero-crossing guard so the discrete world can observe switching.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.dataflow.block import Block, BlockError


class Saturation(Block):
    """Clamp the input into ``[lower, upper]``."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(
        self, name: str, lower: float = -1.0, upper: float = 1.0
    ) -> None:
        if lower >= upper:
            raise BlockError(
                f"saturation {name!r}: lower {lower} >= upper {upper}"
            )
        super().__init__(name, lower=float(lower), upper=float(upper))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        p = self.params
        self.out_scalar(
            "out", min(p["upper"], max(p["lower"], self.in_scalar("in")))
        )


class DeadZone(Block):
    """Zero inside ``[-width, width]``, shifted linear outside."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, width: float = 0.5) -> None:
        if width < 0:
            raise BlockError(f"deadzone {name!r}: negative width {width}")
        super().__init__(name, width=float(width))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        w = self.params["width"]
        if u > w:
            y = u - w
        elif u < -w:
            y = u + w
        else:
            y = 0.0
        self.out_scalar("out", y)


class RelayHysteresis(Block):
    """Two-level relay with hysteresis (bang-bang element).

    Output is ``on_value`` once the input exceeds ``upper`` and stays
    until it falls below ``lower``.  The relay bit updates at sync points
    (it is discrete state); the crossing instants are also published as
    zero-crossing guards ``up``/``down`` so capsules can subscribe.
    """

    default_inputs = ("in",)
    direct_feedthrough = True
    zero_crossing_names = ("up", "down")

    def __init__(
        self,
        name: str,
        lower: float = -0.5,
        upper: float = 0.5,
        on_value: float = 1.0,
        off_value: float = 0.0,
        initially_on: bool = False,
    ) -> None:
        if lower >= upper:
            raise BlockError(
                f"relay {name!r}: lower {lower} >= upper {upper}"
            )
        super().__init__(
            name, lower=float(lower), upper=float(upper),
            on_value=float(on_value), off_value=float(off_value),
        )
        self.on = bool(initially_on)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        # the relay switches as soon as the threshold is passed; the bit
        # below only memorises it between evaluations
        if self.on and u < self.params["lower"]:
            self.on = False
        elif not self.on and u > self.params["upper"]:
            self.on = True
        self.out_scalar(
            "out",
            self.params["on_value"] if self.on else self.params["off_value"],
        )

    def zero_crossings(self, t: float, state: np.ndarray) -> Tuple[float, float]:
        u = self.in_scalar("in")
        return (u - self.params["upper"], self.params["lower"] - u)


class Quantizer(Block):
    """Round the input to multiples of ``step``."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, step: float = 0.1) -> None:
        if step <= 0:
            raise BlockError(f"quantizer {name!r}: non-positive step {step}")
        super().__init__(name, step=float(step))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        step = self.params["step"]
        self.out_scalar(
            "out", step * round(self.in_scalar("in") / step)
        )


class LookupTable1D(Block):
    """Piecewise-linear interpolation through ``(x, y)`` breakpoints.

    Inputs outside the table are linearly extrapolated from the end
    segments, matching common CACSD tool behaviour.
    """

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> None:
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys) or len(xs) < 2:
            raise BlockError(
                f"lookup {name!r}: need >= 2 matching breakpoints"
            )
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise BlockError(
                f"lookup {name!r}: x breakpoints must strictly increase"
            )
        super().__init__(name)
        self.xs = np.asarray(xs)
        self.ys = np.asarray(ys)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        u = self.in_scalar("in")
        xs, ys = self.xs, self.ys
        if u <= xs[0]:
            idx = 0
        elif u >= xs[-1]:
            idx = len(xs) - 2
        else:
            idx = int(np.searchsorted(xs, u)) - 1
        slope = (ys[idx + 1] - ys[idx]) / (xs[idx + 1] - xs[idx])
        self.out_scalar("out", float(ys[idx] + slope * (u - xs[idx])))
