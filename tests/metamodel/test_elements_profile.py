"""Metamodel elements, multiplicities and profile application."""

import pytest

from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Classifier,
    MetamodelError,
    Multiplicity,
    Operation,
    Package,
)
from repro.metamodel.profile import Profile, ProfileError, extension_profile, umlrt_profile


class TestMultiplicity:
    @pytest.mark.parametrize("text,lower,upper", [
        ("1", 1, 1), ("*", 0, None), ("0..1", 0, 1),
        ("1..*", 1, None), ("2..5", 2, 5),
    ])
    def test_parse(self, text, lower, upper):
        m = Multiplicity.parse(text)
        assert (m.lower, m.upper) == (lower, upper)

    @pytest.mark.parametrize("text", ["1", "*", "0..1", "1..*", "2..5"])
    def test_str_round_trip(self, text):
        assert str(Multiplicity.parse(text)) == text

    def test_invalid_bounds(self):
        with pytest.raises(MetamodelError):
            Multiplicity(2, 1)
        with pytest.raises(MetamodelError):
            Multiplicity(-1, 1)


class TestRendering:
    def test_attribute_render(self):
        attr = Attribute("state", "State", "-", Multiplicity.parse("*"))
        assert attr.render() == "-state: State [*]"

    def test_plain_attribute(self):
        assert Attribute("x").render() == "-x"

    def test_operation_render(self):
        op = Operation("AlgorithmInterface")
        assert op.render() == "+AlgorithmInterface()"

    def test_operation_with_params(self):
        op = Operation("step", parameters=("t", "y"), return_type="float")
        assert op.render() == "+step(t, y): float"


class TestPackage:
    def test_add_and_get(self):
        pkg = Package("p")
        cls = pkg.add_class(Classifier("A"))
        assert pkg.classifier("A") is cls

    def test_duplicate_class(self):
        pkg = Package("p")
        pkg.add_class(Classifier("A"))
        with pytest.raises(MetamodelError):
            pkg.add_class(Classifier("A"))

    def test_association_references_checked(self):
        pkg = Package("p")
        pkg.add_class(Classifier("A"))
        with pytest.raises(MetamodelError):
            pkg.add_association(Association(
                "x", AssociationEnd("A"), AssociationEnd("Ghost")
            ))

    def test_generalization_and_children(self):
        pkg = Package("p")
        pkg.add_class(Classifier("Base"))
        pkg.add_class(Classifier("D1"))
        pkg.add_class(Classifier("D2"))
        pkg.add_generalization("D1", "Base")
        pkg.add_generalization("D2", "Base")
        assert pkg.children_of("Base") == ["D1", "D2"]

    def test_generalization_unknown_class(self):
        pkg = Package("p")
        pkg.add_class(Classifier("A"))
        with pytest.raises(MetamodelError):
            pkg.add_generalization("A", "Ghost")


class TestProfile:
    def test_builtin_profiles(self):
        assert len(umlrt_profile().names()) == 6
        assert len(extension_profile().names()) == 9

    def test_apply_class_stereotype(self):
        profile = extension_profile()
        cls = Classifier("MyStreamer")
        profile.apply(cls, "streamer")
        assert "streamer" in cls.stereotypes
        # idempotent
        profile.apply(cls, "streamer")
        assert cls.stereotypes.count("streamer") == 1

    def test_port_stereotype_not_class_applicable(self):
        profile = extension_profile()
        with pytest.raises(ProfileError):
            profile.apply(Classifier("X"), "DPort")

    def test_unknown_stereotype(self):
        with pytest.raises(ProfileError):
            extension_profile().get("ghost")

    def test_applied_to(self):
        profile = extension_profile()
        cls = Classifier("X")
        profile.apply(cls, "streamer")
        applied = profile.applied_to(cls)
        assert [s.name for s in applied] == ["streamer"]

    def test_duplicate_stereotype_in_profile(self):
        from repro.metamodel.stereotypes import StereotypeDef

        dup = StereotypeDef("x", "Class", "p")
        with pytest.raises(ProfileError):
            Profile("p", [dup, dup])
