"""Block: the common base of all library blocks.

A block is a leaf streamer with scalar DPorts and a parameter dictionary.
The base class adds:

* uniform construction of scalar IN/OUT ports (``inputs=…``/``outputs=…``);
* a default ``handle_signal`` implementing a tiny parameter-tuning
  protocol: any signal named ``set_<param>`` with a float payload updates
  ``params[<param>]``, so capsules can retune blocks at run time without
  bespoke glue (the paper's "modifying parameters" solver duty);
* bookkeeping used by the C1 baseline comparison (block/port counts).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.core.flowtype import SCALAR, FlowType
from repro.core.streamer import Streamer
from repro.umlrt.signal import Message


class BlockError(Exception):
    """Raised on invalid block parameters or wiring."""


class Block(Streamer):
    """A leaf streamer with scalar ports and tunable parameters."""

    #: default port names; subclasses may override or pass at init
    default_inputs: Sequence[str] = ()
    default_outputs: Sequence[str] = ("out",)

    def __init__(
        self,
        name: str,
        inputs: Optional[Sequence[str]] = None,
        outputs: Optional[Sequence[str]] = None,
        flow_type: FlowType = SCALAR,
        **params: Any,
    ) -> None:
        super().__init__(name)
        for port_name in (inputs if inputs is not None
                          else self.default_inputs):
            self.add_in(port_name, flow_type)
        for port_name in (outputs if outputs is not None
                          else self.default_outputs):
            self.add_out(port_name, flow_type)
        self.params.update(params)

    # ------------------------------------------------------------------
    def param(self, key: str) -> Any:
        try:
            return self.params[key]
        except KeyError:
            raise BlockError(
                f"block {self.path()} has no parameter {key!r}"
            ) from None

    def handle_signal(self, sport_name: str, message: Message) -> None:
        """Default tuning protocol: ``set_<param>`` updates ``params``."""
        if message.signal.startswith("set_"):
            key = message.signal[len("set_"):]
            if key in self.params:
                self.params[key] = message.data
                return
        super().handle_signal(sport_name, message)

    @property
    def in_names(self) -> Sequence[str]:
        return [p.name for p in self.dports.values() if p.is_in]

    @property
    def out_names(self) -> Sequence[str]:
        return [p.name for p in self.dports.values() if p.is_out]
