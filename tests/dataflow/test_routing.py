"""Routing and rate-shaping blocks."""

import math

import numpy as np
import pytest

from repro.core.model import HybridModel
from repro.dataflow import (
    Constant,
    Diagram,
    FilteredDerivative,
    Gain,
    RateLimiter,
    Sine,
    Step,
    Switch,
    TimeSource,
    TransportDelay,
)
from repro.dataflow.block import BlockError


def feed(block, **inputs):
    for name, value in inputs.items():
        block.dport(name)._store(float(value))
    block.compute_outputs(0.0, np.zeros(block.state_size))
    return block.dport("out").read_scalar()


def run_diagram(diagram, probe_path, until=2.0, sync=0.01, h=0.001):
    diagram.finalise()
    model = HybridModel("t")
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at(probe_path))
    model.run(until=until, sync_interval=sync)
    return model.probe("y")


class TestSwitch:
    def test_selects_on_threshold(self):
        switch = Switch("sw", threshold=0.5)
        assert feed(switch, in1=10.0, in2=20.0, ctrl=1.0) == 10.0
        assert feed(switch, in1=10.0, in2=20.0, ctrl=0.0) == 20.0
        assert feed(switch, in1=10.0, in2=20.0, ctrl=0.5) == 10.0  # >=

    def test_guard_published(self):
        switch = Switch("sw", threshold=0.5)
        switch.dport("ctrl")._store(0.8)
        assert switch.zero_crossings(0.0, np.empty(0))[0] == \
            pytest.approx(0.3)

    def test_in_model_switching(self):
        d = Diagram("d")
        d.add(Constant("a", 1.0))
        d.add(Constant("b", -1.0))
        d.add(Step("trigger", t_step=1.0))
        d.add(Switch("sw", threshold=0.5))
        d.connect("a.out", "sw.in1")
        d.connect("b.out", "sw.in2")
        d.connect("trigger.out", "sw.ctrl")
        trajectory = run_diagram(d, "sw.out", until=2.0)
        assert trajectory.sample(0.5)[0] == -1.0
        assert trajectory.sample(1.5)[0] == 1.0


class TestRateLimiter:
    def test_limits_rise(self):
        d = Diagram("d")
        d.add(Step("s", amplitude=10.0))
        d.add(RateLimiter("rl", rising=2.0, falling=-2.0, ts=0.01))
        d.connect("s.out", "rl.in")
        trajectory = run_diagram(d, "rl.out", until=2.0)
        # output ramps at 2/s: reaches ~4 at t=2
        assert trajectory.y_final[0] == pytest.approx(4.0, abs=0.1)
        # never exceeds the allowed slope between probe samples
        values = trajectory.component(0)
        times = trajectory.times
        slopes = np.diff(values) / np.maximum(np.diff(times), 1e-12)
        assert slopes.max() <= 2.0 + 1e-6

    def test_passes_slow_signals(self):
        d = Diagram("d")
        d.add(Sine("s", amplitude=0.1, freq=0.2))
        d.add(RateLimiter("rl", rising=10.0, falling=-10.0, ts=0.01))
        d.connect("s.out", "rl.in")
        trajectory = run_diagram(d, "rl.out", until=2.0)
        expected = 0.1 * math.sin(2 * math.pi * 0.2 * 2.0)
        assert trajectory.y_final[0] == pytest.approx(expected, abs=0.01)

    def test_validation(self):
        with pytest.raises(BlockError):
            RateLimiter("rl", rising=-1.0)
        with pytest.raises(BlockError):
            RateLimiter("rl", falling=1.0)


class TestTransportDelay:
    def test_delays_ramp(self):
        d = Diagram("d")
        d.add(TimeSource("t"))
        d.add(TransportDelay("td", delay=0.5))
        d.connect("t.out", "td.in")
        trajectory = run_diagram(d, "td.out", until=2.0, sync=0.01)
        # out(t) = t - 0.5 for t > 0.5
        assert trajectory.sample(1.5)[0] == pytest.approx(1.0, abs=0.02)
        assert trajectory.sample(2.0)[0] == pytest.approx(1.5, abs=0.02)

    def test_initial_value_before_delay(self):
        d = Diagram("d")
        d.add(Constant("c", 7.0))
        d.add(TransportDelay("td", delay=1.0, initial=-3.0))
        d.connect("c.out", "td.in")
        trajectory = run_diagram(d, "td.out", until=2.0, sync=0.01)
        assert trajectory.sample(0.5)[0] == pytest.approx(-3.0)
        assert trajectory.sample(1.6)[0] == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(BlockError):
            TransportDelay("td", delay=0.0)


class TestFilteredDerivative:
    def test_differentiates_ramp(self):
        d = Diagram("d")
        d.add(TimeSource("t"))
        d.add(Gain("g", k=3.0))
        d.add(FilteredDerivative("dd", tf=0.01))
        d.connect("t.out", "g.in")
        d.connect("g.out", "dd.in")
        trajectory = run_diagram(d, "dd.out", until=1.0, h=0.0005)
        # derivative of 3t is 3 once the filter settles
        assert trajectory.y_final[0] == pytest.approx(3.0, abs=0.01)

    def test_differentiates_sine(self):
        d = Diagram("d")
        d.add(Sine("s", amplitude=1.0, freq=0.5))
        d.add(FilteredDerivative("dd", tf=0.005))
        d.connect("s.out", "dd.in")
        trajectory = run_diagram(d, "dd.out", until=1.0, h=0.0005)
        omega = 2 * math.pi * 0.5
        expected = omega * math.cos(omega * 1.0)
        assert trajectory.y_final[0] == pytest.approx(expected, abs=0.05)

    def test_validation(self):
        with pytest.raises(BlockError):
            FilteredDerivative("dd", tf=0.0)
