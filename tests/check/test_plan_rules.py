"""Positive and negative cases for every STR rule."""

from repro.check import CheckConfig, run_checks
from repro.core.network import FlatNetwork
from repro.core.plan import ExecutionPlan
from repro.dataflow import Constant, Diagram, Gain, Integrator, Scope

from tests.check.builders import (
    dead_chain_model,
    feedback_model,
    foldable_model,
    loop_model,
    narrowing_model,
    never_read_model,
)


def codes(result):
    return {d.code for d in result.diagnostics}


class TestSTR001:
    def test_reports_cycle_with_full_path(self):
        result = run_checks(loop_model())
        findings = result.by_code("STR001")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.severity == "error"
        # the details carry the full cycle: both members, no more
        assert sorted(finding.details["cycle"]) == ["a", "b"]
        assert finding.subject in ("a", "b")
        assert "->" in finding.message
        assert not result.ok("error")

    def test_self_loop_is_a_one_element_cycle(self):
        diagram = Diagram("d")
        diagram.add(Gain("g", k=0.5))
        diagram.connect("g.out", "g.in")
        result = run_checks(diagram)
        findings = result.by_code("STR001")
        assert len(findings) == 1
        assert findings[0].details["cycle"] == ["d.g"]

    def test_integrator_breaks_the_loop(self):
        result = run_checks(feedback_model())
        assert not result.by_code("STR001")
        assert result.ok("error")

    def test_fires_on_a_compiled_plan(self):
        model = loop_model()
        network = FlatNetwork(model.streamers, model.flows, strict=False)
        plan = ExecutionPlan.compile(network)
        result = run_checks(plan)
        assert result.by_code("STR001")
        assert result.subject.startswith("plan:")

    def test_clean_plan_has_no_cycle(self):
        model = feedback_model()
        network = FlatNetwork(model.streamers, model.flows)
        plan = ExecutionPlan.compile(network)
        assert not run_checks(plan).by_code("STR001")


class TestSTR002:
    def test_unread_tail_is_dead(self):
        result = run_checks(dead_chain_model(n=2))
        findings = result.by_code("STR002")
        assert [d.subject for d in findings] == ["g1"]
        assert findings[0].severity == "warning"
        assert findings[0].fixit is not None

    def test_probed_block_is_alive(self):
        result = run_checks(feedback_model())
        assert not result.by_code("STR002")

    def test_sink_block_is_alive_by_side_effect(self):
        diagram = Diagram("d")
        diagram.add(Constant("c", value=1.0))
        diagram.add(Scope("scope"))
        diagram.connect("c.out", "scope.in1")
        assert not run_checks(diagram).by_code("STR002")

    def test_fixit_removes_block_and_flows(self):
        model = dead_chain_model(n=1)
        result = run_checks(model)
        [finding] = result.by_code("STR002")
        finding.fixit()
        names = [s.name for s in model.streamers]
        assert "g0" not in names
        assert all(
            "g0" not in (f.source.owner.name, f.target.owner.name)
            for f in model.flows
        )


class TestSTR003:
    def test_dangling_output_reported_by_port(self):
        result = run_checks(never_read_model())
        findings = result.by_code("STR003")
        assert len(findings) == 1
        assert findings[0].subject.endswith(".b") or (
            findings[0].subject == "split.b"
        )

    def test_probe_counts_as_read(self):
        result = run_checks(never_read_model(probe_b=True))
        assert not result.by_code("STR003")

    def test_dead_block_not_double_reported(self):
        # the dead tail's output is unread, but STR002 subsumes it
        result = run_checks(dead_chain_model(n=1))
        dead_subjects = {d.subject for d in result.by_code("STR002")}
        for finding in result.by_code("STR003"):
            owner = finding.subject.rsplit(".", 1)[0]
            assert owner not in dead_subjects


class TestSTR004:
    def test_constant_fed_chain_reported_once(self):
        result = run_checks(foldable_model(constant_fed=True))
        findings = result.by_code("STR004")
        assert len(findings) == 1
        assert findings[0].severity == "info"
        assert sorted(findings[0].details["members"]) == ["b", "g", "src"]

    def test_time_varying_source_blocks_folding(self):
        result = run_checks(foldable_model(constant_fed=False))
        assert not result.by_code("STR004")

    def test_min_fold_size_gate(self):
        result = run_checks(
            foldable_model(constant_fed=True),
            config=CheckConfig(min_fold_size=4),
        )
        assert not result.by_code("STR004")


class TestSTR005:
    def test_subset_connection_reports_missing_fields(self):
        result = run_checks(narrowing_model(narrow=True))
        findings = result.by_code("STR005")
        assert len(findings) == 1
        assert findings[0].details["missing_fields"] == ["v"]
        assert "v" in findings[0].message

    def test_equal_types_clean(self):
        assert not run_checks(
            narrowing_model(narrow=False)
        ).by_code("STR005")


class TestDiagramSurface:
    def test_unfinalised_diagram_is_finalised_in_place(self):
        diagram = Diagram("d")
        diagram.add(Constant("c", value=1.0))
        diagram.add(Gain("g", k=2.0))
        diagram.add(Scope("s"))
        diagram.connect("c.out", "g.in")
        diagram.connect("g.out", "s.in1")
        result = run_checks(diagram)
        assert diagram._finalised
        assert not result.by_code("STR002")
