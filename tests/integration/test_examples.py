"""The shipped examples must run clean end to end (they self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "inverted_pendulum.py",
    "cruise_control.py",
    "multirate_threads.py",
    "unified_workflow.py",
    "networked_control.py",
    "batch_sweep.py",
    "service_demo.py",
    "checkpoint_resume.py",
    "cluster_demo.py",
])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "OK" in result.stdout
