"""Fault injector: determinism, fault kinds, retry classification."""

from __future__ import annotations

import pytest

from tests.resilience.conftest import build_control_model

from repro.resilience import (
    FaultInjector, InjectedCrash, InjectedDivergence, InjectedFault,
    InjectedPreemption,
)
from repro.service.jobs import TransientJobError
from repro.solvers.base import SolverError


class TestPlanning:
    def test_seeded_crash_window_is_reproducible(self):
        steps = [
            FaultInjector(seed=11).crash_between(10, 500).plan[0].step
            for __ in range(3)
        ]
        assert steps[0] == steps[1] == steps[2]
        assert 10 <= steps[0] <= 500

    def test_different_seeds_differ(self):
        a = FaultInjector(seed=1).crash_between(0, 10_000).plan[0].step
        b = FaultInjector(seed=2).crash_between(0, 10_000).plan[0].step
        assert a != b

    def test_seeded_plan_identical_across_processes(self):
        """Same seed + attempt numbers -> same PlannedFault schedule in
        a fresh interpreter (the process-isolation contract: a pickled
        injector rebuilt in a worker must plan the same faults)."""
        import json
        import os
        import subprocess
        import sys

        def plan_rows(injector):
            return [
                [f.kind, f.step, f.magnitude, f.attempt]
                for f in injector.plan
            ]

        def build(seed):
            return (
                FaultInjector(seed=seed)
                .crash_between(10, 500, attempt=1)
                .crash_between(600, 900, attempt=2)
                .diverge_at_step(42, attempt=None)
            )

        script = (
            "import json\n"
            "from repro.resilience import FaultInjector\n"
            "inj = (FaultInjector(seed=11)"
            ".crash_between(10, 500, attempt=1)"
            ".crash_between(600, 900, attempt=2)"
            ".diverge_at_step(42, attempt=None))\n"
            "print(json.dumps([[f.kind, f.step, f.magnitude, f.attempt]"
            " for f in inj.plan]))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        # a different hash seed proves the plan never leans on hash()
        env["PYTHONHASHSEED"] = "12345"
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))
            )),
        ).stdout
        assert json.loads(output) == plan_rows(build(11))
        assert json.loads(output) != plan_rows(build(12))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().crash_between(5, 4)

    def test_plans_chain(self):
        injector = (
            FaultInjector(seed=0)
            .crash_at_step(10)
            .diverge_at_step(20)
            .preempt_at_step(30)
        )
        assert [f.kind for f in injector.plan] == [
            "crash", "diverge", "preempt",
        ]


class TestFiring:
    def run_armed(self, injector, t_end=2.0):
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        injector.arm(scheduler)
        scheduler.run(t_end)
        return model, scheduler

    def test_crash_fires_once_at_step(self):
        injector = FaultInjector(seed=0).crash_at_step(42)
        with pytest.raises(InjectedCrash):
            self.run_armed(injector)
        assert [r.kind for r in injector.fired] == ["crash"]
        assert injector.fired[0].step == 42

    def test_faults_are_transient_errors(self):
        # the whole recovery story rides the engine's retry path
        assert issubclass(InjectedFault, TransientJobError)
        for cls in (InjectedCrash, InjectedDivergence, InjectedPreemption):
            assert issubclass(cls, InjectedFault)

    def test_preemption_fires(self):
        injector = FaultInjector(seed=0).preempt_at_step(30)
        with pytest.raises(InjectedPreemption):
            self.run_armed(injector)

    def test_fired_fault_does_not_refire(self):
        injector = FaultInjector(seed=0).crash_at_step(42)
        with pytest.raises(InjectedCrash):
            self.run_armed(injector)
        # second attempt with the same injector sails past step 42
        model, scheduler = self.run_armed(injector)
        assert model.time.raw == 2.0  # ran to completion
        assert len(injector.fired) == 1

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_divergence_surfaces_as_solver_error(self):
        injector = FaultInjector(seed=0).diverge_at_step(25)
        with pytest.raises(SolverError):
            self.run_armed(injector)
        assert injector.consume_divergence() is True
        assert injector.consume_divergence() is False  # fetch-and-clear

    def test_unfired_injector_changes_nothing(self):
        import numpy as np

        reference = build_control_model()
        reference.run(until=1.0, sync_interval=0.01)
        observed, __ = self.run_armed(
            FaultInjector(seed=0).crash_at_step(10_000), t_end=1.0,
        )
        for name in reference.probes:
            assert np.array_equal(
                reference.probe(name).states, observed.probe(name).states,
            )
