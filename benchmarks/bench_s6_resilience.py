"""Experiment S6 — the resilience layer.

Two headline measurements for checkpointing and crash recovery:

1. **Checkpoint overhead** — the same hybrid run (oscillator + damper +
   watchdog capsule, 500 major steps) with a
   :class:`~repro.resilience.CheckpointManager` spooling at several
   step intervals, against an unobserved baseline.  The acceptance bar
   is < 5% wall-time slowdown at the default interval of 100 steps
   (checkpointing rides the passive ``on_major_step`` hook, so the cost
   is capture + atomic write, amortised over the interval).
2. **Cold restart vs resume** — a run killed at 80% of the way through,
   then finished either from scratch (cold) or from the newest
   checkpoint (resume).  Recovered simulated time is time not re-paid:
   resume must beat the cold restart by well over the 20%-of-work it
   actually has left.

Timings use ``perf_counter`` minima over repeats (the usual bench
convention here: the minimum is the least-noise estimate of the true
cost).  Identity of the resumed trajectories is asserted, not assumed —
the speedup would be meaningless if resume changed the answer.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from tests.resilience.conftest import (
    assert_probes_bitwise, build_control_model, run_until_crash,
)

from repro.resilience import CheckpointManager, SnapshotCodec

T_END = 5.0
SYNC = 0.01          # 500 major steps
INTERVALS = (25, 100, 400)
REPEATS = 5
OVERHEAD_BAR = 5.0   # percent, at interval=100
CRASH_STEP = 400     # 80% of the run


def timed_run(spool=None, every=100):
    model = build_control_model()
    scheduler = model.scheduler(sync_interval=SYNC)
    manager = None
    if spool is not None:
        manager = CheckpointManager(spool, every_steps=every, keep=3)
        manager.attach(scheduler)
    started = time.perf_counter()
    scheduler.run(T_END)
    elapsed = time.perf_counter() - started
    return elapsed, model, manager


def test_checkpoint_overhead(tmp_path, report, bench_json):
    base = min(timed_run()[0] for __ in range(REPEATS))
    rows = [f"{'interval':>10} {'time':>9} {'saves':>6} {'overhead':>9}"]
    metrics = {"baseline_seconds": base}
    overhead_at_100 = None
    for every in INTERVALS:
        spool = tmp_path / f"every{every}"
        best, saves = None, None
        for __ in range(REPEATS):
            elapsed, __model, manager = timed_run(spool, every)
            if best is None or elapsed < best:
                best, saves = elapsed, manager.saves
        overhead = 100.0 * (best - base) / base
        if every == 100:
            overhead_at_100 = overhead
        rows.append(
            f"{every:>10} {best * 1e3:>7.2f}ms {saves:>6} {overhead:>8.2f}%"
        )
        metrics[f"overhead_pct_interval_{every}"] = overhead
    report("S6 checkpoint overhead (500 major steps)", rows)
    bench_json("s6", metrics)
    assert overhead_at_100 < OVERHEAD_BAR, (
        f"checkpointing at interval=100 cost {overhead_at_100:.2f}% "
        f"(bar: {OVERHEAD_BAR}%)"
    )


def test_cold_restart_vs_resume(tmp_path, report, bench_json):
    # reference for identity checks
    reference = build_control_model()
    reference.run(until=T_END, sync_interval=SYNC)

    # the crashed attempt leaves a spool behind
    crashed = build_control_model()
    scheduler = crashed.scheduler(sync_interval=SYNC)
    manager = CheckpointManager(tmp_path, every_steps=50, keep=2)
    manager.attach(scheduler)
    inner = scheduler.on_major_step

    class Killed(Exception):
        pass

    def crash(t_now):
        inner(t_now)
        if scheduler.major_steps >= CRASH_STEP:
            raise Killed

    scheduler.on_major_step = crash
    with pytest.raises(Killed):
        scheduler.run(T_END)
    __, snapshot = manager.load_latest()

    def cold():
        model = build_control_model()
        started = time.perf_counter()
        model.run(until=T_END, sync_interval=SYNC)
        return time.perf_counter() - started, model

    def resume():
        model = build_control_model()
        fresh = model.scheduler(sync_interval=SYNC)
        started = time.perf_counter()
        SnapshotCodec().restore(fresh, snapshot)
        fresh.run(T_END)
        return time.perf_counter() - started, model

    cold_best, __ = min((cold() for __ in range(REPEATS)),
                        key=lambda pair: pair[0])
    resume_best, resumed_model = min((resume() for __ in range(REPEATS)),
                                     key=lambda pair: pair[0])
    assert_probes_bitwise(reference, resumed_model)

    speedup = cold_best / resume_best
    recovered_fraction = snapshot.t / T_END
    report("S6 cold restart vs checkpoint resume", [
        f"crash at step {CRASH_STEP}/500, newest checkpoint at "
        f"t={snapshot.t:g} ({100 * recovered_fraction:.0f}% recovered)",
        f"cold restart : {cold_best * 1e3:8.2f} ms",
        f"resume       : {resume_best * 1e3:8.2f} ms",
        f"speedup      : {speedup:8.2f}x",
    ])
    bench_json("s6", {
        "cold_restart_seconds": cold_best,
        "resume_seconds": resume_best,
        "resume_speedup": speedup,
        "recovered_sim_time_fraction": recovered_fraction,
    })
    # 80% of the work is recovered; resume must show a clear win even
    # after paying decode + restore
    assert speedup > 2.0, f"resume speedup only {speedup:.2f}x"
