"""The paper's artefacts: Table 1, Figures 1, 2 and 3 — machine-checked."""

import pytest

from repro.metamodel import (
    EXTENSION_PROFILE,
    TABLE1,
    UMLRT_PROFILE,
    figure1_package,
    figure2_streamer,
    figure3_capsule_model,
    implementation_of,
    render_capsule_structure,
    render_class_diagram,
    render_streamer_structure,
    render_table1,
    table1_rows,
)
from repro.metamodel.classdiagram import (
    FIGURE1_IMPLEMENTATIONS,
    check_figure1_against_library,
)
from repro.metamodel.stereotypes import new_stereotype_count


class TestTable1:
    def test_row_structure_matches_paper(self):
        assert table1_rows() == [
            ("capsule", "streamer"),
            ("port", "DPort, SPort"),
            ("connect", "flow, relay"),
            ("protocol", "flow type"),
            ("state machine", "solver, strategy"),
            ("Time service", "Time"),
        ]

    def test_eight_new_stereotypes(self):
        """The paper: 'This paper introduces eight new stereotypes'."""
        assert new_stereotype_count() == 8

    def test_every_stereotype_implemented(self):
        for profile in (UMLRT_PROFILE, EXTENSION_PROFILE):
            for stereotype in profile:
                impl = implementation_of(stereotype.name)
                assert isinstance(impl, type), stereotype.name

    def test_table_maps_to_real_classes(self):
        """Each Table-1 pairing maps a UML-RT class to extension classes."""
        for umlrt_name, extension_names in TABLE1:
            implementation_of(umlrt_name)
            for name in extension_names:
                implementation_of(name)

    def test_unknown_stereotype(self):
        with pytest.raises(KeyError):
            implementation_of("ghost")

    def test_render_contains_all_rows(self):
        text = render_table1()
        for left, right in table1_rows():
            assert left in text and right in text
        assert "Table 1" in text

    def test_port_notations(self):
        by_name = {s.name: s for s in EXTENSION_PROFILE}
        assert by_name["DPort"].notation == "circle"
        assert by_name["SPort"].notation == "square"


class TestFigure1:
    def test_classifiers_present(self):
        pkg = figure1_package()
        assert set(pkg.classifiers) == {
            "State", "Strategy", "ConcreteStrategyA", "ConcreteStrategyB",
            "ConcreteStrategyC", "Capsule", "Streamer",
        }

    def test_strategy_hierarchy(self):
        pkg = figure1_package()
        assert pkg.children_of("Strategy") == [
            "ConcreteStrategyA", "ConcreteStrategyB", "ConcreteStrategyC"
        ]
        assert pkg.classifier("Strategy").abstract

    def test_multiplicities(self):
        pkg = figure1_package()
        by_name = {a.name: a for a in pkg.associations}
        states = by_name["capsuleStates"]
        assert str(states.end1.multiplicity) == "1"
        assert str(states.end2.multiplicity) == "*"
        assert states.end2.role == "state"
        strategies = by_name["streamerStrategies"]
        assert strategies.end2.role == "strategy"

    def test_capsule_streamer_composition(self):
        pkg = figure1_package()
        assoc = {a.name: a for a in pkg.associations}["capsuleStreamers"]
        assert assoc.end1.aggregation == "composite"
        assert str(assoc.end2.multiplicity) == "*"

    def test_algorithm_interface_operations(self):
        pkg = figure1_package()
        for name in ("State", "Strategy", "ConcreteStrategyA"):
            ops = [o.name for o in pkg.classifier(name).operations]
            assert "AlgorithmInterface" in ops

    def test_live_library_check(self):
        assert check_figure1_against_library() == []

    def test_every_classifier_has_implementation(self):
        pkg = figure1_package()
        assert set(FIGURE1_IMPLEMENTATIONS) == set(pkg.classifiers)

    def test_render(self):
        text = render_class_diagram(figure1_package())
        assert "ConcreteStrategyA --|> Strategy" in text
        assert "+AlgorithmInterface()" in text


class TestFigure2:
    def test_structure(self):
        top = figure2_streamer()
        assert set(top.subs) == {"sub1", "sub2", "sub3"}
        assert "split" in top.relays
        assert len(top.flows) == 4
        assert "sctrl" in top.sports
        assert top.dport("din").relay_only  # boundary

    def test_simulates(self, model):
        top = figure2_streamer()
        model.add_streamer(top)
        model.add_probe("out", top.dport("dout"))
        model.run(until=3.14159, sync_interval=0.01)
        # integral of sin from 0..pi ~ handled by sub3; dout carries
        # sub2's (gain 1) output = sin(t), which at pi is ~0
        assert abs(model.probe("out").y_final[0]) < 1e-2

    def test_render_notation(self):
        text = render_streamer_structure(figure2_streamer())
        assert "(o" in text      # circle DPorts
        assert "[# sctrl]" in text  # square SPort
        assert "relay split" in text
        assert "sub-streamer sub1" in text


class TestFigure3:
    def test_structure(self):
        model, top = figure3_capsule_model()
        assert "sub" in top.parts
        assert len(model.streamers) == 2
        assert len(model.bridges) == 2

    def test_runs_and_interacts(self):
        model, top = figure3_capsule_model()
        model.run(until=2.0, sync_interval=0.05)
        assert top.acks == {"s1": True, "s2": True}
        assert model.probe("y1").y_final[0] > 0.5

    def test_render(self):
        model, top = figure3_capsule_model()
        model.scheduler().build()
        text = render_capsule_structure(top)
        assert "capsule topCapsule" in text
        assert "topCapsule.sub" in text
