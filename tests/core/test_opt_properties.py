"""Property-based optimizer validation on random DAGs.

Reuses the random Gain/Sum/Constant DAG generator from the network
property suite: for every generated diagram, the O1 pipeline must be a
bitwise-identity rewrite of the O0 plan at every read-out, and O2 must
stay within float re-association tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from tests.test_properties_network import build_diagram, dag_specs

from repro.core.network import FlatNetwork
from repro.core.opt import OptConfig
from repro.dataflow import Constant, Diagram, Gain, Integrator, Sum


def build_sunk_diagram(sources, nodes):
    """The harness DAG plus an Integrator consuming the last node, so
    one path stays live under DCE (matching how a real model consumes
    its signals); everything else is fair game for the optimizer."""
    d = Diagram("dag")
    for name, value in sources:
        d.add(Constant(name, value))
    for spec in nodes:
        if spec[0] == "gain":
            __, name, k, ups = spec
            d.add(Gain(name, k=k))
            d.connect(f"{ups[0]}.out", f"{name}.in")
        else:
            __, name, signs, ups = spec
            d.add(Sum(name, signs=signs))
            for index, upstream in enumerate(ups):
                d.connect(f"{upstream}.out", f"{name}.in{index + 1}")
    d.add(Integrator("propsink"))
    d.connect(f"{nodes[-1][1]}.out", "propsink.in")
    d.finalise()
    return d


class TestOptimizedPlansMatchUnoptimized:
    @settings(max_examples=40, deadline=None)
    @given(dag_specs())
    def test_o1_rhs_is_bitwise_identical(self, spec):
        sources, nodes = spec
        diagram = build_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        protect = [
            diagram.sub(node_spec[1]).dport("out") for node_spec in nodes
        ]
        reference = network.plan()
        optimized = network.plan(opt_level=1, protect=protect)
        state = network.initial_state()
        for t in (0.0, 0.5):
            assert np.array_equal(
                reference.rhs(t, state), optimized.rhs(t, state),
            )
        # protected read-outs hold bitwise-equal pad values
        reference.evaluate(0.0, state)
        expected = {
            node_spec[1]:
                diagram.sub(node_spec[1]).dport("out").read_scalar()
            for node_spec in nodes
        }
        optimized.evaluate(0.0, state)
        for name, value in expected.items():
            measured = diagram.sub(name).dport("out").read_scalar()
            assert measured == value or (
                np.isnan(measured) and np.isnan(value)
            ), name

    @settings(max_examples=25, deadline=None)
    @given(dag_specs())
    def test_o2_stays_within_reassociation_tolerance(self, spec):
        sources, nodes = spec
        diagram = build_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        protect = [
            diagram.sub(node_spec[1]).dport("out") for node_spec in nodes
        ]
        reference = network.plan()
        optimized = network.plan(opt_level=2, protect=protect)
        state = network.initial_state()
        reference.evaluate(0.0, state)
        expected = {
            node_spec[1]:
                diagram.sub(node_spec[1]).dport("out").read_scalar()
            for node_spec in nodes
        }
        optimized.evaluate(0.0, state)
        for name, value in expected.items():
            measured = diagram.sub(name).dport("out").read_scalar()
            assert measured == pytest.approx(
                value, rel=1e-9, abs=1e-9,
            ), name

    @settings(max_examples=25, deadline=None)
    @given(dag_specs())
    def test_unprotected_o1_run_matches_through_live_sink(self, spec):
        """With a live sink and no probes the optimizer may rewrite
        aggressively; the surviving dynamics must still match O0."""
        sources, nodes = spec
        diagram = build_sunk_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        reference = network.plan()
        optimized = network.plan(opt_level=1)
        assert len(optimized.nodes) <= len(reference.nodes)
        state = network.initial_state()
        assert np.array_equal(
            reference.rhs(0.0, state), optimized.rhs(0.0, state),
        )

    @settings(max_examples=20, deadline=None)
    @given(dag_specs())
    def test_fingerprints_separate_levels(self, spec):
        sources, nodes = spec
        diagram = build_sunk_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        o0 = network.plan().fingerprint()
        o1 = network.plan(opt_level=1).fingerprint()
        o2 = network.plan(opt_level=2).fingerprint()
        assert o0 != o1 and o1 != o2 and o0 != o2

    @settings(max_examples=20, deadline=None)
    @given(dag_specs())
    def test_report_accounts_for_every_removed_node(self, spec):
        """Conservation: nodes in minus nodes out equals the removals
        the report claims (DCE + interior folds + CSE merges + fused
        members collapsed into their chain nodes)."""
        sources, nodes = spec
        diagram = build_sunk_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        reference = network.plan()
        optimized = network.plan(opt_level=1)
        report = optimized.opt_report
        removed = len(reference.nodes) - len(optimized.nodes)
        claimed = (
            len(report.dce_removed)
            + (len(report.folded) - len(report.constants))
            + len(report.cse_merged)
            + sum(len(chain) - 1 for chain in report.fused_chains)
        )
        assert removed == claimed

    @settings(max_examples=15, deadline=None)
    @given(dag_specs())
    def test_toggled_pipeline_still_bitwise(self, spec):
        """Every single-pass ablation preserves O1 bitwise identity."""
        sources, nodes = spec
        diagram = build_sunk_diagram(sources, nodes)
        network = FlatNetwork([diagram])
        reference = network.plan()
        state = network.initial_state()
        expected = reference.rhs(0.0, state)
        for disabled in ("dce", "fold", "cse", "fuse"):
            config = OptConfig(level=1, **{disabled: False})
            optimized = network.plan(opt_config=config)
            assert np.array_equal(
                expected, optimized.rhs(0.0, state),
            ), f"without {disabled}"
