"""Continuous dynamic blocks: analytic-solution checks in full models."""

import math

import numpy as np
import pytest

from repro.core.model import HybridModel
from repro.dataflow import (
    Constant,
    FirstOrderLag,
    Integrator,
    PID,
    SecondOrderSystem,
    StateSpace,
    Step,
    Sum,
    TransferFunction,
)
from repro.dataflow.block import BlockError
from repro.dataflow.diagram import Diagram


def run_diagram(diagram, probe_path, until=5.0, h=1e-3, sync=0.05):
    diagram.finalise()
    model = HybridModel("t")
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at(probe_path))
    model.run(until=until, sync_interval=sync)
    return model.probe("y")


class TestIntegrator:
    def test_ramp(self):
        d = Diagram("d")
        d.add(Constant("c", 3.0))
        d.add(Integrator("i", y0=1.0))
        d.connect("c.out", "i.in")
        trajectory = run_diagram(d, "i.out", until=2.0)
        assert trajectory.y_final[0] == pytest.approx(7.0, rel=1e-9)

    def test_saturation_limits(self):
        d = Diagram("d")
        d.add(Constant("c", 1.0))
        d.add(Integrator("i", upper=0.5))
        d.connect("c.out", "i.in")
        trajectory = run_diagram(d, "i.out", until=2.0)
        assert trajectory.y_final[0] == pytest.approx(0.5, abs=1e-6)

    def test_limit_validation(self):
        with pytest.raises(BlockError):
            Integrator("i", lower=1.0, upper=0.0)


class TestFirstOrderLag:
    def test_step_response(self):
        d = Diagram("d")
        d.add(Step("s", amplitude=2.0))
        d.add(FirstOrderLag("lag", tau=0.5, k=3.0))
        d.connect("s.out", "lag.in")
        trajectory = run_diagram(d, "lag.out", until=3.0)
        # y(t) = k*A*(1 - exp(-t/tau))
        expected = 6.0 * (1.0 - math.exp(-3.0 / 0.5))
        assert trajectory.y_final[0] == pytest.approx(expected, rel=1e-5)

    def test_validation(self):
        with pytest.raises(BlockError):
            FirstOrderLag("lag", tau=0.0)


class TestSecondOrder:
    def test_dc_gain(self):
        d = Diagram("d")
        d.add(Step("s", amplitude=1.0))
        d.add(SecondOrderSystem("pt2", omega=5.0, zeta=0.8, k=2.0))
        d.connect("s.out", "pt2.in")
        trajectory = run_diagram(d, "pt2.out", until=8.0)
        assert trajectory.y_final[0] == pytest.approx(2.0, rel=1e-4)

    def test_undamped_oscillation(self):
        d = Diagram("d")
        d.add(Constant("c", 0.0))
        d.add(SecondOrderSystem("osc", omega=2.0, zeta=0.0, y0=1.0))
        d.connect("c.out", "osc.in")
        trajectory = run_diagram(d, "osc.out", until=math.pi)
        # y = cos(omega t); at t = pi, cos(2 pi) = 1
        assert trajectory.y_final[0] == pytest.approx(1.0, abs=1e-4)

    def test_validation(self):
        with pytest.raises(BlockError):
            SecondOrderSystem("o", omega=0.0)
        with pytest.raises(BlockError):
            SecondOrderSystem("o", zeta=-0.1)


class TestTransferFunction:
    def test_first_order_matches_lag(self):
        """1/(0.5 s + 1) must equal FirstOrderLag(tau=0.5)."""
        d = Diagram("d")
        d.add(Step("s", amplitude=1.0))
        d.add(TransferFunction("tf", num=[1.0], den=[0.5, 1.0]))
        d.connect("s.out", "tf.in")
        trajectory = run_diagram(d, "tf.out", until=2.0)
        expected = 1.0 - math.exp(-4.0)
        assert trajectory.y_final[0] == pytest.approx(expected, rel=1e-5)

    def test_second_order(self):
        """1/(s^2 + 2s + 1): critically damped, DC gain 1."""
        d = Diagram("d")
        d.add(Step("s", amplitude=1.0))
        d.add(TransferFunction("tf", num=[1.0], den=[1.0, 2.0, 1.0]))
        d.connect("s.out", "tf.in")
        trajectory = run_diagram(d, "tf.out", until=15.0)
        assert trajectory.y_final[0] == pytest.approx(1.0, rel=1e-3)

    def test_feedthrough_detection(self):
        proper = TransferFunction("a", num=[1.0], den=[1.0, 1.0])
        biproper = TransferFunction("b", num=[2.0, 1.0], den=[1.0, 1.0])
        assert not proper.direct_feedthrough
        assert biproper.direct_feedthrough

    def test_improper_rejected(self):
        with pytest.raises(BlockError):
            TransferFunction("tf", num=[1.0, 0.0, 0.0], den=[1.0, 1.0])

    def test_zero_denominator_rejected(self):
        with pytest.raises(BlockError):
            TransferFunction("tf", num=[1.0], den=[0.0])


class TestStateSpace:
    def test_matches_transfer_function(self):
        """ss realisation of 1/(s+1) must match the tf block."""
        d = Diagram("d")
        d.add(Step("s", amplitude=1.0))
        d.add(StateSpace("ss", a=[[-1.0]], b=[1.0], c=[1.0], d=0.0))
        d.connect("s.out", "ss.in")
        trajectory = run_diagram(d, "ss.out", until=2.0)
        assert trajectory.y_final[0] == pytest.approx(
            1.0 - math.exp(-2.0), rel=1e-5
        )

    def test_initial_condition(self):
        block = StateSpace("ss", a=[[-1.0]], b=[1.0], c=[1.0], x0=[5.0])
        assert block.initial_state().tolist() == [5.0]

    def test_dimension_validation(self):
        with pytest.raises(BlockError):
            StateSpace("ss", a=[[1.0, 0.0]], b=[1.0], c=[1.0])
        with pytest.raises(BlockError):
            StateSpace("ss", a=[[-1.0]], b=[1.0, 2.0], c=[1.0])
        with pytest.raises(BlockError):
            StateSpace("ss", a=[[-1.0]], b=[1.0], c=[1.0], x0=[1.0, 2.0])

    def test_feedthrough_flag(self):
        assert StateSpace("ss", a=[[-1.0]], b=[1.0], c=[1.0],
                          d=2.0).direct_feedthrough


class TestPID:
    def closed_loop(self, **pid_kwargs):
        d = Diagram("d")
        d.add(Step("ref", amplitude=1.0))
        d.add(Sum("err", signs="+-"))
        d.add(PID("pid", **pid_kwargs))
        d.add(FirstOrderLag("plant", tau=1.0))
        d.connect("ref.out", "err.in1")
        d.connect("plant.out", "err.in2")
        d.connect("err.out", "pid.in")
        d.connect("pid.out", "plant.in")
        return d

    def test_proportional_steady_state_error(self):
        """P-only control of a lag leaves ss error = 1/(1+kp)."""
        trajectory = run_diagram(
            self.closed_loop(kp=4.0, ki=0.0), "plant.out", until=10.0
        )
        assert trajectory.y_final[0] == pytest.approx(0.8, abs=1e-3)

    def test_integral_removes_error(self):
        trajectory = run_diagram(
            self.closed_loop(kp=2.0, ki=2.0), "plant.out", until=15.0
        )
        assert trajectory.y_final[0] == pytest.approx(1.0, abs=1e-3)

    def test_output_saturation(self):
        d = Diagram("d")
        d.add(Step("ref", amplitude=100.0))
        d.add(PID("pid", kp=10.0, u_max=5.0, u_min=-5.0))
        d.connect("ref.out", "pid.in")
        trajectory = run_diagram(d, "pid.out", until=1.0)
        assert trajectory.y_final[0] == pytest.approx(5.0)

    def test_filter_validation(self):
        with pytest.raises(BlockError):
            PID("p", tf=0.0)
