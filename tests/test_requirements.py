"""Requirements capture and traceability."""

import pytest

from tests.conftest import ConstLeaf, IntegratorLeaf

from repro.core.model import HybridModel
from repro.requirements import (
    Requirement,
    RequirementError,
    RequirementSet,
    trace_report,
)
from repro.requirements.core import Kind, render_trace


def build_model():
    model = HybridModel("plant")
    const = model.add_streamer(ConstLeaf("drive", 2.0))
    integ = model.add_streamer(IntegratorLeaf("position"))
    model.add_flow(const.dport("y"), integ.dport("u"))
    model.add_probe("x", integ.dport("y"))
    return model


class TestRequirementSet:
    def test_add_and_get(self):
        reqs = RequirementSet()
        reqs.add("R1", "The position shall increase monotonically.")
        assert reqs.get("R1").text.startswith("The position")
        assert len(reqs) == 1

    def test_duplicate_id_rejected(self):
        reqs = RequirementSet()
        reqs.add("R1", "x")
        with pytest.raises(RequirementError):
            reqs.add("R1", "y")

    def test_empty_id_rejected(self):
        with pytest.raises(RequirementError):
            Requirement("", "text")

    def test_unknown_requirement(self):
        with pytest.raises(RequirementError):
            RequirementSet().get("ghost")

    def test_by_kind(self):
        reqs = RequirementSet()
        reqs.add("F1", "functional", kind=Kind.FUNCTIONAL)
        reqs.add("T1", "timing", kind=Kind.TIMING)
        reqs.add("S1", "safety", kind=Kind.SAFETY)
        assert [r.rid for r in reqs.by_kind(Kind.TIMING)] == ["T1"]


class TestTraceability:
    def test_linked_elements_resolved(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R1", "position tracked")
        reqs.link("R1", "position")   # streamer path
        reqs.link("R1", "x")          # probe name
        entries = trace_report(reqs, model)
        assert entries[0].linked
        assert entries[0].missing_elements == []
        assert entries[0].satisfied

    def test_missing_element_detected(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R1", "refers to a ghost")
        reqs.link("R1", "no_such_element")
        entries = trace_report(reqs, model)
        assert entries[0].missing_elements == ["no_such_element"]
        assert not entries[0].satisfied

    def test_unlinked_requirement_flagged(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R1", "floating requirement")
        entries = trace_report(reqs, model)
        assert not entries[0].linked
        assert not entries[0].satisfied

    def test_acceptance_check_runs_after_simulation(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add(
            "R2", "position reaches 2.0 within 1 s (drive = 2 units/s)",
            kind=Kind.TIMING,
            check=lambda m: abs(m.probe("x").y_final[0] - 2.0) < 1e-6,
        )
        reqs.link("R2", "x")
        model.run(until=1.0, sync_interval=0.1)
        entries = trace_report(reqs, model)
        assert entries[0].check_result is True
        assert entries[0].satisfied

    def test_failing_check_reported(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R3", "impossible bound",
                 check=lambda m: m.probe("x").y_final[0] > 1e9)
        reqs.link("R3", "x")
        model.run(until=1.0, sync_interval=0.1)
        entries = trace_report(reqs, model)
        assert entries[0].check_result is False
        assert not entries[0].satisfied

    def test_checks_can_be_skipped(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R4", "check skipped", check=lambda m: False)
        reqs.link("R4", "x")
        entries = trace_report(reqs, model, run_checks=False)
        assert entries[0].check_result is None
        assert entries[0].satisfied  # None check does not fail tracing

    def test_render_trace(self):
        model = build_model()
        reqs = RequirementSet()
        reqs.add("R1", "a")
        reqs.link("R1", "x")
        reqs.add("R2", "b")
        text = render_trace(trace_report(reqs, model))
        assert "R1" in text and "R2" in text
        assert "NO" in text  # R2 unlinked

    def test_capsule_and_thread_names_resolvable(self):
        from tests.conftest import Echo

        model = build_model()
        model.add_capsule(Echo("echo"))
        reqs = RequirementSet()
        reqs.add("R5", "echo exists")
        reqs.link("R5", "echo")
        reqs.link("R5", "streamers")  # default thread name
        reqs.link("R5", "main")       # default controller name
        entries = trace_report(reqs, model)
        assert entries[0].missing_elements == []
