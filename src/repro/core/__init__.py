"""The paper's contribution: UML-RT extended with time-continuous streamers.

This package implements the eight new stereotypes of Table 1 on top of the
:mod:`repro.umlrt` substrate:

========================  =====================================================
Stereotype                Implementation
========================  =====================================================
``streamer``              :class:`repro.core.streamer.Streamer`
``DPort``                 :class:`repro.core.dport.DPort`
``SPort``                 :class:`repro.core.sport.SPort`
``flow``                  :class:`repro.core.flow.Flow`
``relay``                 :class:`repro.core.flow.Relay`
``flow type``             :class:`repro.core.flowtype.FlowType`
``solver`` / ``strategy`` :class:`repro.core.solverbinding.SolverBinding`
``Time``                  :class:`repro.core.timeservice.ContinuousTime`
========================  =====================================================

Architecture (paper §2): event-driven capsules and continuous streamers run
on *different threads*; capsules keep hierarchical state machines under RTC
semantics, streamers compute differential equations through a pluggable
solver; the two worlds exchange signal messages over bounded channels
(:mod:`repro.core.channel`) through SPorts.  The hybrid scheduler
(:mod:`repro.core.hybrid`) interleaves the two worlds deterministically.

Public entry point: :class:`repro.core.model.HybridModel` (or the fluent
:class:`repro.core.builder.ModelBuilder`).
"""

from repro.core.flowtype import DataKind, FlowType, FlowTypeError
from repro.core.dport import Direction, DPort, DPortError
from repro.core.sport import SPort, SPortError
from repro.core.flow import Flow, FlowError, Relay
from repro.core.channel import Channel, ChannelError, ChannelPolicy
from repro.core.timeservice import ContinuousTime, TimeError
from repro.core.streamer import Streamer, StreamerError
from repro.core.solverbinding import SolverBinding
from repro.core.plan import (
    ExecutionPlan, PlanCounters, PlanEdge, PlanGuard, PlanNode,
)
from repro.core.batch import (
    BatchChunk, BatchError, BatchProgram, BatchResult, BatchSimulator,
    SweepVar, compile_batch_program, merge_chunks, simulate_sequential,
)
from repro.core.opt import OptConfig, OptReport, PlanOptimizer
from repro.core.backend import (
    BackendError, BackendProgram, BackendUnavailable, CompileRequest,
    ExecutionBackend, ProgramResult, available_backends, compile_program,
    fallback_chain, get_backend, register_backend,
)
from repro.core.thread import StreamerThread
from repro.core.hybrid import HybridScheduler
from repro.core.model import HybridModel
from repro.core.builder import ModelBuilder
from repro.core.validation import ValidationError, Violation, validate_model

__all__ = [
    "BackendError",
    "BackendProgram",
    "BackendUnavailable",
    "BatchChunk",
    "BatchError",
    "BatchProgram",
    "BatchResult",
    "BatchSimulator",
    "Channel",
    "ChannelError",
    "ChannelPolicy",
    "CompileRequest",
    "ContinuousTime",
    "DPort",
    "DPortError",
    "DataKind",
    "Direction",
    "ExecutionBackend",
    "ExecutionPlan",
    "Flow",
    "FlowError",
    "FlowType",
    "FlowTypeError",
    "HybridModel",
    "HybridScheduler",
    "ModelBuilder",
    "OptConfig",
    "OptReport",
    "PlanCounters",
    "PlanEdge",
    "PlanGuard",
    "PlanNode",
    "PlanOptimizer",
    "ProgramResult",
    "Relay",
    "SPort",
    "SPortError",
    "SolverBinding",
    "Streamer",
    "StreamerError",
    "StreamerThread",
    "SweepVar",
    "TimeError",
    "ValidationError",
    "Violation",
    "available_backends",
    "compile_batch_program",
    "compile_program",
    "fallback_chain",
    "get_backend",
    "merge_chunks",
    "register_backend",
    "simulate_sequential",
    "validate_model",
]
