"""Streamer threads.

"In the model, we can use any number of streamers, which are assigned to
one or several threads during implementation" (paper §2).  A
:class:`StreamerThread` is such an implementation thread: it owns a set of
top-level streamers, a solver binding (the Figure-1 strategy slot) and a
minor step size.  The hybrid scheduler asks each thread to integrate its
partition of the flat network between synchronisation points.

Two backends exist:

* the default **cooperative** backend integrates inline when the scheduler
  asks — deterministic, reproducible, and what all tests use;
* the **real-thread** backend (:class:`RealThreadPool`) runs each thread's
  integration slice on an actual OS thread, demonstrating claim C3 on real
  primitives.  Determinism is preserved because threads only read/write
  their own partition and cross-thread pads are frozen during a slice.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, List, Optional, Sequence

import numpy as np

from repro.core.solverbinding import SolverBinding
from repro.core.streamer import Streamer, StreamerError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import ExecutionPlan


class StreamerThread:
    """A logical thread executing streamers via a solver strategy.

    Parameters
    ----------
    name:
        Thread name (unique within a model).
    solver:
        Solver name or instance for the :class:`SolverBinding`.
    h:
        Minor (integration) step size used between sync points.
    """

    def __init__(
        self,
        name: str,
        solver: Any = "rk4",
        h: float = 1e-3,
        **solver_kwargs: Any,
    ) -> None:
        if h <= 0:
            raise StreamerError(f"thread {name!r}: non-positive step {h}")
        self.name = name
        self.binding = SolverBinding(solver, **solver_kwargs)
        self.h = h
        self.streamers: List[Streamer] = []
        #: filled by the hybrid scheduler at build time
        self.leaves: List[Streamer] = []
        #: this thread's :class:`~repro.core.plan.ExecutionPlan` view
        #: (own nodes, in-thread edges only) — set by the scheduler
        self.plan: Optional["ExecutionPlan"] = None
        #: optional replacement for ``plan.rhs`` inside
        #: :meth:`integrate_slice` — the hybrid scheduler installs a
        #: compiled-kernel derivative here when an execution backend is
        #: bound.  Must be bitwise-equivalent to ``plan.rhs``.
        self.rhs_override: Optional[Any] = None
        self.minor_steps = 0

    def assign(self, streamer: Streamer) -> Streamer:
        """Assign a top-level streamer (and hence all its leaves) here."""
        if streamer.thread is not None and streamer.thread is not self:
            raise StreamerError(
                f"streamer {streamer.path()} already assigned to thread "
                f"{streamer.thread.name!r}"
            )
        if streamer.parent is not None:
            raise StreamerError(
                "only top-level streamers are assigned to threads; "
                f"{streamer.path()} is nested"
            )
        streamer.thread = self
        if streamer not in self.streamers:
            self.streamers.append(streamer)
        return streamer

    # ------------------------------------------------------------------
    # integration slice (called by the hybrid scheduler)
    # ------------------------------------------------------------------
    def integrate_slice(
        self,
        state: np.ndarray,
        t0: float,
        t1: float,
    ) -> np.ndarray:
        """Advance this thread's leaves from ``t0`` to ``t1`` in-place.

        ``self.plan`` is this thread's view of the shared
        :class:`~repro.core.plan.ExecutionPlan` (own nodes, in-thread
        edges only — cross-thread pads stay frozen during the slice).
        The global ``state`` vector is shared, but this thread only
        writes its own nodes' slices, so slices may run on real threads
        safely.
        """
        plan = self.plan
        if plan is None or not plan.nodes:
            return state

        rhs = self.rhs_override if self.rhs_override is not None \
            else plan.rhs

        # Work on a private copy: the RHS only reads this thread's slices
        # (other nodes are filtered out and cross-thread pads are frozen),
        # so concurrent threads never observe each other's intermediates.
        y = state.copy()
        t = t0
        while t < t1 - 1e-14 * max(1.0, abs(t1)):
            step_h = min(self.h, t1 - t)
            result = self.binding.step(rhs, t, y, step_h)
            self.minor_steps += 1
            y = result.y
            t = result.t
            if self.binding.solver.adaptive:
                self.h = min(result.h_next, self.h * 5.0)
        # publish only this thread's slices back into the shared vector
        for node in plan.nodes:
            if node.hi > node.lo:
                state[node.lo:node.hi] = y[node.lo:node.hi]
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamerThread({self.name!r}, solver="
            f"{self.binding.strategy_name}, h={self.h}, "
            f"streamers={len(self.streamers)})"
        )


class RealThreadPool:
    """Run each thread's integration slice on an actual OS thread.

    Used by bench C3 to show the architecture maps directly onto OS
    threads ("easy to realize on existing UML-RT platforms"): slices are
    data-disjoint, so the pool simply launches one ``threading.Thread``
    per streamer thread and joins them at the sync point barrier.
    """

    def __init__(self, threads: Sequence[StreamerThread]) -> None:
        self.threads = list(threads)
        self.slices_run = 0

    def run_slices(
        self,
        state: np.ndarray,
        t0: float,
        t1: float,
    ) -> None:
        """Integrate every thread's plan view over ``[t0, t1]``."""
        errors: List[BaseException] = []

        def work(thread: StreamerThread) -> None:
            try:
                thread.integrate_slice(state, t0, t1)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        workers = [
            threading.Thread(target=work, args=(thread,), daemon=True)
            for thread in self.threads
            if thread.leaves
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        self.slices_run += 1
        if errors:
            raise errors[0]
