"""Simulation jobs through the service facade.

The service must be a *transparent* wrapper: every result that comes
back through a :class:`~repro.service.SimulationService` — single hybrid
runs, vectorised batch sweeps, generated source — must be bitwise
identical to calling the underlying backend directly, whether jobs run
one at a time or sixteen at once, cold or through the warm plan cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import generate_python
from repro.core.batch import BatchSimulator
from repro.core.model import HybridModel
from repro.dataflow.diagram import Diagram
from repro.dataflow.dynamics import PID, FirstOrderLag
from repro.dataflow.math_blocks import Sum
from repro.dataflow.sources import Step
from repro.service import (
    BatchJob,
    CodegenJob,
    SimulationService,
    SingleRunJob,
)
from repro.service.telemetry import CHUNK, PROGRESS

N = 8
T_END = 0.1
H = 1e-3
RECORDS = ["plant.out"]


def loop_diagram() -> Diagram:
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", "+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def kp_sweep(lo: float = 0.5, hi: float = 6.0):
    return {"pid.kp": np.linspace(lo, hi, N)}


def batch_job(lo: float = 0.5, hi: float = 6.0) -> BatchJob:
    return BatchJob(
        diagram_factory=loop_diagram, n=N, t_end=T_END, solver="rk4",
        h=H, records=RECORDS, sweeps=kp_sweep(lo, hi),
    )


def direct_batch(lo: float = 0.5, hi: float = 6.0):
    sim = BatchSimulator(
        loop_diagram(), N, solver="rk4", h=H, records=RECORDS,
        sweeps=kp_sweep(lo, hi),
    )
    return sim.run(T_END)


def loop_model() -> HybridModel:
    diagram = loop_diagram()
    diagram.finalise()
    model = HybridModel("loop")
    model.default_thread.h = H
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at("plant.out"))
    return model


def single_run_job(**overrides) -> SingleRunJob:
    options = dict(
        model_factory=loop_model, t_end=T_END, sync_interval=0.01,
        stream_slices=4,
    )
    options.update(overrides)
    return SingleRunJob(**options)


def direct_single_run():
    model = loop_model()
    model.scheduler(sync_interval=0.01).run(T_END)
    return model.probes["y"].trajectory


class TestTransparency:
    def test_batch_job_identical_to_direct_simulator(self):
        direct = direct_batch()
        with SimulationService(workers=1) as svc:
            served = svc.submit(batch_job()).result(timeout=60.0)
        assert np.array_equal(served.t, direct.t)
        assert np.array_equal(
            served.series["plant.out"], direct.series["plant.out"]
        )

    def test_single_run_job_identical_to_direct_model(self):
        direct = direct_single_run()
        with SimulationService(workers=1) as svc:
            served = svc.submit(single_run_job()).result(timeout=60.0)
        trajectory = served.probes["y"]
        assert np.array_equal(trajectory.times, direct.times)
        assert np.array_equal(trajectory.states, direct.states)
        assert served.stats["major_steps"] > 0

    def test_sixteen_concurrent_jobs_identical_to_direct(self):
        """The acceptance check: 16 jobs at once, every result bitwise
        equal to its direct-backend counterpart."""
        spans = [(0.5 + i * 0.1, 6.0 + i * 0.1) for i in range(12)]
        with SimulationService(workers=4) as svc:
            batch_handles = [
                svc.submit(batch_job(lo, hi)) for lo, hi in spans
            ]
            single_handles = [
                svc.submit(single_run_job()) for __ in range(4)
            ]
            for (lo, hi), handle in zip(spans, batch_handles):
                served = handle.result(timeout=120.0)
                direct = direct_batch(lo, hi)
                assert np.array_equal(
                    served.series["plant.out"],
                    direct.series["plant.out"],
                )
            direct_trajectory = direct_single_run()
            for handle in single_handles:
                served = handle.result(timeout=120.0)
                assert np.array_equal(
                    served.probes["y"].states, direct_trajectory.states
                )

    def test_codegen_job_identical_to_direct_generation(self):
        diagram = loop_diagram()
        diagram.finalise()
        direct = generate_python(diagram, records=RECORDS, default_h=H)
        with SimulationService(workers=1) as svc:
            served = svc.submit(CodegenJob(
                diagram_factory=loop_diagram, lang="python",
                records=RECORDS, h=H,
            )).result(timeout=60.0)
        assert served == direct


class TestWarmCache:
    def test_resubmission_skips_compilation(self):
        """The acceptance check: warm-cache resubmission must not
        recompile, verified through the cache counters."""
        spec = batch_job()
        with SimulationService(workers=1) as svc:
            first = svc.submit(spec).result(timeout=60.0)
            before = svc.cache.stats()
            again = svc.submit(spec).result(timeout=60.0)
            after = svc.cache.stats()
        assert after["compiles"] == before["compiles"]
        assert after["hits"] == before["hits"] + 1
        assert np.array_equal(
            again.series["plant.out"], first.series["plant.out"]
        )

    def test_distinct_specs_share_artefact_by_content(self):
        """Two separately built but structurally identical specs land on
        the same fingerprint: one compile, one hit."""
        with SimulationService(workers=1) as svc:
            svc.submit(batch_job()).result(timeout=60.0)
            svc.submit(batch_job()).result(timeout=60.0)
            stats = svc.cache.stats()
        assert stats["compiles"] == 1
        assert stats["hits"] == 1

    def test_memoised_key_survives_cache_eviction(self):
        """A spec whose artefact was evicted recompiles from a fresh
        diagram (the memoised key alone is not enough) and still
        produces an identical result."""
        spec = batch_job()
        with SimulationService(workers=1) as svc:
            first = svc.submit(spec).result(timeout=60.0)
            svc.cache.clear()
            again = svc.submit(spec).result(timeout=60.0)
            stats = svc.cache.stats()
        assert stats["compiles"] == 2
        assert np.array_equal(
            again.series["plant.out"], first.series["plant.out"]
        )

    def test_different_sweep_paths_do_not_share(self):
        """The sweep *paths* are part of the cache key (the program is
        specialised on them), so sweeping a different parameter must
        compile its own artefact."""
        tau_job = BatchJob(
            diagram_factory=loop_diagram, n=N, t_end=T_END, solver="rk4",
            h=H, records=RECORDS,
            sweeps={"plant.tau": np.linspace(0.2, 0.8, N)},
        )
        with SimulationService(workers=1) as svc:
            svc.submit(batch_job()).result(timeout=60.0)
            svc.submit(tau_job).result(timeout=60.0)
            stats = svc.cache.stats()
        assert stats["compiles"] == 2
        assert stats["hits"] == 0


class TestStreaming:
    def test_batch_chunks_reassemble_to_full_result(self):
        with SimulationService(workers=1) as svc:
            handle = svc.submit(batch_job())
            chunks = [e for e in handle.stream() if e.kind == CHUNK]
            result = handle.result(timeout=60.0)
        assert len(chunks) > 1
        assert chunks[-1].payload["final"] is True
        assert all(not c.payload["final"] for c in chunks[:-1])
        t_values = np.concatenate(
            [c.payload["t_values"] for c in chunks]
        )
        series = np.vstack(
            [c.payload["series"]["plant.out"] for c in chunks]
        )
        assert np.array_equal(t_values, result.t)
        assert np.array_equal(series, result.series["plant.out"])

    def test_single_run_progress_events(self):
        # stream_slices == t_end / sync_interval: every major step emits,
        # including the final one (fraction 1.0)
        with SimulationService(workers=1) as svc:
            handle = svc.submit(single_run_job(stream_slices=10))
            events = [e for e in handle.stream() if e.kind == PROGRESS]
            handle.result(timeout=60.0)
        assert len(events) >= 4
        fractions = [e.payload["fraction"] for e in events]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        assert all("y" in e.payload["probes"] for e in events)


class TestValidation:
    def test_missing_factory_fails_job(self):
        from repro.service.jobs import JobError

        with SimulationService(workers=1) as svc:
            handle = svc.submit(BatchJob(diagram_factory=None))
            with pytest.raises(JobError):
                handle.result(timeout=60.0)

    def test_unknown_codegen_target_fails_job(self):
        from repro.service.jobs import JobError

        with SimulationService(workers=1) as svc:
            handle = svc.submit(CodegenJob(
                diagram_factory=loop_diagram, lang="fortran",
            ))
            with pytest.raises(JobError):
                handle.result(timeout=60.0)


class TestProcessExecutor:
    def test_batch_job_in_process_pool_identical(self):
        """Hard isolation: the spec ships to a worker process (no shared
        cache, no streaming) and the result comes back identical."""
        direct = direct_batch()
        with SimulationService(workers=1, executor="process") as svc:
            served = svc.submit(BatchJob(
                diagram_factory=loop_diagram, n=N, t_end=T_END,
                solver="rk4", h=H, records=RECORDS, sweeps=kp_sweep(),
                deadline=60.0,
            )).result(timeout=60.0)
        assert np.array_equal(
            served.series["plant.out"], direct.series["plant.out"]
        )
