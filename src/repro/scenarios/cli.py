"""The ``python -m repro.scenarios`` command line.

Three subcommands:

``run``
    Execute a campaign: ``--count`` scenarios off the ``--seed`` master
    stream, steered unless ``--no-steer``, JSON report via
    ``--json-output``.  Exit 1 when any scenario diverged.
``replay``
    Re-execute exactly one scenario by its *scenario* seed (the seeds a
    failing campaign prints), with full detail on stdout.
``report``
    Re-render a saved JSON campaign report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description=(
            "scenario synthesis + coverage-guided differential campaigns"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run a campaign")
    run.add_argument("--count", type=int, default=200,
                     help="scenarios to execute (default 200)")
    run.add_argument("--seed", type=int, default=0,
                     help="master seed of the scenario stream")
    run.add_argument("--workers", type=int, default=4,
                     help="JobEngine worker threads")
    run.add_argument("--round-size", type=int, default=32,
                     help="scenarios per steering round")
    run.add_argument("--t-end", type=float, default=0.25,
                     help="simulated seconds per differential run")
    run.add_argument("--no-steer", action="store_true",
                     help="disable coverage steering (pure stream order)")
    run.add_argument("--backend", action="append", dest="backends",
                     metavar="NAME",
                     help="compiled backend to compare (repeatable; "
                          "default: auto-detect)")
    run.add_argument("--mutate-seed", action="append", type=int,
                     dest="mutate_seeds", metavar="SEED", default=[],
                     help="corrupt this scenario seed's comparison "
                          "(self-test: the campaign must catch it)")
    run.add_argument("--json-output", metavar="PATH",
                     help="write the JSON campaign report here")
    run.add_argument("--work-dir", metavar="DIR",
                     help="spool directory for fault-family checkpoints")
    run.add_argument("--cluster", metavar="URL",
                     help="execute scenarios on a running repro.cluster "
                          "HTTP endpoint instead of in-process workers")

    rep = sub.add_parser("replay", help="re-execute one scenario seed")
    rep.add_argument("--seed", type=int, required=True,
                     help="the scenario seed to replay")
    rep.add_argument("--t-end", type=float, default=0.25)
    rep.add_argument("--mutate", action="store_true",
                     help="corrupt the comparison (must then diverge)")
    rep.add_argument("--json", action="store_true", dest="as_json",
                     help="print the outcome as JSON")

    show = sub.add_parser("report", help="render a saved JSON report")
    show.add_argument("path", help="a --json-output file from `run`")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.scenarios.campaign import CampaignConfig, CampaignRunner

    config = CampaignConfig(
        count=args.count,
        seed=args.seed,
        workers=args.workers,
        round_size=args.round_size,
        t_end=args.t_end,
        steer=not args.no_steer,
        backends=args.backends,
        work_dir=args.work_dir,
        mutate_seeds=frozenset(args.mutate_seeds),
    )
    runner = CampaignRunner(config)
    if args.cluster:
        report = runner.run_over_cluster(args.cluster)
    else:
        report = runner.run()
    if args.json_output:
        report.save(args.json_output)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.scenarios.campaign import CampaignConfig, replay
    from repro.scenarios.spec import ScenarioSpec

    spec = ScenarioSpec.from_seed(args.seed)
    config = CampaignConfig(
        t_end=args.t_end,
        mutate_seeds=frozenset([args.seed]) if args.mutate
        else frozenset(),
    )
    outcome = replay(args.seed, config)
    if args.as_json:
        print(json.dumps(
            {"spec": json.loads(spec.to_json()),
             "outcome": outcome.to_dict()},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"scenario seed {spec.seed}: family {spec.family}, "
              f"params {dict(spec.params)}")
        if outcome.ok:
            print("outcome: OK (no divergence)")
        else:
            print(f"outcome: DIVERGED — {outcome.detail}")
    return 0 if outcome.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.scenarios.campaign import CampaignReport

    try:
        report = CampaignReport.load(args.path)
    except OSError as exc:
        print(f"cannot read report {args.path!r}: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        print(
            f"not a campaign report: {args.path!r} ({exc})",
            file=sys.stderr,
        )
        return 2
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.print_help(sys.stderr)
    return 2
