"""State-machine code generation."""

import pytest

from repro.codegen import (
    SMGenError,
    flatten_machine,
    generate_statemachine_c,
    generate_statemachine_python,
)
from repro.umlrt.statemachine import StateMachine


def toggle_machine():
    sm = StateMachine("toggle")
    sm.add_state("off")
    sm.add_state("on")
    sm.initial("off")
    sm.add_transition("off", "on", trigger=("ctrl", "enable"))
    sm.add_transition("on", "off", trigger=("ctrl", "disable"))
    sm.add_transition("on", trigger="tick", internal=True)
    return sm


def hierarchical_machine():
    sm = StateMachine("hier")
    sm.add_state("idle")
    sm.add_state("run")
    sm.add_state("run.slow")
    sm.add_state("run.fast")
    sm.initial("idle")
    sm.initial("run.slow", composite="run")
    sm.add_transition("idle", "run", trigger="start")
    sm.add_transition("run.slow", "run.fast", trigger="faster")
    sm.add_transition("run", "idle", trigger="stop")  # group transition
    return sm


def execute(source):
    namespace = {}
    exec(compile(source, "<smgen>", "exec"), namespace)
    classes = [v for k, v in namespace.items()
               if isinstance(v, type) and k.endswith("StateMachine")]
    return classes[0]


class TestFlattening:
    def test_flat_machine_rows(self):
        rows = flatten_machine(toggle_machine())
        keys = {(r.source, r.port, r.signal) for r in rows}
        assert ("off", "ctrl", "enable") in keys
        assert ("on", "ctrl", "disable") in keys
        assert ("on", None, "tick") in keys

    def test_group_transition_flattened_per_leaf(self):
        rows = flatten_machine(hierarchical_machine())
        stops = [r for r in rows if r.signal == "stop"]
        assert {r.source for r in stops} == {"run.slow", "run.fast"}
        for row in stops:
            assert "run" in row.exits  # composite exit included
            assert row.target == "idle"

    def test_initial_drilling(self):
        rows = flatten_machine(hierarchical_machine())
        start = [r for r in rows if r.signal == "start"][0]
        assert start.target == "run.slow"
        assert start.entries == ("run", "run.slow")

    def test_inner_shadows_outer(self):
        sm = hierarchical_machine()
        sm.add_transition("run.slow", "run.fast", trigger="stop")
        rows = flatten_machine(sm)
        slow_stop = [r for r in rows
                     if r.source == "run.slow" and r.signal == "stop"]
        assert len(slow_stop) == 1
        assert slow_stop[0].target == "run.fast"  # inner wins

    def test_guard_rejected(self):
        sm = toggle_machine()
        sm.add_transition("off", "on", trigger="guarded",
                          guard=lambda c, m: True)
        with pytest.raises(SMGenError, match="guard"):
            flatten_machine(sm)

    def test_choice_rejected(self):
        sm = toggle_machine()
        sm.add_choice("decide")
        with pytest.raises(SMGenError, match="choice"):
            flatten_machine(sm)

    def test_history_rejected(self):
        sm = StateMachine("h")
        sm.add_state("a", history="shallow")
        sm.add_state("a.x")
        sm.initial("a")
        sm.initial("a.x", composite="a")
        with pytest.raises(SMGenError, match="history"):
            flatten_machine(sm)


class TestPythonBackend:
    def test_generated_machine_runs(self):
        cls = execute(generate_statemachine_python(toggle_machine()))
        machine = cls()
        machine.start()
        assert machine.state == "off"
        assert machine.dispatch("ctrl", "enable")
        assert machine.state == "on"
        assert machine.dispatch("anyport", "tick")  # any-port trigger
        assert machine.state == "on"
        assert machine.dispatch("ctrl", "disable")
        assert machine.state == "off"

    def test_unknown_signal_dropped(self):
        cls = execute(generate_statemachine_python(toggle_machine()))
        machine = cls()
        machine.start()
        assert not machine.dispatch("ctrl", "bogus")
        assert machine.dropped == 1

    def test_hooks_invoked(self):
        source = generate_statemachine_python(hierarchical_machine())
        cls = execute(source)

        calls = []

        class Traced(cls):
            def on_enter_run(self, data=None):
                calls.append("enter_run")

            def on_exit_run(self, data=None):
                calls.append("exit_run")

        machine = Traced()
        machine.start()
        machine.dispatch(None, "start")
        machine.dispatch(None, "stop")
        assert calls == ["enter_run", "exit_run"]

    def test_generated_matches_live_machine(self):
        """Generated table-driven machine agrees with the interpreter."""
        from repro.umlrt.signal import Message

        class FakePort:
            def __init__(self, name):
                self.name = name

        live = hierarchical_machine()
        live.start(object())
        cls = execute(generate_statemachine_python(hierarchical_machine()))
        generated = cls()
        generated.start()

        script = [("p", "start"), ("p", "faster"), ("p", "stop"),
                  ("p", "start"), ("p", "stop")]
        for port, signal in script:
            live.dispatch(object(), Message(signal, port=FakePort(port)))
            generated.dispatch(port, signal)
            assert generated.state == live.active_path


class TestCBackend:
    def test_structure(self):
        source = generate_statemachine_c(hierarchical_machine())
        assert "typedef enum" in source
        assert "STATE_RUN_SLOW" in source
        assert "SIG_START" in source
        assert "int sm_dispatch(sm_signal_t sig, void *ctx)" in source
        assert source.count("{") == source.count("}")

    def test_extern_hooks_declared(self):
        source = generate_statemachine_c(toggle_machine())
        assert "extern void action_off__on(void *ctx);" in source

    def test_all_states_reachable_in_switch(self):
        source = generate_statemachine_c(hierarchical_machine())
        for state in ("STATE_IDLE", "STATE_RUN_SLOW", "STATE_RUN_FAST"):
            assert f"case {state}:" in source or \
                f"sm_state = {state};" in source
