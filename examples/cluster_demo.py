"""The cluster: sharded workers, live migration, HTTP front-end.

This demo stands up the whole distributed story in one process tree:

* a 3-worker :class:`repro.cluster.WorkerPool` over a shared
  content-addressed artifact/checkpoint store;
* the asyncio HTTP front-end and its client — every job below travels
  as JSON over a real socket;
* a mixed workload: a fan of cruise-control runs (one streamed live as
  NDJSON telemetry) plus a pendulum batch sweep;
* a mid-run **SIGKILL** of a busy worker: the victim's job migrates to
  a survivor, resumes from the shared spool's newest checkpoint, and
  its CRC-32 probe digests are compared against an uninterrupted rerun
  of the same request — bitwise-identical is the contract;
* the closing pool status: steals, migrations, worker deaths, and the
  merged cross-process metrics.

Run:  python examples/cluster_demo.py
"""

import json
import tempfile
import time

from repro.cluster import (
    ClusterClient,
    ClusterConfig,
    ClusterHTTPServer,
    ClusterJobRequest,
    WorkerPool,
)


def build_cruise_model():
    """The demo's workhorse, from the cluster's model catalogue —
    also what ``python -m repro.check`` lints in this file."""
    from repro.cluster.models import cruise

    return cruise(setpoint=28.0)


def cruise_request(index: int) -> ClusterJobRequest:
    return ClusterJobRequest(
        kind="single_run", model="cruise",
        params={
            "t_end": 2.0, "sync_interval": 0.01,
            "checkpoint_every_steps": 40,
        },
        model_args={"setpoint": 20.0 + 2.0 * index},
        client=f"demo-{index % 2}", name=f"cruise-{index}",
    )


def digests(summary: dict) -> dict:
    return {
        name: (probe["times_crc32"], probe["states_crc32"])
        for name, probe in summary["probes"].items()
    }


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-demo-") as root:
        with WorkerPool(root, ClusterConfig(workers=3)) as pool:
            with ClusterHTTPServer(pool) as server:
                client = ClusterClient(server.url)
                client.wait_ready()
                print(f"cluster up: 3 workers behind {server.url}")
                print(f"models: {', '.join(client.models())}\n")

                # -- a fan of runs + one live NDJSON stream ------------
                jobs = [client.submit(cruise_request(i)) for i in range(6)]
                print(f"submitted {len(jobs)} cruise runs over HTTP")
                streamed = 0
                for event in client.stream(jobs[0]):
                    streamed += 1
                    if event["kind"] == "progress":
                        payload = event["payload"]
                        print(
                            f"  [{jobs[0]}] t={event['t']:5.2f}  "
                            f"v={payload['probes'].get('v', 0.0):6.2f}"
                        )
                print(f"  …{streamed} NDJSON events streamed\n")

                # -- SIGKILL a busy worker: live migration -------------
                victim_job = client.submit(cruise_request(6))
                while True:
                    status = client.job(victim_job)
                    if status["worker"] is not None and \
                            pool.store.checkpoints(victim_job):
                        break
                    time.sleep(0.01)
                victim = status["worker"]
                print(f"SIGKILL worker {victim} (running {victim_job})")
                pool.kill_worker(victim)
                migrated = client.result(victim_job, timeout=120)
                print(
                    f"  job finished anyway: state={migrated['state']} "
                    f"worker={migrated['worker']} "
                    f"attempts={migrated['attempts']} "
                    f"migrations={migrated['migrations']}"
                )

                # the migration contract: bitwise vs an uninterrupted run
                rerun_id = client.submit(cruise_request(6))
                rerun = client.result(rerun_id, timeout=120)
                same = digests(migrated["result"]) == digests(rerun["result"])
                print(f"  CRC-32 probe digests vs uninterrupted rerun: "
                      f"{'identical' if same else 'MISMATCH'}\n")

                # -- a batch sweep rides the same wire -----------------
                sweep_id = client.submit(ClusterJobRequest(
                    kind="batch", model="pendulum",
                    params={
                        "n": 48, "t_end": 0.5, "h": 1e-3,
                        # one gain per instance: 48-point kp sweep
                        "sweeps": {"pid.kp": [
                            20.0 + 30.0 * i / 47.0 for i in range(48)
                        ]},
                    },
                    checkpoint=False, name="kp-sweep",
                ))
                sweep = client.result(sweep_id, timeout=120)["result"]
                print(f"batch sweep: n={sweep['n']}, "
                      f"{sweep['rows']} recorded rows\n")

                for handle_id in jobs:
                    client.result(handle_id, timeout=120)

                snapshot = client.status()
                print("pool status:")
                print(json.dumps({
                    "jobs": snapshot["jobs"],
                    "steals": snapshot["steals"],
                    "migrations": snapshot["migrations"],
                    "worker_deaths": sum(
                        w["deaths"] for w in snapshot["workers"]
                    ),
                }, indent=2, sort_keys=True))
                counters = pool.metrics.snapshot()["counters"]
                print(f"\nmerged worker metrics: "
                      f"{counters.get('cluster.submitted', 0)} submitted, "
                      f"{counters.get('jobs.resumed', 0)} resumed, "
                      f"{counters.get('cluster.steals', 0)} stolen")
                print("OK" if same else "FAILED: probe digest mismatch")
                return 0 if same else 1


if __name__ == "__main__":
    raise SystemExit(main())
