"""Streamers: capsule-like actors with continuous behaviour (Table 1, Fig 2).

A streamer "has some same characteristics as capsules": it has ports
(DPorts and SPorts), and it can contain any number of sub-streamers.  It is
distinguished from a capsule by its behaviour, "implemented by a solver
through computing equations" — there is no state machine.

Two kinds of streamers exist:

* **Leaf (behavioural) streamers** override the numeric hooks below; they
  hold continuous state and equations.
* **Composite streamers** contain sub-streamers, relays and internal flows
  and expose *boundary* DPorts (relay-only pads, like UML-RT relay ports).

Rule W6 is enforced structurally: the API offers no way to put a capsule
inside a streamer, and validation double-checks by type.

Numeric hooks of a leaf streamer (all optional; defaults model a stateless
source):

``state_size``
    Number of continuous states.
``initial_state()``
    Initial state vector.
``derivatives(t, state)``
    dstate/dt; IN DPorts are guaranteed fresh when called.
``compute_outputs(t, state)``
    Write OUT DPorts from state/inputs; called in dataflow order.
``direct_feedthrough``
    True if outputs depend on current inputs (drives the topological
    evaluation order and algebraic-loop detection, rule W12).
``zero_crossing_names`` / ``zero_crossings(t, state)``
    Continuous guards; crossings are localised by the solver layer.
``on_zero_crossing(name, t, direction)``
    React to a localised crossing — typically ``self.sport(...).send(...)``.
``handle_signal(sport_name, message)``
    React to a capsule signal at a sync point — typically modify
    parameters ("receiving signal from SPorts ... modifying parameters").
``on_sync(t)``
    Called once per major step; discrete-time blocks update here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.dport import Direction, DPort
from repro.core.flow import Flow, Relay
from repro.core.flowtype import FlowType
from repro.core.sport import SPort
from repro.umlrt.protocol import ProtocolRole
from repro.umlrt.signal import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.thread import StreamerThread


class StreamerError(Exception):
    """Raised on ill-formed streamer structure or usage."""


class Streamer:
    """Base class for both leaf and composite streamers."""

    #: number of continuous states of a leaf streamer
    state_size: int = 0
    #: True if outputs depend on current inputs (W12 ordering)
    direct_feedthrough: bool = False
    #: names for the zero-crossing guards, in order
    zero_crossing_names: Sequence[str] = ()
    #: True if outputs depend only on current inputs (not on t): a pure
    #: static map.  The static checker uses this to find
    #: constant-foldable subgraphs (STR004); it has no runtime effect.
    time_invariant: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise StreamerError("streamer needs a non-empty name")
        self.name = name
        self.parent: Optional["Streamer"] = None
        self.dports: Dict[str, DPort] = {}
        self.sports: Dict[str, SPort] = {}
        self.subs: Dict[str, "Streamer"] = {}
        self.relays: Dict[str, Relay] = {}
        self.flows: List[Flow] = []
        self.thread: Optional["StreamerThread"] = None
        #: tunable parameters, typically modified via handle_signal
        self.params: Dict[str, Any] = {}
        self._state_reset: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # structure construction
    # ------------------------------------------------------------------
    def add_dport(
        self,
        name: str,
        direction: Direction,
        flow_type: FlowType,
        relay_only: bool = False,
    ) -> DPort:
        if name in self.dports:
            raise StreamerError(
                f"duplicate DPort {name!r} on streamer {self.path()}"
            )
        port = DPort(name, direction, flow_type, owner=self,
                     relay_only=relay_only)
        self.dports[name] = port
        return port

    def add_in(self, name: str, flow_type: FlowType) -> DPort:
        """Shorthand for an IN DPort."""
        return self.add_dport(name, Direction.IN, flow_type)

    def add_out(self, name: str, flow_type: FlowType) -> DPort:
        """Shorthand for an OUT DPort."""
        return self.add_dport(name, Direction.OUT, flow_type)

    def add_boundary(
        self, name: str, direction: Direction, flow_type: FlowType
    ) -> DPort:
        """A relay-only boundary DPort on a composite streamer."""
        return self.add_dport(name, direction, flow_type, relay_only=True)

    def add_sport(self, name: str, role: ProtocolRole) -> SPort:
        if name in self.sports:
            raise StreamerError(
                f"duplicate SPort {name!r} on streamer {self.path()}"
            )
        sport = SPort(name, role, owner=self)
        self.sports[name] = sport
        return sport

    def add_sub(self, streamer: "Streamer") -> "Streamer":
        """Contain a sub-streamer (streamers nest arbitrarily, Fig 2)."""
        if not isinstance(streamer, Streamer):
            raise StreamerError(
                f"streamers may only contain streamers (W6); got "
                f"{type(streamer).__name__}"
            )
        if streamer.name in self.subs:
            raise StreamerError(
                f"duplicate sub-streamer {streamer.name!r} in {self.path()}"
            )
        if streamer.parent is not None:
            raise StreamerError(
                f"streamer {streamer.path()} already has a parent"
            )
        streamer.parent = self
        self.subs[streamer.name] = streamer
        return streamer

    def add_relay(self, name: str, flow_type: FlowType) -> Relay:
        """A relay fan-out point inside this composite (W2)."""
        if name in self.relays:
            raise StreamerError(
                f"duplicate relay {name!r} in streamer {self.path()}"
            )
        relay = Relay(name, flow_type)
        self.relays[name] = relay
        return relay

    def add_flow(self, source: DPort, target: DPort) -> Flow:
        """An internal flow between pads visible in this composite."""
        flow = Flow(source, target)
        self.flows.append(flow)
        return flow

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def dport(self, name: str) -> DPort:
        try:
            return self.dports[name]
        except KeyError:
            raise StreamerError(
                f"streamer {self.path()} has no DPort {name!r}"
            ) from None

    def sport(self, name: str) -> SPort:
        try:
            return self.sports[name]
        except KeyError:
            raise StreamerError(
                f"streamer {self.path()} has no SPort {name!r}"
            ) from None

    def sub(self, name: str) -> "Streamer":
        try:
            return self.subs[name]
        except KeyError:
            raise StreamerError(
                f"streamer {self.path()} has no sub-streamer {name!r}"
            ) from None

    def path(self) -> str:
        parts = [self.name]
        node = self.parent
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return ".".join(reversed(parts))

    @property
    def is_composite(self) -> bool:
        return bool(self.subs)

    def leaves(self) -> List["Streamer"]:
        """All behavioural leaf streamers under (and including) self."""
        if not self.is_composite:
            return [self]
        out: List[Streamer] = []
        for sub_streamer in self.subs.values():
            out.extend(sub_streamer.leaves())
        return out

    def all_flows(self) -> List[Flow]:
        """Flows declared at this level and in all descendants."""
        out = list(self.flows)
        for sub_streamer in self.subs.values():
            out.extend(sub_streamer.all_flows())
        return out

    def all_relays(self) -> List[Relay]:
        out = list(self.relays.values())
        for sub_streamer in self.subs.values():
            out.extend(sub_streamer.all_relays())
        return out

    # ------------------------------------------------------------------
    # numeric hooks (leaf streamers override)
    # ------------------------------------------------------------------
    def initial_state(self) -> np.ndarray:
        return np.zeros(self.state_size, dtype=float)

    def derivatives(self, t: float, state: np.ndarray) -> np.ndarray:
        if self.state_size:
            raise StreamerError(
                f"streamer {self.path()} declares state_size="
                f"{self.state_size} but does not implement derivatives()"
            )
        return np.empty(0, dtype=float)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        """Write OUT DPorts.  Default: leave values unchanged."""

    def zero_crossings(self, t: float, state: np.ndarray) -> Sequence[float]:
        return ()

    def on_zero_crossing(self, name: str, t: float, direction: int) -> None:
        """React to a localised zero crossing.  Default: nothing."""

    def handle_signal(self, sport_name: str, message: Message) -> None:
        """React to a capsule signal delivered at a sync point."""

    def on_sync(self, t: float) -> None:
        """Hook run once per major step (discrete-time blocks update here)."""

    def request_state_reset(self, new_state: Sequence[float]) -> None:
        """Ask the scheduler to overwrite this leaf's continuous state at
        the next sync point (used e.g. by resettable integrators)."""
        arr = np.asarray(new_state, dtype=float).reshape(-1)
        if arr.shape != (self.state_size,):
            raise StreamerError(
                f"state reset for {self.path()} has shape {arr.shape}, "
                f"expected ({self.state_size},)"
            )
        self._state_reset = arr

    def consume_state_reset(self) -> Optional[np.ndarray]:
        """Internal: fetch-and-clear a pending state reset."""
        reset, self._state_reset = self._state_reset, None
        return reset

    # -- checkpointing hooks (resilience layer) --------------------------
    def extra_state(self) -> Dict[str, Any]:
        """Discrete-time internal state beyond ``params`` and the ODE
        state vector (sample-and-hold registers, difference histories).

        The snapshot codec captures ``params``, any pending state reset
        and this mapping for every leaf; a leaf whose hooks keep private
        attributes (backward-difference caches, delay lines) must expose
        them here — and accept them back in :meth:`restore_extra_state`
        — for a checkpointed run to resume bitwise identically.  Values
        must be plain data (numbers, strings, lists, dicts, ndarrays).
        """
        return {}

    def restore_extra_state(self, state: Dict[str, Any]) -> None:
        """Re-inject state captured by :meth:`extra_state`."""
        if state:
            raise StreamerError(
                f"streamer {self.path()} received snapshot extra state "
                f"{sorted(state)} but does not implement "
                "restore_extra_state()"
            )

    # convenience for hooks ------------------------------------------------
    def in_scalar(self, name: str) -> float:
        """Read a scalar IN DPort value."""
        return self.dport(name).read_scalar()

    def out_scalar(self, name: str, value: float) -> None:
        """Write a scalar OUT DPort value."""
        self.dport(name).write(float(value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "composite" if self.is_composite else "leaf"
        return f"{type(self).__name__}({self.path()!r}, {kind})"
