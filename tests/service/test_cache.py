"""PlanCache: thread-safe, content-addressed, LRU-bounded, compile-once."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.cache import CacheError, PlanCache
from repro.service.telemetry import MetricsRegistry


class TestBasics:
    def test_get_or_compile_compiles_then_hits(self):
        cache = PlanCache(capacity=4)
        calls = []
        factory = lambda: calls.append(1) or "artefact"  # noqa: E731
        assert cache.get_or_compile("k", factory) == "artefact"
        assert cache.get_or_compile("k", factory) == "artefact"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["compiles"] == 1

    def test_get_put_invalidate(self):
        cache = PlanCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get("k") is None

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            PlanCache(capacity=0)


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_size_never_exceeds_capacity(self):
        cache = PlanCache(capacity=3)
        for index in range(10):
            cache.put(f"k{index}", index)
            assert len(cache) <= 3


class TestCompileOnce:
    def test_eight_threads_compile_exactly_once(self):
        cache = PlanCache(capacity=4)
        compiles = []
        barrier = threading.Barrier(8)
        results = []

        def factory():
            compiles.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return "artefact"

        def worker():
            barrier.wait()
            results.append(cache.get_or_compile("k", factory))

        threads = [threading.Thread(target=worker) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(compiles) == 1
        assert results == ["artefact"] * 8
        stats = cache.stats()
        assert stats["compiles"] == 1
        assert stats["hits"] + stats["misses"] == 8

    def test_distinct_keys_compile_concurrently(self):
        cache = PlanCache(capacity=8)
        started = threading.Event()
        release = threading.Event()

        def slow_factory():
            started.set()
            assert release.wait(5.0)
            return "slow"

        def fast_factory():
            return "fast"

        slow_result = []
        slow = threading.Thread(
            target=lambda: slow_result.append(
                cache.get_or_compile("slow", slow_factory)
            )
        )
        slow.start()
        assert started.wait(5.0)
        # while 'slow' is mid-compile, another key must not block
        assert cache.get_or_compile("fast", fast_factory) == "fast"
        release.set()
        slow.join(5.0)
        assert slow_result == ["slow"]

    def test_factory_failure_propagates_and_caches_nothing(self):
        cache = PlanCache(capacity=4)

        def bad_factory():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            cache.get_or_compile("k", bad_factory)
        assert "k" not in cache
        # a later compile of the same key succeeds
        assert cache.get_or_compile("k", lambda: "ok") == "ok"

    def test_failure_propagates_to_concurrent_waiters(self):
        cache = PlanCache(capacity=4)
        barrier = threading.Barrier(4)
        outcomes = []

        def bad_factory():
            time.sleep(0.05)
            raise ValueError("boom")

        def worker():
            barrier.wait()
            try:
                cache.get_or_compile("k", bad_factory)
                outcomes.append("ok")
            except ValueError:
                outcomes.append("boom")

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == ["boom"] * 4
        assert "k" not in cache


class TestMetricsIntegration:
    def test_counters_flow_into_registry(self):
        registry = MetricsRegistry()
        cache = PlanCache(capacity=2, metrics=registry)
        cache.get_or_compile("k", lambda: 1)
        cache.get_or_compile("k", lambda: 1)
        snapshot = registry.snapshot()["counters"]
        assert snapshot["cache.hits"] == 1
        assert snapshot["cache.misses"] == 1
        assert snapshot["cache.compiles"] == 1

    def test_hit_rate(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("k", lambda: 1)
        for __ in range(3):
            cache.get_or_compile("k", lambda: 1)
        assert cache.stats()["hit_rate"] == pytest.approx(0.75)
