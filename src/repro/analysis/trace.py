"""Message-dispatch traces of the discrete world.

Attach a :class:`MessageTrace` to a running system and it records every
dispatched message: logical dispatch time, send-to-dispatch latency (the
paper's "unpredictable timing" made visible), receiving capsule, signal
and priority.  Bench C3 uses the latency distribution of ``timeout``
messages to quantify UML-RT timer jitter under load against the
extension's continuous Time service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.umlrt.runtime import RTSystem
from repro.umlrt.signal import Message


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatched message."""

    time: float          # logical time at dispatch
    sent_at: float       # message timestamp (when it entered the queue)
    capsule: str
    signal: str
    priority: int

    @property
    def latency(self) -> float:
        return self.time - self.sent_at


class MessageTrace:
    """Recorder of all dispatches in an RTSystem."""

    def __init__(self, rts: RTSystem) -> None:
        self.rts = rts
        self.records: List[DispatchRecord] = []
        self._attached = False

    def attach(self) -> "MessageTrace":
        """Install dispatch hooks on every controller."""
        if self._attached:
            return self
        self._attached = True
        for controller in self.rts.controllers:
            previous = controller.on_dispatch

            def hook(message: Message, capsule, _prev=previous) -> None:
                if _prev is not None:
                    _prev(message, capsule)
                self.records.append(DispatchRecord(
                    time=self.rts.now,
                    sent_at=message.timestamp,
                    capsule=capsule.instance_name,
                    signal=message.signal,
                    priority=int(message.priority),
                ))

            controller.on_dispatch = hook
        return self

    # ------------------------------------------------------------------
    def by_signal(self, signal: str) -> List[DispatchRecord]:
        return [r for r in self.records if r.signal == signal]

    def by_capsule(self, capsule_name: str) -> List[DispatchRecord]:
        return [r for r in self.records if r.capsule == capsule_name]

    def latencies(self, signal: Optional[str] = None) -> np.ndarray:
        records = self.records if signal is None else self.by_signal(signal)
        return np.array([r.latency for r in records], dtype=float)

    def latency_stats(self, signal: Optional[str] = None) -> Dict[str, float]:
        """min/mean/max/p99 of dispatch latency (timer jitter for
        ``signal="timeout"``)."""
        lat = self.latencies(signal)
        if lat.size == 0:
            return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0,
                    "p99": 0.0}
        return {
            "count": int(lat.size),
            "min": float(lat.min()),
            "mean": float(lat.mean()),
            "max": float(lat.max()),
            "p99": float(np.percentile(lat, 99)),
        }

    def counts_by_signal(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.signal] = out.get(record.signal, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.records)
