"""Checkpoint/resume through the uniform program surface.

``snapshot_state`` dicts are plain data, so they travel through the
resilience layer's :class:`Snapshot` container and the
:class:`CheckpointManager` spool (CRC-framed, atomically published)
unchanged — and a program restored in a *fresh* process position
continues bitwise identically to one that never stopped.  The grid is
binary-exact (``H = 1/512``) so the capture point is an exact double.
"""

import numpy as np
import pytest

from repro.core.backend import CompileRequest, compile_program, has_c_compiler
from repro.scenarios.synth import synth_dag
from repro.resilience import CheckpointManager, Snapshot
from repro.resilience.codec import SNAPSHOT_VERSION

H = 1.0 / 512.0
T_CUT = 0.375   # 192 exact steps
T_END = 0.75    # 384 exact steps

BACKENDS = ["interpreter", "compiled-python"]
if has_c_compiler():
    BACKENDS.append("native-c")


def make_program(backend, cache_dir=None):
    request = CompileRequest(
        diagram=synth_dag(7, blocks=16, sampled=True),
        h=H,
        opt_level=1,
        cache_dir=cache_dir,
    )
    program = compile_program(request, backend)
    assert program.backend == backend
    return program


def spool_roundtrip(program, tmp_path):
    """Spool the program's cursor through a CheckpointManager and hand
    back the reloaded snapshot."""
    manager = CheckpointManager(tmp_path / "spool", every_steps=1)
    manager.write(Snapshot(
        version=SNAPSHOT_VERSION,
        fingerprint=program.fingerprint(),
        t=program.t,
        step=program._step,
        kind="backend-program",
        payload=program.snapshot_state(),
    ))
    loaded = manager.load_latest()
    assert loaded is not None
    __, snapshot = loaded
    return snapshot


@pytest.mark.parametrize("backend", BACKENDS)
def test_spooled_resume_is_bitwise(backend, tmp_path):
    full = make_program(backend, cache_dir=tmp_path / "cache").run(T_END)

    interrupted = make_program(backend, cache_dir=tmp_path / "cache")
    first = interrupted.run(T_CUT)
    snapshot = spool_roundtrip(interrupted, tmp_path)
    assert snapshot.kind == "backend-program"
    assert snapshot.t == T_CUT

    # a brand-new program (the "restarted process") picks the cursor up
    resumed = make_program(backend, cache_dir=tmp_path / "cache")
    assert snapshot.fingerprint == resumed.fingerprint()
    resumed.restore_state(snapshot.payload)
    assert resumed.t == T_CUT
    second = resumed.run(T_END)

    assert np.array_equal(
        full.t, np.concatenate([first.t, second.t[1:]])
    )
    for label in full.series:
        assert np.array_equal(
            full.series[label],
            np.concatenate([first.series[label], second.series[label][1:]]),
        ), label
    assert np.array_equal(full.final_state, second.final_state)


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_restore_same_program(backend, tmp_path):
    """Restoring over a further-advanced program rewinds it exactly."""
    program = make_program(backend, cache_dir=tmp_path / "cache")
    program.run(T_CUT)
    state = program.snapshot_state()
    expected = program.run(T_END)

    program.restore_state(state)
    assert program.t == T_CUT
    replayed = program.run(T_END)
    assert np.array_equal(expected.t, replayed.t)
    for label in expected.series:
        assert np.array_equal(
            expected.series[label], replayed.series[label]
        ), label
    assert np.array_equal(expected.final_state, replayed.final_state)


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_replays_from_cold(backend, tmp_path):
    program = make_program(backend, cache_dir=tmp_path / "cache")
    first = program.run(T_CUT)
    program.reset()
    assert program.t == 0.0
    again = program.run(T_CUT)
    assert np.array_equal(first.t, again.t)
    for label in first.series:
        assert np.array_equal(first.series[label], again.series[label]), label
    assert np.array_equal(first.final_state, again.final_state)


def test_fingerprint_guards_cross_plan_restore(tmp_path):
    """A snapshot from a different plan is detectable before any state
    is overlaid — the same contract the scheduler codec enforces."""
    program = make_program("compiled-python")
    program.run(T_CUT)
    snapshot = spool_roundtrip(program, tmp_path)

    other = compile_program(
        CompileRequest(diagram=synth_dag(8, blocks=16), h=H, opt_level=1),
        "compiled-python",
    )
    assert snapshot.fingerprint != other.fingerprint()
