"""End-to-end hybrid model behaviour: scheduler, SPorts, events, threads."""

import math

import numpy as np
import pytest

from tests.conftest import ConstLeaf, DecayLeaf, GainLeaf, IntegratorLeaf

from repro.core.channel import ChannelPolicy
from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel, ModelError
from repro.core.sport import SPortError
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

CMD = Protocol.define("Cmd", outgoing=("set_value",), incoming=("ack",))


class TestPureContinuous:
    def test_integrator_ramp(self, model):
        const = model.add_streamer(ConstLeaf("c", 2.0))
        integ = model.add_streamer(IntegratorLeaf("i"))
        model.add_flow(const.dport("y"), integ.dport("u"))
        model.add_probe("y", integ.dport("y"))
        model.run(until=1.0, sync_interval=0.1)
        assert model.probe("y").y_final[0] == pytest.approx(2.0, rel=1e-9)

    def test_exponential_decay_accuracy(self, model):
        model.default_thread.h = 1e-3
        model.add_streamer(DecayLeaf("d", lam=2.0, y0=1.0))
        model.add_probe("y", model.streamers[0].dport("y"))
        model.run(until=1.0, sync_interval=0.05)
        assert model.probe("y").y_final[0] == pytest.approx(
            math.exp(-2.0), rel=1e-6
        )

    def test_time_advances(self, model):
        model.add_streamer(DecayLeaf("d"))
        model.run(until=0.5, sync_interval=0.1)
        assert model.time.now == pytest.approx(0.5)

    def test_trajectory_sampled_each_sync(self, model):
        model.add_streamer(DecayLeaf("d"))
        model.add_probe("y", model.streamers[0].dport("y"))
        model.run(until=1.0, sync_interval=0.25)
        assert len(model.probe("y")) == 5  # t=0 + 4 majors


class TestCapsuleStreamerInteraction:
    class Tuner(Capsule):
        """Sets the gain parameter at t = 1 via a timer."""

        def build_structure(self):
            self.create_port("cmd", CMD.base())

        def build_behaviour(self):
            sm = StateMachine("tuner")
            sm.add_state("waiting")
            sm.add_state("done")
            sm.initial("waiting")
            sm.add_transition(
                "waiting", "done", trigger=("timer", "timeout"),
                action=lambda c, m: c.send("cmd", "set_value", 5.0),
            )
            return sm

        def on_start(self):
            self.inform_in(1.0)

    class TunableGain(GainLeaf):
        def __init__(self, name):
            super().__init__(name, k=1.0)
            self.add_sport("tune", CMD.conjugate())

        def handle_signal(self, sport_name, message):
            if message.signal == "set_value":
                self.params["k"] = float(message.data)
                self.sport("tune").send("ack", self.params["k"])

    def build(self, model):
        tuner = model.add_capsule(self.Tuner("tuner"))
        const = model.add_streamer(ConstLeaf("c", 1.0))
        gain = model.add_streamer(self.TunableGain("g"))
        model.add_flow(const.dport("y"), gain.dport("u"))
        model.connect_sport(tuner.port("cmd"), gain.sport("tune"))
        model.add_probe("y", gain.dport("y"))
        return tuner, gain

    def test_parameter_change_takes_effect(self, model):
        __, gain = self.build(model)
        model.run(until=2.0, sync_interval=0.1)
        trajectory = model.probe("y")
        assert trajectory.sample(0.5)[0] == pytest.approx(1.0)
        assert trajectory.sample(1.5)[0] == pytest.approx(5.0)

    def test_ack_reaches_capsule(self, model):
        tuner, __ = self.build(model)
        model.run(until=2.0, sync_interval=0.1)
        scheduler = model.scheduler()
        assert scheduler.signals_to_streamers == 1
        assert scheduler.signals_to_capsules == 1

    def test_sport_must_be_connected_to_send(self):
        streamer = Streamer("s")
        sport = streamer.add_sport("p", CMD.conjugate())
        with pytest.raises(SPortError, match="not connected"):
            sport.send("ack")

    def test_sport_signal_validated(self, model):
        __, gain = self.build(model)
        with pytest.raises(SPortError, match="cannot send"):
            gain.sport("tune").send("set_value")  # wrong direction

    def test_double_connection_rejected(self, model):
        tuner, gain = self.build(model)
        other = model.add_capsule(self.Tuner("tuner2"))
        with pytest.raises(ModelError, match="already connected"):
            model.connect_sport(other.port("cmd"), gain.sport("tune"))


class TestZeroCrossingIntegration:
    class Bouncer(Streamer):
        """Falling ball with a terminal-ish event sent to the model."""

        state_size = 2
        zero_crossing_names = ("ground",)

        def __init__(self, name):
            super().__init__(name)
            self.add_out("h", SCALAR)
            self.crossings = []

        def initial_state(self):
            return np.array([10.0, 0.0])

        def derivatives(self, t, state):
            return np.array([state[1], -9.81])

        def compute_outputs(self, t, state):
            self.out_scalar("h", state[0])

        def zero_crossings(self, t, state):
            return (state[0],)

        def on_zero_crossing(self, name, t, direction):
            self.crossings.append((name, t, direction))

    def test_event_localised(self, model):
        ball = model.add_streamer(self.Bouncer("ball"))
        model.run(until=2.0, sync_interval=0.05)
        assert len(ball.crossings) == 1
        name, t, direction = ball.crossings[0]
        assert name == "ground" and direction == -1
        assert t == pytest.approx(math.sqrt(2 * 10.0 / 9.81), abs=1e-3)

    def test_event_restart_truncates_major_step(self, model):
        ball = model.add_streamer(self.Bouncer("ball"))
        scheduler = model.run(until=2.0, sync_interval=0.05,
                              event_restart=True)
        assert scheduler.events_fired == 1

    def test_no_restart_mode(self, model):
        ball = model.add_streamer(self.Bouncer("ball"))
        model.run(until=2.0, sync_interval=0.05, event_restart=False)
        assert len(ball.crossings) == 1


class TestMultiThread:
    def build(self, model, real=False):
        fast = model.create_thread("fast", solver="rk4", h=0.001)
        slow = model.create_thread("slow", solver="euler", h=0.01)
        const = model.add_streamer(ConstLeaf("c", 1.0), fast)
        a = model.add_streamer(IntegratorLeaf("a"), fast)
        b = model.add_streamer(IntegratorLeaf("b"), slow)
        model.add_flow(const.dport("y"), a.dport("u"))
        model.add_flow(a.dport("y"), b.dport("u"))
        model.add_probe("a", a.dport("y"))
        model.add_probe("b", b.dport("y"))
        return model

    def test_cross_thread_flow_sampled(self, model):
        self.build(model)
        model.run(until=1.0, sync_interval=0.05)
        # a = t exactly; b = integral of sampled a ~ t^2/2 with O(sync) err
        assert model.probe("a").y_final[0] == pytest.approx(1.0, rel=1e-9)
        assert model.probe("b").y_final[0] == pytest.approx(0.5, abs=0.05)

    def test_real_threads_match_cooperative(self):
        results = []
        for real in (False, True):
            model = HybridModel("mt")
            self.build(model)
            model.run(until=0.5, sync_interval=0.05, real_threads=real)
            results.append(model.probe("b").y_final[0])
        assert results[0] == pytest.approx(results[1], abs=1e-12)

    def test_duplicate_thread_name(self, model):
        model.create_thread("x")
        with pytest.raises(ModelError):
            model.create_thread("x")


class TestModelErrors:
    def test_nested_streamer_rejected(self, model):
        top = Streamer("top")
        sub = top.add_sub(Streamer("sub"))
        with pytest.raises(ModelError):
            model.add_streamer(sub)

    def test_duplicate_top_name(self, model):
        model.add_streamer(ConstLeaf("x", 1.0))
        with pytest.raises(ModelError):
            model.add_streamer(ConstLeaf("x", 2.0))

    def test_duplicate_probe(self, model):
        streamer = model.add_streamer(ConstLeaf("x", 1.0))
        model.add_probe("p", streamer.dport("y"))
        with pytest.raises(ModelError):
            model.add_probe("p", streamer.dport("y"))

    def test_unknown_probe(self, model):
        with pytest.raises(ModelError):
            model.probe("ghost")

    def test_foreign_capsule_port_rejected(self, model):
        foreign = Capsule("foreign")
        streamer = model.add_streamer(ConstLeaf("x", 1.0))
        sport = streamer.add_sport("s", CMD.conjugate())
        with pytest.raises(ModelError):
            model.connect_sport(foreign.port("timer"), sport)

    def test_stats_shape(self, model):
        model.add_streamer(DecayLeaf("d"))
        model.run(until=0.2, sync_interval=0.1)
        stats = model.stats()
        for key in ("capsules", "major_steps", "minor_steps",
                    "rhs_evaluations"):
            assert key in stats
