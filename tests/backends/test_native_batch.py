"""The native-batch backend: N-instance C kernels, sharded.

Acceptance properties:

* bitwise identity against ``simulate_sequential`` at O0/O1 (and at O2
  unless the fuser actually reassociated, where a tolerance applies),
  including the sampled (ZOH) sync path;
* chunked resume — ``run_chunked(resume=...)`` and the adapter's
  snapshot/restore — continues bitwise mid-run;
* any shard count produces identical bits (property-tested);
* one compiled artifact serves every batch size (N-independent key);
* no compiler never fails a run: the simulator demotes to the NumPy
  program and counts ``backend.fallback``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend import (
    CompileRequest,
    available_backends,
    compile_program,
    fallback_chain,
    has_c_compiler,
)
from repro.core.backend.nativebatch import shard_bounds
from repro.core.batch import (
    BatchSimulator,
    batch_cache_metrics,
    merge_chunks,
    reset_shared_program_cache,
    shared_program_cache,
    simulate_sequential,
)
from repro.dataflow import (
    PID,
    FirstOrderLag,
    Gain,
    SecondOrderSystem,
    Sine,
    Step,
    Sum,
    ZeroOrderHold,
)
from repro.dataflow.diagram import Diagram
from repro.service import MetricsRegistry

H = 1.0 / 512.0  # binary-exact step: no last-ulp drift from clamping
T_END = 0.25

needs_cc = pytest.mark.skipif(
    not has_c_compiler(), reason="no C compiler on this host"
)


def pid_loop_diagram() -> Diagram:
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def sampled_diagram() -> Diagram:
    """Continuous states plus a zero-order hold: the statement-replica
    sync path the kernel must replay bitwise.  (Feed-forward: the
    batch-vs-sequential bitwise guarantee covers loop-free sampled
    topologies; for loops see ``test_zoh_loop_matches_numpy_batch``.)"""
    d = Diagram("servo")
    d.add(Sine("ref", amplitude=1.0, freq=0.8))
    d.add(ZeroOrderHold("adc", ts=0.02))
    d.add(Gain("ctl", k=4.0))
    d.add(SecondOrderSystem("servo", omega=6.0, zeta=0.5))
    d.connect("ref.out", "adc.in")
    d.connect("adc.out", "ctl.in")
    d.connect("ctl.out", "servo.in")
    return d


def zoh_loop_diagram() -> Diagram:
    d = Diagram("zloop")
    d.add(Sine("ref", amplitude=1.0, freq=0.8))
    d.add(Sum("err", signs="+-"))
    d.add(ZeroOrderHold("adc", ts=0.02))
    d.add(Gain("ctl", k=4.0))
    d.add(SecondOrderSystem("servo", omega=6.0, zeta=0.5))
    d.connect("ref.out", "err.in1")
    d.connect("servo.out", "err.in2")
    d.connect("err.out", "adc.in")
    d.connect("adc.out", "ctl.in")
    d.connect("ctl.out", "servo.in")
    return d


def fusable_diagram() -> Diagram:
    """A gain chain the O2 fuser reassociates (fuse.* counts > 0)."""
    d = Diagram("chain")
    d.add(Step("u", amplitude=1.0))
    prev = "u.out"
    for i in range(4):
        d.add(Gain(f"g{i}", k=1.1 + 0.1 * i))
        d.connect(prev, f"g{i}.in")
        prev = f"g{i}.out"
    d.add(FirstOrderLag("plant", tau=0.3))
    d.connect(prev, "plant.in")
    return d


def kp_sweep(n: int):
    return {"pid.kp": np.linspace(0.5, 5.0, n)}


def native_sim(factory, n, sweeps=None, **overrides):
    kwargs = dict(
        n=n, solver="rk4", h=H, sweeps=sweeps,
        backend="native-batch", cache=False,
    )
    kwargs.update(overrides)
    return BatchSimulator(factory(), **kwargs)


def assert_batch_bitwise(reference, candidate):
    assert np.array_equal(reference.t, candidate.t)
    assert set(reference.series) == set(candidate.series)
    for label in sorted(reference.series):
        assert np.array_equal(
            reference.series[label], candidate.series[label]
        ), f"series {label} diverged"
    assert np.array_equal(reference.final_states, candidate.final_states)


# ----------------------------------------------------------------------
# registry shape (runs with or without a toolchain)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_native_batch_is_registered(self):
        assert "native-batch" in available_backends()

    def test_fallback_chain_demotes_to_numpy_batch(self):
        assert fallback_chain("native-batch") == ("native-batch", "batch")

    def test_shard_bounds_partition_contiguously(self):
        for n in (1, 2, 7, 16, 100):
            for shards in (1, 2, 3, 8, 200):
                bounds = shard_bounds(n, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                assert all(lo < hi for lo, hi in bounds)
                assert all(
                    prev[1] == nxt[0]
                    for prev, nxt in zip(bounds, bounds[1:])
                )
                sizes = [hi - lo for lo, hi in bounds]
                assert max(sizes) - min(sizes) <= 1


# ----------------------------------------------------------------------
# bitwise parity against N sequential interpreter runs
# ----------------------------------------------------------------------
@needs_cc
class TestBitwiseParity:
    N = 9

    @pytest.mark.parametrize("opt_level", [0, 1])
    @pytest.mark.parametrize(
        "factory", [pid_loop_diagram, sampled_diagram],
        ids=["pid_loop", "sampled_zoh"],
    )
    def test_matches_sequential(self, factory, opt_level):
        sweeps = kp_sweep(self.N) if factory is pid_loop_diagram else None
        sim = native_sim(factory, self.N, sweeps, opt_level=opt_level)
        assert sim.backend_name == "native-batch", \
            sim.backend_fallback_reason
        result = sim.run(T_END)
        reference = simulate_sequential(
            factory, self.N, T_END, solver="rk4", h=H, sweeps=sweeps,
        )
        assert_batch_bitwise(reference, result)

    @pytest.mark.parametrize("solver", ["euler", "heun", "rk4"])
    def test_every_kernel_solver(self, solver):
        sweeps = kp_sweep(5)
        sim = native_sim(pid_loop_diagram, 5, sweeps, solver=solver)
        assert sim.backend_name == "native-batch"
        result = sim.run(T_END)
        reference = simulate_sequential(
            pid_loop_diagram, 5, T_END, solver=solver, h=H, sweeps=sweeps,
        )
        assert_batch_bitwise(reference, result)

    def test_o2_within_reassociation_tolerance(self):
        sim = native_sim(fusable_diagram, 4, opt_level=2)
        assert sim.backend_name == "native-batch"
        result = sim.run(T_END)
        reference = simulate_sequential(
            fusable_diagram, 4, T_END, solver="rk4", h=H,
        )
        assert np.array_equal(reference.t, result.t)
        for label in reference.series:
            np.testing.assert_allclose(
                result.series[label], reference.series[label],
                rtol=1e-9, atol=1e-9,
            )

    def test_matches_numpy_batch_program_bitwise(self):
        sweeps = kp_sweep(self.N)
        native = native_sim(pid_loop_diagram, self.N, sweeps).run(T_END)
        numpy_batch = BatchSimulator(
            pid_loop_diagram(), n=self.N, solver="rk4", h=H,
            sweeps=sweeps, cache=False,
        ).run(T_END)
        assert_batch_bitwise(numpy_batch, native)

    def test_zoh_loop_matches_numpy_batch(self):
        """Sampled block inside a feedback loop: the kernel replicates
        the batch program's sync semantics exactly (the reference for
        this topology, where the per-instance interpreter associates
        the loop algebra differently at the last ulp)."""
        native = native_sim(zoh_loop_diagram, self.N).run(T_END)
        numpy_batch = BatchSimulator(
            zoh_loop_diagram(), n=self.N, solver="rk4", h=H, cache=False,
        ).run(T_END)
        assert_batch_bitwise(numpy_batch, native)


# ----------------------------------------------------------------------
# chunked resume / checkpoint parity
# ----------------------------------------------------------------------
@needs_cc
class TestChunkedResume:
    N = 6

    def test_chunk_concatenation_is_bitwise(self):
        sweeps = kp_sweep(self.N)
        full = native_sim(pid_loop_diagram, self.N, sweeps).run(T_END)
        chunks = list(
            native_sim(pid_loop_diagram, self.N, sweeps).run_chunked(
                T_END, chunk_steps=23, record_every=3,
            )
        )
        assert len(chunks) > 2
        assert chunks[-1].final and not chunks[0].final
        merged = merge_chunks(chunks, self.N)
        coarse = native_sim(pid_loop_diagram, self.N, sweeps).run(
            T_END, record_every=3,
        )
        assert_batch_bitwise(coarse, merged)
        assert np.array_equal(full.final_states, merged.final_states)

    def test_resume_round_trip_is_bitwise(self):
        sweeps = kp_sweep(self.N)
        reference = list(
            native_sim(pid_loop_diagram, self.N, sweeps).run_chunked(
                T_END, chunk_steps=17,
            )
        )
        it = native_sim(pid_loop_diagram, self.N, sweeps).run_chunked(
            T_END, chunk_steps=17,
        )
        first = next(it)
        it.close()
        assert first.resume is not None
        resumed = list(
            native_sim(pid_loop_diagram, self.N, sweeps).run_chunked(
                T_END, chunk_steps=17, resume=first.resume,
            )
        )
        merged = merge_chunks([first, *resumed], self.N)
        assert_batch_bitwise(
            merge_chunks(reference, self.N), merged,
        )

    def test_resume_round_trip_across_sampled_sync(self):
        chunks = []
        it = native_sim(sampled_diagram, self.N).run_chunked(
            T_END, chunk_steps=29,
        )
        first = next(it)
        it.close()
        chunks.append(first)
        # a fresh simulator: held registers travel in the resume blob
        chunks.extend(
            native_sim(sampled_diagram, self.N).run_chunked(
                T_END, chunk_steps=29, resume=first.resume,
            )
        )
        merged = merge_chunks(chunks, self.N)
        uninterrupted = native_sim(sampled_diagram, self.N).run(T_END)
        assert_batch_bitwise(uninterrupted, merged)

    def test_native_resume_blob_loads_into_numpy_program(self):
        """Demotion mid-job keeps checkpoints usable: a native resume
        point restores into the NumPy program bitwise."""
        it = native_sim(sampled_diagram, self.N).run_chunked(
            T_END, chunk_steps=29,
        )
        first = next(it)
        it.close()
        numpy_rest = list(
            BatchSimulator(
                sampled_diagram(), n=self.N, solver="rk4", h=H,
                cache=False,
            ).run_chunked(T_END, chunk_steps=29, resume=first.resume)
        )
        merged = merge_chunks([first, *numpy_rest], self.N)
        uninterrupted = native_sim(sampled_diagram, self.N).run(T_END)
        assert_batch_bitwise(uninterrupted, merged)

    def test_adapter_snapshot_restore_mid_run(self):
        request = CompileRequest(
            diagram=pid_loop_diagram(), solver="rk4", h=H, n=self.N,
            sweeps=kp_sweep(self.N),
        )
        program = compile_program(request, "native-batch")
        assert program.backend == "native-batch"
        full = program.run(T_END)
        program.reset()
        first = program.run(T_END / 2)
        blob = program.snapshot_state()
        fresh = compile_program(
            CompileRequest(
                diagram=pid_loop_diagram(), solver="rk4", h=H,
                n=self.N, sweeps=kp_sweep(self.N),
            ),
            "native-batch",
        )
        fresh.restore_state(blob)
        second = fresh.run(T_END)
        t = np.concatenate([first.t, second.t[1:]])
        assert np.array_equal(full.t, t)
        for label in full.series:
            series = np.concatenate(
                [first.series[label], second.series[label][1:]]
            )
            assert np.array_equal(full.series[label], series), label
        assert np.array_equal(full.final_state, second.final_state)


# ----------------------------------------------------------------------
# shard invariance (property-tested)
# ----------------------------------------------------------------------
@needs_cc
class TestShardInvariance:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=24),
        shards=st.integers(min_value=1, max_value=8),
        lo=st.floats(min_value=0.25, max_value=4.0),
        hi=st.floats(min_value=4.5, max_value=9.0),
    )
    def test_sweep_layout_stable_across_shard_counts(
        self, n, shards, lo, hi
    ):
        """Any shard count reads the same parameter doubles and writes
        the same result bits — the SweepVar row layout is shard-blind."""
        sweeps = {"pid.kp": np.linspace(lo, hi, n)}
        t_end = 16 * H
        baseline = native_sim(
            pid_loop_diagram, n, sweeps, shards=1,
        )
        assert baseline.backend_name == "native-batch"
        reference = baseline.run(t_end)
        sharded = native_sim(
            pid_loop_diagram, n, sweeps, shards=shards,
        )
        assert sharded.shards == min(shards, n)
        assert_batch_bitwise(reference, sharded.run(t_end))


# ----------------------------------------------------------------------
# artifact reuse and demotion
# ----------------------------------------------------------------------
@needs_cc
class TestArtifactAndFallback:
    def test_one_artifact_serves_every_n(self, tmp_path):
        sims = [
            native_sim(
                pid_loop_diagram, n, kp_sweep(n), native_cache_dir=tmp_path,
            )
            for n in (2, 7, 64)
        ]
        paths = {sim._native.so_path for sim in sims}
        assert len(paths) == 1
        assert [sim._native.cache_hit for sim in sims] == [
            False, True, True,
        ]

    def test_x0_override_reuses_artifact_bitwise(self, tmp_path):
        n = 5
        x0 = np.linspace(-0.5, 0.5, n * 3).reshape(n, 3)
        sim = native_sim(
            pid_loop_diagram, n, kp_sweep(n), x0=x0,
            native_cache_dir=tmp_path,
        )
        result = sim.run(T_END)
        reference = BatchSimulator(
            pid_loop_diagram(), n=n, solver="rk4", h=H,
            sweeps=kp_sweep(n), x0=x0, cache=False,
        ).run(T_END)
        assert_batch_bitwise(reference, result)

    def test_disable_env_demotes_with_metric(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        metrics = MetricsRegistry()
        sim = BatchSimulator(
            pid_loop_diagram(), n=4, solver="rk4", h=H,
            sweeps=kp_sweep(4), backend="native-batch", cache=False,
            metrics=metrics,
        )
        assert sim.backend_name == "batch"
        assert "compiler" in sim.backend_fallback_reason
        assert metrics.counter("backend.fallback").value == 1
        assert (
            metrics.counter("backend.fallback.native-batch").value == 1
        )
        result = sim.run(T_END)  # the run itself must still succeed
        reference = simulate_sequential(
            pid_loop_diagram, 4, T_END, solver="rk4", h=H,
            sweeps=kp_sweep(4),
        )
        assert_batch_bitwise(reference, result)

    def test_ladder_demotes_to_numpy_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        metrics = MetricsRegistry()
        program = compile_program(
            CompileRequest(
                diagram=pid_loop_diagram(), solver="rk4", h=H, n=3,
            ),
            "native-batch", metrics=metrics,
        )
        assert program.backend == "batch"
        assert program.requested == "native-batch"
        assert metrics.counter("backend.fallback").value >= 1


# ----------------------------------------------------------------------
# shared program cache cap (satellite)
# ----------------------------------------------------------------------
class TestProgramCacheCap:
    def test_cap_evicts_and_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CACHE_CAP", "2")
        reset_shared_program_cache()
        try:
            before = batch_cache_metrics().counter(
                "batch.cache_evicted"
            ).value
            cache = shared_program_cache()
            assert cache.capacity == 2
            for amplitude in (1.0, 2.0, 3.0):
                d = Diagram(f"cap{amplitude:g}")
                d.add(Step("u", amplitude=amplitude))
                d.add(FirstOrderLag("plant", tau=0.4))
                d.connect("u.out", "plant.in")
                BatchSimulator(d, n=2, solver="rk4", h=H)
            assert len(cache) == 2
            after = batch_cache_metrics().counter(
                "batch.cache_evicted"
            ).value
            assert after == before + 1
        finally:
            reset_shared_program_cache()

    def test_reset_rebuilds_with_default_cap(self):
        reset_shared_program_cache()
        try:
            assert shared_program_cache().capacity >= 1
        finally:
            reset_shared_program_cache()
