"""Dormand-Prince RK45: accuracy, adaptivity, tolerance response."""

import math

import numpy as np
import pytest

from repro.solvers import DormandPrince45, SolverError, integrate


def decay(t, y):
    return -y


def test_meets_tolerance_on_decay():
    solver = DormandPrince45(rtol=1e-8, atol=1e-10)
    result = integrate(decay, [1.0], 0.0, 3.0, solver, h=0.1)
    assert result.y_final[0] == pytest.approx(math.exp(-3.0), rel=1e-6)


def test_step_grows_on_smooth_problem():
    solver = DormandPrince45(rtol=1e-6, atol=1e-9)
    outcome = solver.step(decay, 0.0, np.array([1.0]), 0.001)
    assert outcome.h_next > 0.001  # smooth: controller wants more


def test_step_shrinks_until_accepted():
    """A violently nonlinear RHS forces rejections, which are counted."""
    def stiffish(t, y):
        return np.array([-5000.0 * (y[0] - math.sin(t))])

    solver = DormandPrince45(rtol=1e-6, atol=1e-9)
    solver.step(stiffish, 0.0, np.array([2.0]), 0.5)
    assert solver.rejected_steps > 0


def test_tighter_tolerance_means_more_steps():
    counts = []
    for rtol in (1e-4, 1e-8):
        solver = DormandPrince45(rtol=rtol, atol=rtol * 1e-3)
        result = integrate(
            lambda t, y: np.array([math.cos(3.0 * t)]), [0.0],
            0.0, 10.0, solver, h=0.1,
        )
        counts.append(result.steps)
    assert counts[1] > counts[0]


def test_error_estimate_reported():
    solver = DormandPrince45()
    outcome = solver.step(decay, 0.0, np.array([1.0]), 0.01)
    assert outcome.error_estimate is not None
    assert outcome.error_estimate <= 1.0  # accepted


def test_oscillator_long_run_accuracy():
    def osc(t, y):
        return np.array([y[1], -y[0]])

    solver = DormandPrince45(rtol=1e-9, atol=1e-12)
    result = integrate(osc, [1.0, 0.0], 0.0, 20 * math.pi, solver, h=0.1)
    assert result.y_final[0] == pytest.approx(1.0, abs=1e-5)


def test_invalid_tolerances_rejected():
    with pytest.raises(SolverError):
        DormandPrince45(rtol=0.0)
    with pytest.raises(SolverError):
        DormandPrince45(atol=-1.0)


def test_reset_clears_controller_state():
    solver = DormandPrince45()
    solver.step(decay, 0.0, np.array([1.0]), 0.01)
    assert solver._fsal is not None
    solver.reset()
    assert solver._fsal is None and solver._prev_err is None


def test_adaptive_flag():
    assert DormandPrince45().adaptive
    assert DormandPrince45.order == 5
