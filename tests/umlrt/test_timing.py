"""Timing service: one-shot, periodic, cancellation, jitter under load."""

import pytest

from repro.umlrt.capsule import Capsule
from repro.umlrt.runtime import RTSystem
from repro.umlrt.statemachine import StateMachine
from repro.umlrt.timing import TimingError


class TimerUser(Capsule):
    def __init__(self, instance_name="tu"):
        self.timeouts = []
        super().__init__(instance_name)

    def build_behaviour(self):
        sm = StateMachine("tu")
        sm.add_state("s")
        sm.initial("s")
        sm.add_transition(
            "s", trigger=("timer", "timeout"), internal=True,
            action=lambda c, m: c.timeouts.append(c.runtime.now),
        )
        return sm


class TestOneShot:
    def test_fires_at_expiry(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_in(2.5)
        rts.run()
        assert user.timeouts == [2.5]
        assert rts.now == 2.5

    def test_zero_delay(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_in(0.0)
        rts.run()
        assert user.timeouts == [0.0]

    def test_negative_delay_rejected(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        with pytest.raises(TimingError):
            user.inform_in(-1.0)

    def test_cancel_before_expiry(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        handle = user.inform_in(1.0)
        handle.cancel()
        rts.run()
        assert user.timeouts == []

    def test_multiple_timers_fire_in_order(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_in(3.0)
        user.inform_in(1.0)
        user.inform_in(2.0)
        rts.run()
        assert user.timeouts == [1.0, 2.0, 3.0]


class TestPeriodic:
    def test_fires_repeatedly(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_every(1.0)
        rts.run(until=5.5)
        assert user.timeouts == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_drift_free_schedule(self, rts):
        """Periods accumulate from expiry, not from dispatch."""
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_every(0.1)
        rts.run(until=1.05)
        expected = [round(0.1 * k, 10) for k in range(1, 11)]
        assert [round(t, 10) for t in user.timeouts] == expected

    def test_non_positive_period_rejected(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        with pytest.raises(TimingError):
            user.inform_every(0.0)

    def test_cancel_periodic(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        handle = user.inform_every(1.0)
        rts.run(until=2.5)
        handle.cancel()
        rts.run(until=10.0)
        assert len(user.timeouts) == 2

    def test_handle_fired_count(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        handle = user.inform_every(1.0)
        rts.run(until=3.5)
        assert handle.fired == 3
        assert handle.periodic


class TestTimerJitter:
    def test_dispatch_cost_delays_timeouts(self):
        """With synthetic CPU cost and queue contention, some timeouts are
        observed late — the paper's 'timing in UML-RT is unpredictable'."""
        rts = RTSystem("loaded")
        rts.dispatch_cost = 0.7
        first = rts.add_top(TimerUser("first"))
        second = rts.add_top(TimerUser("second"))
        rts.start()
        first.inform_every(1.0)
        second.inform_every(1.0)
        rts.run(until=4.0)
        # both expire together; the one dispatched second observes the
        # first one's processing cost as latency
        lags = [
            observed - (k + 1) * 1.0
            for user in (first, second)
            for k, observed in enumerate(user.timeouts)
        ]
        assert all(lag >= -1e-12 for lag in lags)
        assert max(lags) >= 0.7  # contention-induced jitter visible

    def test_zero_cost_is_exact(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        user.inform_every(1.0)
        rts.run(until=4.0)
        assert user.timeouts == [1.0, 2.0, 3.0, 4.0]


class TestCalendar:
    def test_pending_and_prune(self, rts):
        user = rts.add_top(TimerUser())
        rts.start()
        h1 = user.inform_in(1.0)
        user.inform_in(2.0)
        assert rts.timing.pending() == 2
        h1.cancel()
        assert rts.timing.pending() == 1
        assert rts.timing.next_expiry() == 2.0

    def test_empty_calendar(self, rts):
        assert rts.timing.next_expiry() is None
        assert rts.timing.pending() == 0
