"""Dense-output interpolants.

:class:`CubicHermite` interpolates a solution segment from the states
*and derivatives* at both ends — third-order accurate, against the
first-order secant the raw zero-crossing detector falls back to.  The
hybrid scheduler builds one lazily per event-bearing major step, so the
two extra RHS evaluations are only paid when a crossing actually needs
localising.
"""

from __future__ import annotations

import numpy as np


class CubicHermite:
    """Cubic Hermite interpolant over one step ``[t0, t1]``."""

    def __init__(
        self,
        t0: float,
        y0: np.ndarray,
        f0: np.ndarray,
        t1: float,
        y1: np.ndarray,
        f1: np.ndarray,
    ) -> None:
        if t1 <= t0:
            raise ValueError(f"degenerate interval [{t0}, {t1}]")
        self.t0 = float(t0)
        self.t1 = float(t1)
        self._h = self.t1 - self.t0
        self._y0 = np.asarray(y0, dtype=float)
        self._y1 = np.asarray(y1, dtype=float)
        self._f0 = np.asarray(f0, dtype=float)
        self._f1 = np.asarray(f1, dtype=float)

    def __call__(self, t: float) -> np.ndarray:
        """State at ``t`` (clamped into the segment)."""
        t = min(max(t, self.t0), self.t1)
        s = (t - self.t0) / self._h
        s2 = s * s
        s3 = s2 * s
        h00 = 2.0 * s3 - 3.0 * s2 + 1.0
        h10 = s3 - 2.0 * s2 + s
        h01 = -2.0 * s3 + 3.0 * s2
        h11 = s3 - s2
        return (
            h00 * self._y0
            + h10 * self._h * self._f0
            + h01 * self._y1
            + h11 * self._h * self._f1
        )

    def derivative(self, t: float) -> np.ndarray:
        """dy/dt of the interpolant at ``t``."""
        t = min(max(t, self.t0), self.t1)
        s = (t - self.t0) / self._h
        s2 = s * s
        dh00 = (6.0 * s2 - 6.0 * s) / self._h
        dh10 = 3.0 * s2 - 4.0 * s + 1.0
        dh01 = (-6.0 * s2 + 6.0 * s) / self._h
        dh11 = 3.0 * s2 - 2.0 * s
        return (
            dh00 * self._y0
            + dh10 * self._f0
            + dh01 * self._y1
            + dh11 * self._f1
        )
