"""The on-disk native artifact cache: size cap + mtime-LRU sweep.

``$REPRO_NATIVE_CACHE_MAX_MB`` bounds the shared ``.so``/``.c`` spool;
:func:`~repro.core.backend.native.sweep_cache` evicts whole key groups,
oldest-loaded first (loads touch the ``.so`` mtime), never the artifact
just built.
"""

from __future__ import annotations

import os

import pytest

from repro.core.backend.native import (
    build_artifact,
    cache_limit_bytes,
    has_c_compiler,
    sweep_cache,
)

needs_cc = pytest.mark.skipif(
    not has_c_compiler(), reason="no C compiler on this host"
)


def fake_artifact(cache_dir, key: str, size: int, mtime: float) -> None:
    so = cache_dir / f"{key}.so"
    so.write_bytes(b"\x00" * size)
    (cache_dir / f"{key}.c").write_bytes(b"//" + b"x" * size)
    os.utime(so, (mtime, mtime))


class TestCacheLimit:
    def test_unset_means_unbounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_CACHE_MAX_MB", raising=False)
        assert cache_limit_bytes() is None

    def test_parses_megabytes(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX_MB", "2.5")
        assert cache_limit_bytes() == int(2.5 * 1024 * 1024)

    def test_garbage_and_negative_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX_MB", "lots")
        assert cache_limit_bytes() is None
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX_MB", "-1")
        assert cache_limit_bytes() is None


class TestSweep:
    def test_evicts_oldest_groups_until_fit(self, tmp_path):
        for i, mtime in enumerate((100.0, 200.0, 300.0)):
            fake_artifact(tmp_path, f"k{i}", 1000, mtime)
        removed = sweep_cache(tmp_path, limit_bytes=4500)
        # total ~6000; dropping the oldest group (~2000) fits
        assert {p.stem for p in removed} == {"k0"}
        assert not (tmp_path / "k0.so").exists()
        assert (tmp_path / "k1.so").exists()
        assert (tmp_path / "k2.so").exists()

    def test_protected_key_survives(self, tmp_path):
        fake_artifact(tmp_path, "old", 1000, 100.0)
        fake_artifact(tmp_path, "new", 1000, 200.0)
        removed = sweep_cache(tmp_path, limit_bytes=1, protect="old")
        assert {p.stem for p in removed} == {"new"}
        assert (tmp_path / "old.so").exists()

    def test_no_limit_is_a_noop(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_CACHE_MAX_MB", raising=False)
        fake_artifact(tmp_path, "k", 1000, 100.0)
        assert sweep_cache(tmp_path) == []
        assert (tmp_path / "k.so").exists()

    def test_missing_dir_is_a_noop(self, tmp_path):
        assert sweep_cache(tmp_path / "absent", limit_bytes=1) == []

    def test_ignores_foreign_files(self, tmp_path):
        fake_artifact(tmp_path, "k", 1000, 100.0)
        keep = tmp_path / "README.txt"
        keep.write_text("not an artifact")
        sweep_cache(tmp_path, limit_bytes=1)
        assert keep.exists()


@needs_cc
class TestBuildIntegration:
    SOURCE = "double answer(void) { return 42.0; }\n"

    def test_build_sweeps_stale_artifacts(self, tmp_path, monkeypatch):
        fake_artifact(tmp_path, "stale", 512 * 1024, 100.0)
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX_MB", "0.25")
        __, hit = build_artifact(self.SOURCE, "fresh1", tmp_path)
        assert hit is False
        assert not (tmp_path / "stale.so").exists()
        assert (tmp_path / "fresh1.so").exists()

    def test_cache_hit_touches_mtime(self, tmp_path):
        so, hit = build_artifact(self.SOURCE, "touched", tmp_path)
        assert hit is False
        os.utime(so, (100.0, 100.0))
        __, hit = build_artifact(self.SOURCE, "touched", tmp_path)
        assert hit is True
        assert so.stat().st_mtime > 100.0
