"""Plan optimizer: a pass pipeline ahead of every execution backend.

The :class:`~repro.core.plan.ExecutionPlan` IR is shared by the
interpreter, the thread partitions, the vectorised batch backend and the
code generators — so one optimizer that rewrites the plan's node/edge
tables speeds up *all* of them at once.  The pipeline runs four ordered,
individually toggleable passes:

1. **dead-code elimination** — drop blocks whose outputs nothing
   consumes, observes or probes and that have no discrete side channel
   (the transitive closure of the static checker's STR002 facts);
2. **constant folding** — evaluate time-invariant, stateless subgraphs
   fed only by constants once at compile time and replace the boundary
   producers with literal-constant blocks (STR004's fix, applied);
3. **common-subexpression elimination** — merge blocks computing the
   identical op over the identical inputs (relay-duplicated flows make
   these common in paper-style compositions);
4. **gain/sum/affine fusion** — collapse linear single-consumer chains
   into one fused node; at O2 the affine stages are additionally
   re-associated into a single multiply-add.

O-level contract (:class:`OptConfig`):

* **O0** — no passes; the plan is the literal drawn graph.
* **O1** — all four passes, every rewrite bitwise-identity-preserving
  for fixed-step runs: folded values are produced by the original
  blocks' own ``compute_outputs``, fused chains replay each member's
  exact float ops in sequence, and CSE only forwards values that are
  bit-identical by construction.
* **O2** — O1 plus float re-association (fused affine chains collapse
  to one ``a*x + b``); results may differ in the last ulp.

Every rewrite is recorded in an :class:`OptReport` carried on the
optimized plan (``plan.opt_report``) and surfaced through service
telemetry (``opt.blocks_removed``, ``opt.ops_fused``) and the check
CLI's ``--explain`` output.
"""

from repro.core.opt.config import OptConfig, OptReport, resolve_config
from repro.core.opt.optimizer import PlanOptimizer
from repro.core.opt.synth import FoldedBlock, FusedChain, PadCopy, synth_dag

__all__ = [
    "OptConfig",
    "OptReport",
    "PlanOptimizer",
    "FoldedBlock",
    "FusedChain",
    "PadCopy",
    "resolve_config",
    "synth_dag",
]
