"""Ports: wiring rules, relay resolution and send checks."""

import pytest

from repro.umlrt.capsule import Capsule
from repro.umlrt.connector import Connector, ConnectorError
from repro.umlrt.port import Port, PortError, PortKind
from repro.umlrt.protocol import Protocol

PROTO = Protocol.define("P", outgoing=("msg",), incoming=("reply",))


def end_port(name="e"):
    return Port(name, PROTO.base())


def conj_port(name="c"):
    return Port(name, PROTO.conjugate())


def relay_port(name="r", conjugated=False):
    role = PROTO.conjugate() if conjugated else PROTO.base()
    return Port(name, role, kind=PortKind.RELAY)


class TestLinking:
    def test_link_and_unlink(self):
        a, b = end_port("a"), conj_port("b")
        a.link(b)
        assert a.wired and b.wired
        a.unlink(b)
        assert not a.wired and not b.wired

    def test_self_link_rejected(self):
        a = end_port()
        with pytest.raises(PortError):
            a.link(a)

    def test_double_link_rejected(self):
        a, b = end_port("a"), conj_port("b")
        a.link(b)
        with pytest.raises(PortError):
            a.link(b)

    def test_end_port_single_link(self):
        a = end_port("a")
        a.link(conj_port("b"))
        with pytest.raises(PortError):
            a.link(conj_port("c"))

    def test_relay_port_two_links(self):
        relay = relay_port()
        relay.link(conj_port("x"))
        relay.link(conj_port("y"))
        with pytest.raises(PortError):
            relay.link(conj_port("z"))

    def test_unlink_not_linked(self):
        a, b = end_port("a"), conj_port("b")
        with pytest.raises(PortError):
            a.unlink(b)


class TestRelayResolution:
    def test_direct_endpoint(self):
        a, b = end_port("a"), conj_port("b")
        a.link(b)
        assert a.resolve_endpoints() == [b]

    def test_through_one_relay(self):
        a = end_port("a")
        relay = relay_port("r", conjugated=True)
        b = conj_port("b")
        a.link(relay)
        relay.link(b)
        assert a.resolve_endpoints() == [b]

    def test_through_relay_chain(self):
        a = end_port("a")
        relays = [relay_port(f"r{i}") for i in range(4)]
        b = conj_port("b")
        a.link(relays[0])
        for r1, r2 in zip(relays, relays[1:]):
            r1.link(r2)
        relays[-1].link(b)
        assert a.resolve_endpoints() == [b]

    def test_unwired_has_no_endpoints(self):
        assert end_port().resolve_endpoints() == []

    def test_dangling_relay_has_no_endpoints(self):
        a = end_port("a")
        relay = relay_port("r")
        a.link(relay)
        assert a.resolve_endpoints() == []


class TestConnector:
    def test_compatible_roles_connect(self):
        connector = Connector(end_port("a"), conj_port("b"))
        assert connector.connected

    def test_incompatible_roles_rejected(self):
        with pytest.raises(ConnectorError):
            Connector(end_port("a"), end_port("b"))

    def test_disconnect(self):
        a, b = end_port("a"), conj_port("b")
        connector = Connector(a, b)
        connector.disconnect()
        assert not a.wired
        with pytest.raises(ConnectorError):
            connector.disconnect()

    def test_involves(self):
        a, b = end_port("a"), conj_port("b")
        connector = Connector(a, b)
        assert connector.involves(a) and connector.involves(b)
        assert not connector.involves(end_port("other"))


class TestSendChecks:
    def test_unknown_signal_rejected(self):
        port = end_port()
        with pytest.raises(PortError, match="cannot send"):
            port.send("not_in_protocol")

    def test_unattached_send_rejected(self):
        port = end_port()
        with pytest.raises(PortError, match="not attached"):
            port.send("msg")

    def test_qualified_name_without_owner(self):
        assert "<unowned>" in end_port().qualified_name
