"""Minimal UML metamodel elements.

Just enough UML to state Figure 1 precisely and serialise models: packages
of classifiers with attributes and operations, binary associations with
role names and multiplicities, and generalisations.  Stereotype
application lives in :mod:`repro.metamodel.profile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MetamodelError(Exception):
    """Raised for ill-formed metamodel structures."""


@dataclass(frozen=True)
class Multiplicity:
    """A UML multiplicity: lower bound and (possibly unbounded) upper."""

    lower: int = 1
    upper: Optional[int] = 1  # None = *

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise MetamodelError(f"negative lower bound {self.lower}")
        if self.upper is not None and self.upper < self.lower:
            raise MetamodelError(
                f"upper bound {self.upper} < lower bound {self.lower}"
            )

    @staticmethod
    def parse(text: str) -> "Multiplicity":
        """Parse "1", "*", "0..1", "1..*" style strings."""
        text = text.strip()
        if text == "*":
            return Multiplicity(0, None)
        if ".." in text:
            lo, hi = text.split("..", 1)
            return Multiplicity(
                int(lo), None if hi.strip() == "*" else int(hi)
            )
        value = int(text)
        return Multiplicity(value, value)

    def __str__(self) -> str:
        if self.upper is None:
            return "*" if self.lower == 0 else f"{self.lower}..*"
        if self.lower == self.upper:
            return str(self.lower)
        return f"{self.lower}..{self.upper}"


@dataclass
class Attribute:
    """A class attribute, e.g. ``-state: State [*]``."""

    name: str
    type_name: str = ""
    visibility: str = "-"
    multiplicity: Multiplicity = field(default_factory=Multiplicity)

    def render(self) -> str:
        type_part = f": {self.type_name}" if self.type_name else ""
        mult = (
            f" [{self.multiplicity}]"
            if str(self.multiplicity) != "1"
            else ""
        )
        return f"{self.visibility}{self.name}{type_part}{mult}"


@dataclass
class Operation:
    """A class operation, e.g. ``+AlgorithmInterface()``."""

    name: str
    visibility: str = "+"
    parameters: Tuple[str, ...] = ()
    return_type: str = ""
    abstract: bool = False

    def render(self) -> str:
        params = ", ".join(self.parameters)
        ret = f": {self.return_type}" if self.return_type else ""
        return f"{self.visibility}{self.name}({params}){ret}"


class Classifier:
    """A UML class (or interface) with stereotypes."""

    def __init__(
        self,
        name: str,
        abstract: bool = False,
        stereotypes: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.abstract = abstract
        self.stereotypes: List[str] = list(stereotypes)
        self.attributes: List[Attribute] = []
        self.operations: List[Operation] = []
        self.tagged_values: Dict[str, str] = {}

    def add_attribute(self, attribute: Attribute) -> "Classifier":
        self.attributes.append(attribute)
        return self

    def add_operation(self, operation: Operation) -> "Classifier":
        self.operations.append(operation)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Classifier({self.name!r})"


@dataclass
class AssociationEnd:
    """One end of a binary association."""

    classifier: str
    role: str = ""
    multiplicity: Multiplicity = field(default_factory=Multiplicity)
    navigable: bool = True
    aggregation: str = "none"  # none | shared | composite


class Association:
    """A binary association between two classifiers (by name)."""

    def __init__(
        self,
        name: str,
        end1: AssociationEnd,
        end2: AssociationEnd,
    ) -> None:
        self.name = name
        self.end1 = end1
        self.end2 = end2

    def involves(self, classifier_name: str) -> bool:
        return classifier_name in (
            self.end1.classifier, self.end2.classifier
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Association({self.end1.classifier}[{self.end1.multiplicity}]"
            f" -- {self.end2.classifier}[{self.end2.multiplicity}])"
        )


@dataclass(frozen=True)
class Generalization:
    """``child`` specialises ``parent``."""

    child: str
    parent: str


class Package:
    """A namespace of classifiers, associations and generalisations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.classifiers: Dict[str, Classifier] = {}
        self.associations: List[Association] = []
        self.generalizations: List[Generalization] = []

    def add_class(self, classifier: Classifier) -> Classifier:
        if classifier.name in self.classifiers:
            raise MetamodelError(
                f"duplicate classifier {classifier.name!r} in package "
                f"{self.name!r}"
            )
        self.classifiers[classifier.name] = classifier
        return classifier

    def classifier(self, name: str) -> Classifier:
        try:
            return self.classifiers[name]
        except KeyError:
            raise MetamodelError(
                f"package {self.name!r} has no classifier {name!r}"
            ) from None

    def add_association(self, association: Association) -> Association:
        for end in (association.end1, association.end2):
            if end.classifier not in self.classifiers:
                raise MetamodelError(
                    f"association references unknown classifier "
                    f"{end.classifier!r}"
                )
        self.associations.append(association)
        return association

    def add_generalization(self, child: str, parent: str) -> Generalization:
        for name in (child, parent):
            if name not in self.classifiers:
                raise MetamodelError(
                    f"generalization references unknown classifier {name!r}"
                )
        gen = Generalization(child, parent)
        self.generalizations.append(gen)
        return gen

    def children_of(self, parent: str) -> List[str]:
        return sorted(
            g.child for g in self.generalizations if g.parent == parent
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Package({self.name!r}, classes={len(self.classifiers)}, "
            f"assocs={len(self.associations)})"
        )
