"""ScenarioSpec: seed purity, serialisation, build dispatch."""

import random

import pytest

from repro.scenarios.defects import DEFECTS
from repro.scenarios.spec import (
    DEMOTING_SOLVERS,
    FAMILIES,
    KERNEL_SOLVERS,
    ScenarioSpec,
)

FAMILY_NAMES = {name for name, __ in FAMILIES}


class TestFromSeed:
    def test_pure_function_of_seed(self):
        for seed in (0, 1, 17, 2**30, 1444356386):
            a = ScenarioSpec.from_seed(seed)
            b = ScenarioSpec.from_seed(seed)
            assert a == b
            assert a.family in FAMILY_NAMES

    def test_global_random_state_is_untouched(self):
        random.seed(99)
        before = random.getstate()
        ScenarioSpec.from_seed(123)
        assert random.getstate() == before

    def test_all_families_reachable(self):
        families = {
            ScenarioSpec.from_seed(seed).family for seed in range(400)
        }
        assert families == FAMILY_NAMES

    def test_solver_params_stay_in_their_lane(self):
        for seed in range(300):
            spec = ScenarioSpec.from_seed(seed)
            solver = spec.params.get("solver")
            if spec.family == "solver":
                assert solver in DEMOTING_SOLVERS
            elif solver is not None:
                assert solver in KERNEL_SOLVERS

    def test_batch_family_is_continuous_only(self):
        # no bitwise batch-vs-sequential claim exists for sampled
        # blocks, so the batch family must never draw them
        for seed in range(500):
            spec = ScenarioSpec.from_seed(seed)
            if spec.family == "batch":
                assert "sampled" not in spec.params
                subs = spec.build().subs.values()
                names = {type(sub).__name__ for sub in subs}
                assert not names & {"UnitDelay", "ZeroOrderHold"}

    def test_defect_params_name_registered_defects(self):
        seen = set()
        for seed in range(600):
            spec = ScenarioSpec.from_seed(seed)
            if spec.family == "defect":
                assert spec.params["defect"] in DEFECTS
                seen.add(spec.params["defect"])
        assert len(seen) > 10  # the stream spreads over the registry


class TestSerialisation:
    def test_json_round_trip(self):
        for seed in (0, 5, 1444356386):
            spec = ScenarioSpec.from_seed(seed)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_from_mapping(self):
        spec = ScenarioSpec.from_mapping(
            {"seed": 7, "family": "dag", "params": {"blocks": 9}}
        )
        assert spec.seed == 7
        assert spec.family == "dag"
        assert spec.params == {"blocks": 9}


class TestBuildAndTargets:
    def test_every_family_builds(self):
        built = set()
        for seed in range(200):
            spec = ScenarioSpec.from_seed(seed)
            if spec.family in built:
                continue
            spec.build()
            built.add(spec.family)
        assert built == FAMILY_NAMES

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            ScenarioSpec(seed=0, family="nope").build()

    def test_defect_targets_predict_expected_codes(self):
        name = sorted(DEFECTS)[0]
        spec = ScenarioSpec(
            seed=0, family="defect", params={"defect": name}
        )
        assert spec.targets()["rules"] == DEFECTS[name].expected

    def test_diagram_targets_predict_opcodes(self):
        spec = ScenarioSpec.from_seed(2)
        while spec.family not in ("dag", "dag_sampled", "plant"):
            spec = ScenarioSpec.from_seed(spec.seed + 1)
        opcodes = spec.targets()["opcodes"]
        built_types = {
            type(sub).__name__ for sub in spec.build().subs.values()
        }
        assert built_types <= opcodes
