"""Analysis utilities: control metrics, message traces, schedulability.

* :mod:`repro.analysis.metrics` — step-response and trajectory-comparison
  metrics used throughout EXPERIMENTS.md;
* :mod:`repro.analysis.trace` — message-dispatch traces of the discrete
  world (who received what, when, with what latency from send);
* :mod:`repro.analysis.schedulability` — fixed-priority real-time
  analysis (Liu–Layland bound, exact RTA with blocking/jitter/
  self-suspension, first-fit partitioning, sensitivity searches)
  applied to the thread sets the paper's architecture produces;
* :mod:`repro.analysis.schedvalidate` — the empirical harness that
  traces a live :class:`~repro.core.hybrid.HybridScheduler` run and
  checks the static response-time bound dominates what was observed.
"""

from repro.analysis.metrics import (
    StepMetrics,
    compare_trajectories,
    iae,
    ise,
    itae,
    percentiles,
    step_metrics,
)
from repro.analysis.coverage import (
    CoverageReport,
    coverage_of,
    render_coverage,
)
from repro.analysis.experiments import (
    SweepRun,
    best_run,
    grid_points,
    render_sweep,
    sweep,
)
from repro.analysis.trace import DispatchRecord, MessageTrace
from repro.analysis.schedulability import (
    CriticalSection,
    PartitionResult,
    RTAResult,
    SensitivityResult,
    Task,
    TaskResponse,
    TaskSet,
    UtilisationResult,
    first_fit_partition,
    liu_layland_bound,
    min_feasible_sync_interval,
    response_time_analysis,
    sched_report,
    sensitivity,
    shared_state_facts,
    taskset_from_model,
    utilisation_test,
)
from repro.analysis.schedvalidate import (
    ValidationReport,
    validate_schedulability,
)

__all__ = [
    "CoverageReport",
    "CriticalSection",
    "DispatchRecord",
    "MessageTrace",
    "PartitionResult",
    "RTAResult",
    "SensitivityResult",
    "TaskResponse",
    "UtilisationResult",
    "ValidationReport",
    "first_fit_partition",
    "min_feasible_sync_interval",
    "sched_report",
    "sensitivity",
    "shared_state_facts",
    "utilisation_test",
    "validate_schedulability",
    "coverage_of",
    "render_coverage",
    "StepMetrics",
    "SweepRun",
    "Task",
    "TaskSet",
    "best_run",
    "grid_points",
    "render_sweep",
    "sweep",
    "compare_trajectories",
    "iae",
    "ise",
    "itae",
    "liu_layland_bound",
    "percentiles",
    "response_time_analysis",
    "step_metrics",
    "taskset_from_model",
]
