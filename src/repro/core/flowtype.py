"""Flow types: the ``protocol`` analogue for dataflow (Table 1).

A flow type describes the record carried by a dataflow connection: a set
of named, kinded (and optionally unit-annotated) fields.  The paper's
connection rule (W1) reads:

    "To connect two DPorts, the output DPort's flow type must be a
    **subset** of the input DPort's flow type."

i.e. the receiver declares the largest record it understands and any
producer of a sub-record may drive it.  :meth:`FlowType.subset_of`
implements exactly that check (field names, kinds and units all match).

Scalar flows — the overwhelmingly common case in control diagrams — are
record flows with the single field ``"value"``; :meth:`FlowType.scalar`
builds them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union


class FlowTypeError(Exception):
    """Raised for ill-formed flow types or values that don't conform."""


class DataKind(enum.Enum):
    """Primitive kind of one flow field."""

    FLOAT = "float"
    INT = "int"
    BOOL = "bool"

    def validate(self, value: object) -> bool:
        if self is DataKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        if self is DataKind.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, bool)


@dataclass(frozen=True)
class FlowField:
    """One field of a flow record."""

    name: str
    kind: DataKind = DataKind.FLOAT
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise FlowTypeError(f"invalid field name {self.name!r}")


class FlowType:
    """An immutable record type for dataflow connections."""

    def __init__(self, name: str, fields: Iterable[FlowField]) -> None:
        self.name = name
        field_list = list(fields)
        names = [f.name for f in field_list]
        if len(set(names)) != len(names):
            raise FlowTypeError(f"duplicate fields in flow type {name!r}")
        if not field_list:
            raise FlowTypeError(f"flow type {name!r} has no fields")
        self._fields: Dict[str, FlowField] = {f.name: f for f in field_list}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def scalar(name: str = "signal", unit: str = "") -> "FlowType":
        """A single-field FLOAT flow type (the common control signal)."""
        return FlowType(name, [FlowField("value", DataKind.FLOAT, unit)])

    @staticmethod
    def record(
        name: str,
        fields: Mapping[str, Union[DataKind, Tuple[DataKind, str]]],
    ) -> "FlowType":
        """Build from a mapping ``{"field": kind}`` or ``{"field": (kind, unit)}``."""
        built = []
        for field_name, spec in fields.items():
            if isinstance(spec, tuple):
                kind, unit = spec
            else:
                kind, unit = spec, ""
            built.append(FlowField(field_name, kind, unit))
        return FlowType(name, built)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def fields(self) -> Tuple[FlowField, ...]:
        return tuple(self._fields.values())

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(self._fields)

    @property
    def is_scalar(self) -> bool:
        return len(self._fields) == 1 and "value" in self._fields

    def field(self, name: str) -> FlowField:
        try:
            return self._fields[name]
        except KeyError:
            raise FlowTypeError(
                f"flow type {self.name!r} has no field {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # the paper's W1 rule
    # ------------------------------------------------------------------
    def subset_of(self, other: "FlowType") -> bool:
        """True if every field of self exists in ``other`` with the same
        kind and unit — the DPort connection rule (W1)."""
        for name, mine in self._fields.items():
            theirs = other._fields.get(name)
            if theirs is None:
                return False
            if mine.kind is not theirs.kind or mine.unit != theirs.unit:
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowType):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(frozenset(self._fields.items()))

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def default_value(self) -> Dict[str, object]:
        """A zero-initialised record conforming to this type."""
        zeros = {DataKind.FLOAT: 0.0, DataKind.INT: 0, DataKind.BOOL: False}
        return {f.name: zeros[f.kind] for f in self.fields}

    def validate_value(self, value: Mapping[str, object]) -> None:
        """Raise unless ``value`` is a conforming record."""
        for field_obj in self.fields:
            if field_obj.name not in value:
                raise FlowTypeError(
                    f"value missing field {field_obj.name!r} of flow type "
                    f"{self.name!r}"
                )
            if not field_obj.kind.validate(value[field_obj.name]):
                raise FlowTypeError(
                    f"field {field_obj.name!r} of {self.name!r} expects "
                    f"{field_obj.kind.value}, got "
                    f"{type(value[field_obj.name]).__name__}"
                )

    def project(self, value: Mapping[str, object]) -> Dict[str, object]:
        """Restrict a (super-)record to this type's fields."""
        try:
            return {f.name: value[f.name] for f in self.fields}
        except KeyError as exc:
            raise FlowTypeError(
                f"cannot project value onto {self.name!r}: missing {exc}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{f.name}:{f.kind.value}" + (f"[{f.unit}]" if f.unit else "")
            for f in self.fields
        )
        return f"FlowType({self.name!r}, {{{inner}}})"


#: The default scalar flow type shared by the dataflow block library.
SCALAR = FlowType.scalar("signal")
