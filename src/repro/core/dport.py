"""DPorts: typed dataflow ports (circle notation in the paper).

A DPort carries a continuously updated record value of some
:class:`~repro.core.flowtype.FlowType`.  DPorts live on streamers — and,
per the paper's capsule extension, on capsules, where they are **relay
only**: a capsule DPort forwards a flow across the capsule boundary but
the capsule never reads or writes the data (rule W5).

Directionality:

* ``OUT`` ports are written by their owner's solver each minor step;
* ``IN`` ports are read by the owner; their value is pulled from the
  driving ``OUT`` port through the flow network at evaluation time.

For composite streamers a *boundary* DPort appears with its declared
direction on the outside and the opposite role on the inside (an IN
boundary port drives inner flows; an OUT boundary port is driven by an
inner flow), exactly like UML-RT relay ports but for data.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.core.flowtype import FlowType, FlowTypeError


class DPortError(Exception):
    """Raised on illegal DPort usage."""


class Direction(enum.Enum):
    IN = "in"
    OUT = "out"


class DPort:
    """A typed dataflow port.

    Parameters
    ----------
    name:
        Port name, unique among the owner's DPorts.
    direction:
        :attr:`Direction.IN` or :attr:`Direction.OUT` as seen from outside
        the owner.
    flow_type:
        The record type carried (W3 requires one).
    owner:
        Owning streamer, relay, or capsule adapter.
    relay_only:
        True for capsule DPorts (W5) and composite-boundary ports: the
        owner must not process the data.
    """

    def __init__(
        self,
        name: str,
        direction: Direction,
        flow_type: FlowType,
        owner: Optional[Any] = None,
        relay_only: bool = False,
    ) -> None:
        if flow_type is None:
            raise DPortError(f"DPort {name!r} needs a flow type (rule W3)")
        self.name = name
        self.direction = direction
        self.flow_type = flow_type
        self.owner = owner
        self.relay_only = relay_only
        #: fast path: scalar flows store a bare float, no dict churn
        self._is_scalar = flow_type.is_scalar
        self._scalar_value = 0.0
        self._value: Dict[str, object] = flow_type.default_value()
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    @property
    def qualified_name(self) -> str:
        owner = getattr(self.owner, "name", None) or getattr(
            self.owner, "instance_name", "<unowned>"
        )
        return f"{owner}.{self.name}"

    @property
    def is_in(self) -> bool:
        return self.direction is Direction.IN

    @property
    def is_out(self) -> bool:
        return self.direction is Direction.OUT

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def write(self, value: Any) -> None:
        """Write a record (or bare float, for scalar flow types)."""
        if self.relay_only:
            raise DPortError(
                f"DPort {self.qualified_name} is relay-only (rule W5); "
                "it cannot be written by its owner"
            )
        self._store(value)

    def _store(self, value: Any) -> None:
        """Internal write used by the flow engine (bypasses the W5 guard)."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if not self._is_scalar:
                raise FlowTypeError(
                    f"DPort {self.qualified_name} carries record flow type "
                    f"{self.flow_type.name!r}; write a mapping"
                )
            self._scalar_value = float(value)
        else:
            self.flow_type.validate_value(value)
            if self._is_scalar:
                self._scalar_value = float(value["value"])
            else:
                self._value = dict(value)
        self.writes += 1

    def _store_scalar(self, value: float) -> None:
        """Hot-path write for the flow engine: scalar ports only."""
        self._scalar_value = value
        self.writes += 1

    def read(self) -> Dict[str, object]:
        """The current record value."""
        self.reads += 1
        if self._is_scalar:
            return {"value": self._scalar_value}
        return dict(self._value)

    def read_scalar(self) -> float:
        """The ``value`` field (scalar flows), as float."""
        self.reads += 1
        if self._is_scalar:
            return self._scalar_value
        try:
            return float(self._value["value"])  # type: ignore[arg-type]
        except KeyError:
            raise DPortError(
                f"DPort {self.qualified_name} has no 'value' field; "
                "use read() for record flows"
            ) from None

    def peek(self) -> Dict[str, object]:
        """Read without counting (for diagnostics)."""
        if self._is_scalar:
            return {"value": self._scalar_value}
        return dict(self._value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        relay = ", relay" if self.relay_only else ""
        return (
            f"DPort({self.qualified_name}, {self.direction.value}, "
            f"{self.flow_type.name}{relay})"
        )
