"""Fixed-step solvers: exactness classes and convergence order."""

import math

import numpy as np
import pytest

from repro.solvers import Euler, Heun, RK4, SolverError, integrate


def decay(lam=1.0):
    return lambda t, y: -lam * y


def test_euler_linear_exact():
    """Euler integrates y' = c exactly."""
    result = integrate(lambda t, y: np.array([3.0]), [0.0], 0.0, 2.0,
                       Euler(), h=0.1)
    assert result.y_final[0] == pytest.approx(6.0, abs=1e-12)


def test_heun_quadratic_exact():
    """Heun (order 2) integrates y' = t exactly."""
    result = integrate(lambda t, y: np.array([t]), [0.0], 0.0, 2.0,
                       Heun(), h=0.1)
    assert result.y_final[0] == pytest.approx(2.0, abs=1e-12)


def test_rk4_quartic_exact():
    """RK4 (order 4) integrates y' = t^3 exactly."""
    result = integrate(lambda t, y: np.array([t ** 3]), [0.0], 0.0, 2.0,
                       RK4(), h=0.1)
    assert result.y_final[0] == pytest.approx(4.0, rel=1e-12)


@pytest.mark.parametrize("solver_cls,order", [
    (Euler, 1), (Heun, 2), (RK4, 4),
])
def test_convergence_order(solver_cls, order):
    """Halving h must reduce the error by ~2^order on exp decay."""
    errors = []
    for h in (0.1, 0.05):
        result = integrate(decay(), [1.0], 0.0, 1.0, solver_cls(), h=h)
        errors.append(abs(result.y_final[0] - math.exp(-1.0)))
    ratio = errors[0] / errors[1]
    assert 2 ** order * 0.7 < ratio < 2 ** order * 1.4


def test_final_step_lands_exactly_on_t1():
    result = integrate(decay(), [1.0], 0.0, 1.0, RK4(), h=0.3)
    assert result.t_final == pytest.approx(1.0, abs=1e-12)


def test_vector_state():
    """Harmonic oscillator keeps energy approximately with RK4."""
    def osc(t, y):
        return np.array([y[1], -y[0]])

    result = integrate(osc, [1.0, 0.0], 0.0, 2 * math.pi, RK4(), h=0.01)
    assert result.y_final[0] == pytest.approx(1.0, abs=1e-6)
    assert result.y_final[1] == pytest.approx(0.0, abs=1e-6)


def test_divergence_detected():
    solver = Euler()
    with np.errstate(over="ignore"), pytest.raises(
        SolverError, match="non-finite"
    ):
        # gain 1e10 per unit step overflows double within ~31 steps
        integrate(lambda t, y: y * 1e10, [1.0], 0.0, 40.0, solver, h=1.0)


def test_non_positive_step_rejected():
    with pytest.raises(SolverError):
        Euler().step(decay(), 0.0, np.array([1.0]), 0.0)


def test_solver_orders_declared():
    assert Euler.order == 1
    assert Heun.order == 2
    assert RK4.order == 4
    assert not Euler().adaptive and not Euler().implicit
