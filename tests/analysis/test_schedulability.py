"""Unit tests for the static schedulability engine.

Everything here is pure task-set mathematics (no model execution):
epsilon-guarded ceilings, exact RTA against hand-computed fixed points,
priority-ceiling blocking, jitter/self-suspension terms, partitioned
analysis, first-fit packing, sensitivity bisection and the model-derived
task-set mappings.  Hypothesis properties pin the two invariants the
paper's analysis story rests on: RTA is monotone in WCET, and exact RTA
never rejects a set the Liu–Layland sufficient test accepts.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.schedulability import (
    CEIL_EPS,
    CriticalSection,
    RTAResult,
    SchedulabilityError,
    SensitivityResult,
    Task,
    TaskSet,
    UtilisationResult,
    _ceil_eps,
    blocking_terms,
    first_fit_partition,
    liu_layland_bound,
    min_feasible_sync_interval,
    response_time_analysis,
    sched_report,
    sensitivity,
    taskset_from_model,
    taskset_schedulable,
    utilisation_test,
)
from repro.core.model import HybridModel

from tests.conftest import ConstLeaf, GainLeaf


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def two_rate_model(fast_h=2e-5, slow_h=1e-3, share=True) -> HybridModel:
    """Two threads at different minor steps; optionally sharing a params
    dict across them (the SCHED002/SCHED003 priority-inversion setup)."""
    model = HybridModel("two-rate")
    fast = model.create_thread("fast", h=fast_h)
    slow = model.create_thread("slow", h=slow_h)
    src = model.add_streamer(ConstLeaf("src"), thread=fast)
    a = model.add_streamer(GainLeaf("a"), thread=slow)
    b = model.add_streamer(GainLeaf("b"), thread=slow)
    model.add_flow(src.dport("y"), a.dport("u"))
    model.add_flow(a.dport("y"), b.dport("u"))
    if share:
        shared = a.params
        b.params = shared
        src.params = shared
    return model


# ----------------------------------------------------------------------
# ceilings and bounds
# ----------------------------------------------------------------------
class TestCeilEps:
    def test_exact_integer(self):
        assert _ceil_eps(3.0) == 3

    def test_fp_overshoot_regression(self):
        # 0.3 / 0.1 in floats is 2.9999999999999996's cousin — a ratio
        # landing just above an integer must not buy an extra preemption
        assert _ceil_eps(3.0000000000000004) == 3
        assert _ceil_eps(0.30000000000000004 / 0.1) == 3

    def test_genuine_fraction_still_ceils(self):
        assert _ceil_eps(2.5) == 3
        assert _ceil_eps(3.0 + 1e-6) == 4

    def test_non_negative(self):
        assert _ceil_eps(0.0) == 0
        assert _ceil_eps(-2.5) == 0

    def test_relative_guard_scales(self):
        # at ratio 1e6 the absolute guard is eps * 1e6 = 1e-3, so an
        # overshoot of 1e-4 is still forgiven
        assert _ceil_eps(1e6 + 1e-4) == 1_000_000


class TestLiuLayland:
    def test_single_task_bound_is_one(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)

    def test_two_tasks(self):
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))

    def test_limit_is_ln2(self):
        assert liu_layland_bound(10_000) == pytest.approx(
            math.log(2), rel=1e-4
        )

    def test_rejects_empty(self):
        with pytest.raises(SchedulabilityError):
            liu_layland_bound(0)


# ----------------------------------------------------------------------
# task validation
# ----------------------------------------------------------------------
class TestTaskValidation:
    def test_non_positive_wcet(self):
        with pytest.raises(SchedulabilityError, match="non-positive WCET"):
            Task("t", wcet=0.0, period=1.0)

    def test_non_positive_period(self):
        with pytest.raises(SchedulabilityError, match="period"):
            Task("t", wcet=0.1, period=0.0)

    def test_negative_jitter(self):
        with pytest.raises(SchedulabilityError, match="jitter"):
            Task("t", wcet=0.1, period=1.0, jitter=-0.1)

    def test_negative_self_suspension(self):
        with pytest.raises(SchedulabilityError, match="self-suspension"):
            Task("t", wcet=0.1, period=1.0, self_suspension=-1.0)

    def test_deadline_below_wcet(self):
        with pytest.raises(SchedulabilityError, match="deadline"):
            Task("t", wcet=0.5, period=1.0, deadline=0.4)

    def test_negative_critical_section(self):
        with pytest.raises(SchedulabilityError, match="negative"):
            CriticalSection("r", -1.0)

    def test_implicit_deadline_is_period(self):
        assert Task("t", wcet=0.1, period=2.0).effective_deadline == 2.0

    def test_as_dict_shape(self):
        task = Task(
            "t", wcet=0.1, period=1.0, deadline=0.8,
            critical_sections=(CriticalSection("r", 0.05),),
        )
        payload = task.as_dict()
        assert payload["deadline"] == 0.8
        assert payload["critical_sections"] == [
            {"resource": "r", "duration": 0.05}
        ]


class TestPriorityOrder:
    def test_deadline_monotonic_default(self):
        ts = TaskSet([
            Task("late", wcet=0.1, period=10.0, deadline=5.0),
            Task("soon", wcet=0.1, period=10.0, deadline=2.0),
        ])
        assert [t.name for t in ts.deadline_monotonic_order()] == [
            "soon", "late",
        ]

    def test_explicit_priority_wins(self):
        ts = TaskSet([
            Task("urgent", wcet=0.1, period=10.0, priority=0),
            Task("fast", wcet=0.1, period=1.0),
        ])
        assert [t.name for t in ts.deadline_monotonic_order()] == [
            "urgent", "fast",
        ]

    def test_rate_monotonic_order(self):
        ts = TaskSet([
            Task("slow", wcet=0.1, period=10.0),
            Task("fast", wcet=0.1, period=1.0),
        ])
        assert [t.name for t in ts.rate_monotonic_order()] == [
            "fast", "slow",
        ]

    def test_unknown_policy_rejected(self):
        ts = TaskSet([Task("t", wcet=0.1, period=1.0)])
        with pytest.raises(SchedulabilityError, match="policy"):
            response_time_analysis(ts, policy="edf")


# ----------------------------------------------------------------------
# exact RTA
# ----------------------------------------------------------------------
class TestResponseTimeAnalysis:
    def textbook(self) -> TaskSet:
        # classic three-task example: R = (1, 3, 10) by hand iteration
        return TaskSet([
            Task("a", wcet=1.0, period=4.0),
            Task("b", wcet=2.0, period=6.0),
            Task("c", wcet=3.0, period=12.0),
        ])

    def test_textbook_fixed_points(self):
        result = response_time_analysis(self.textbook())
        assert result["a"].response_time == pytest.approx(1.0)
        assert result["b"].response_time == pytest.approx(3.0)
        assert result["c"].response_time == pytest.approx(10.0)
        assert result.schedulable
        assert all(r.converged for r in result)

    def test_interference_breakdown(self):
        result = response_time_analysis(self.textbook())
        interference = result["c"].interference
        # at R=10: ceil(10/4)*1 = 3 from a, ceil(10/6)*2 = 4 from b
        assert interference["a"] == pytest.approx(3.0)
        assert interference["b"] == pytest.approx(4.0)

    def test_deadline_miss_detected(self):
        ts = TaskSet([
            Task("a", wcet=2.0, period=4.0),
            Task("b", wcet=3.0, period=6.0, deadline=6.0),
        ])
        result = response_time_analysis(ts)
        # b: R = 3 + ceil(R/4)*2 -> 5 -> 7 > 6: settled early
        assert not result["b"].schedulable
        assert result["b"].converged
        assert result.failing and result.failing[0].name == "b"
        assert not taskset_schedulable(ts)

    def test_jitter_charges_interference_and_deadline(self):
        base = TaskSet([
            Task("hi", wcet=1.0, period=4.0, deadline=3.0),
            Task("lo", wcet=2.9, period=8.0, deadline=3.9),
        ])
        assert response_time_analysis(base).schedulable
        jittered = TaskSet([
            Task("hi", wcet=1.0, period=4.0, deadline=3.0),
            Task("lo", wcet=2.9, period=8.0, deadline=3.9, jitter=0.2),
        ])
        # R is unchanged but R + J now exceeds the deadline
        result = response_time_analysis(jittered)
        assert result["lo"].response_time == pytest.approx(3.9)
        assert not result["lo"].schedulable

    def test_self_suspension_inflates_response(self):
        ts = TaskSet([
            Task("t", wcet=1.0, period=10.0, self_suspension=0.5),
        ])
        result = response_time_analysis(ts)
        assert result["t"].response_time == pytest.approx(1.5)
        assert result["t"].self_suspension == 0.5

    def test_non_convergence_reported(self):
        ts = TaskSet([
            Task("hi", wcet=1.0, period=2.0),
            Task("lo", wcet=10.0, period=100.0),
        ])
        starved = response_time_analysis(ts, max_iterations=2)
        assert not starved["lo"].converged
        assert not starved["lo"].schedulable
        assert not starved.schedulable
        # with enough iterations the same set converges to R = 20
        full = response_time_analysis(ts)
        assert full["lo"].converged
        assert full["lo"].response_time == pytest.approx(20.0)

    def test_partitions_do_not_interfere(self):
        heavy = dict(wcet=3.0, period=4.0)
        together = TaskSet([
            Task("a", **heavy), Task("b", **heavy),
        ])
        assert not response_time_analysis(together).schedulable
        apart = TaskSet([
            Task("a", partition="cpu0", **heavy),
            Task("b", partition="cpu1", **heavy),
        ])
        result = response_time_analysis(apart)
        assert result.schedulable
        assert result["a"].response_time == pytest.approx(3.0)
        assert result["b"].response_time == pytest.approx(3.0)

    def test_as_dict_is_json_shaped(self):
        payload = response_time_analysis(self.textbook()).as_dict()
        assert set(payload) == {"a", "b", "c"}
        assert payload["a"]["schedulable"] is True
        assert isinstance(payload["c"]["interference"], dict)


class TestBlocking:
    def three_with_sections(self) -> TaskSet:
        # low holds a resource the high task also locks: ceiling is
        # high's priority, so high and mid can both be blocked by low
        return TaskSet([
            Task("high", wcet=1.0, period=4.0,
                 critical_sections=(CriticalSection("lock", 0.3),)),
            Task("mid", wcet=1.0, period=6.0),
            Task("low", wcet=1.0, period=12.0,
                 critical_sections=(CriticalSection("lock", 1.5),)),
        ])

    def test_blocking_terms(self):
        ordered = self.three_with_sections().deadline_monotonic_order()
        terms = blocking_terms(ordered)
        assert terms == {"high": 1.5, "mid": 1.5, "low": 0.0}

    def test_low_ceiling_does_not_block_high(self):
        # resource used only by the two lowest tasks: its ceiling sits
        # below the top task, which therefore cannot be blocked by it
        ts = TaskSet([
            Task("high", wcet=1.0, period=4.0),
            Task("mid", wcet=1.0, period=6.0,
                 critical_sections=(CriticalSection("r", 0.2),)),
            Task("low", wcet=1.0, period=12.0,
                 critical_sections=(CriticalSection("r", 0.9),)),
        ])
        terms = blocking_terms(ts.deadline_monotonic_order())
        assert terms == {"high": 0.0, "mid": 0.9, "low": 0.0}

    def test_blocking_breaks_tight_deadline(self):
        ts = TaskSet([
            Task("high", wcet=1.0, period=4.0, deadline=2.0,
                 critical_sections=(CriticalSection("lock", 0.1),)),
            Task("low", wcet=1.0, period=12.0,
                 critical_sections=(CriticalSection("lock", 1.5),)),
        ])
        assert response_time_analysis(
            ts, with_blocking=False
        ).schedulable
        blocked = response_time_analysis(ts, with_blocking=True)
        assert not blocked.schedulable
        assert blocked["high"].blocking == pytest.approx(1.5)


# ----------------------------------------------------------------------
# utilisation test, partitioning, sensitivity
# ----------------------------------------------------------------------
class TestUtilisation:
    def test_pass(self):
        ts = TaskSet([Task("t", wcet=0.5, period=1.0)])
        result = utilisation_test(ts)
        assert isinstance(result, UtilisationResult)
        assert result.passes is True
        assert result.as_dict()["passes"] is True

    def test_fail_above_bound(self):
        ts = TaskSet([
            Task("a", wcet=0.5, period=1.0),
            Task("b", wcet=0.4, period=1.0),
        ])
        result = utilisation_test(ts)
        assert result.passes is False
        assert result.utilisation == pytest.approx(0.9)


class TestFirstFit:
    def test_split_across_processors(self):
        ts = TaskSet([
            Task("a", wcet=3.0, period=4.0),
            Task("b", wcet=3.0, period=4.0),
        ])
        result = first_fit_partition(ts, processors=2)
        assert result.feasible
        assert set(result.assignment.values()) == {"cpu0", "cpu1"}
        assert not result.unassigned
        assert all(
            analysis.schedulable
            for analysis in result.analysis.values()
        )

    def test_overflow_reported_unassigned(self):
        ts = TaskSet([
            Task("a", wcet=3.0, period=4.0),
            Task("b", wcet=3.0, period=4.0),
            Task("c", wcet=3.0, period=4.0),
        ])
        result = first_fit_partition(ts, processors=2)
        assert not result.feasible
        assert len(result.unassigned) == 1

    def test_needs_a_processor(self):
        with pytest.raises(SchedulabilityError, match="processor"):
            first_fit_partition(TaskSet(), processors=0)


class TestSensitivity:
    def test_single_task_scales_to_deadline(self):
        ts = TaskSet([Task("t", wcet=1.0, period=2.0)])
        result = sensitivity(ts)
        assert isinstance(result, SensitivityResult)
        assert result.wcet_scale_max == pytest.approx(2.0, rel=1e-6)
        assert result.headroom == pytest.approx(1.0, rel=1e-6)
        assert result.utilisation_at_max == pytest.approx(1.0, rel=1e-6)

    def test_infeasible_set_reports_shrink_factor(self):
        ts = TaskSet([
            Task("a", wcet=3.0, period=4.0),
            Task("b", wcet=3.0, period=4.0),
        ])
        result = sensitivity(ts)
        assert result.wcet_scale_max < 1.0
        assert result.headroom == 0.0

    def test_empty_set_rejected(self):
        with pytest.raises(SchedulabilityError, match="empty"):
            sensitivity(TaskSet())


# ----------------------------------------------------------------------
# model derivation
# ----------------------------------------------------------------------
class TestTasksetFromModel:
    def test_sync_granularity_uses_execution_order(self):
        ts = taskset_from_model(two_rate_model(), 0.01)
        by_name = {t.name: t for t in ts}
        assert by_name["streamer:fast"].priority == 0
        assert by_name["streamer:slow"].priority == 1
        assert by_name["streamer:fast"].period == 0.01
        assert by_name["streamer:slow"].period == 0.01

    def test_minor_granularity_uses_thread_steps(self):
        ts = taskset_from_model(two_rate_model(), 0.01, granularity="minor")
        by_name = {t.name: t for t in ts}
        assert by_name["streamer:fast"].period == pytest.approx(2e-5)
        assert by_name["streamer:slow"].period == pytest.approx(1e-3)
        assert by_name["streamer:fast"].priority is None

    def test_shared_state_becomes_critical_sections(self):
        ts = taskset_from_model(two_rate_model(), 0.01, granularity="minor")
        by_name = {t.name: t for t in ts}
        assert by_name["streamer:fast"].critical_sections
        assert by_name["streamer:slow"].critical_sections
        fast_resources = set(by_name["streamer:fast"].resources)
        assert fast_resources & set(by_name["streamer:slow"].resources)

    def test_no_sharing_no_sections(self):
        ts = taskset_from_model(
            two_rate_model(share=False), 0.01, granularity="minor",
        )
        assert all(not t.critical_sections for t in ts)

    def test_blocking_only_failure_on_two_rate_share(self):
        """The ISSUE's acceptance case: plain RTA accepts the minor-step
        set, blocking-aware RTA rejects it."""
        ts = taskset_from_model(two_rate_model(), 0.01, granularity="minor")
        assert response_time_analysis(
            ts, with_blocking=False
        ).schedulable
        assert not response_time_analysis(
            ts, with_blocking=True
        ).schedulable

    def test_bad_sync_interval(self):
        with pytest.raises(SchedulabilityError, match="sync interval"):
            taskset_from_model(two_rate_model(), 0.0)

    def test_bad_granularity(self):
        with pytest.raises(SchedulabilityError, match="granularity"):
            taskset_from_model(two_rate_model(), 0.01, granularity="major")

    def test_min_feasible_sync_interval_bisects(self):
        model = two_rate_model(share=False)
        minimum = min_feasible_sync_interval(model, iterations=32)
        assert minimum is not None
        # feasible at the returned interval, infeasible well below it
        ts = taskset_from_model(model, minimum)
        assert response_time_analysis(ts).schedulable
        # well below the minimum the set is infeasible — either a task
        # invariant breaks outright (WCET > period) or RTA rejects it
        try:
            tight = taskset_from_model(model, minimum / 4)
        except SchedulabilityError:
            pass
        else:
            assert not response_time_analysis(tight).schedulable

    def test_sched_report_shape(self):
        report = sched_report(two_rate_model(), 0.01)
        assert report["schedulable"] in (True, False)
        assert report["tasks"]
        assert "rta" in report and "sensitivity" in report
        assert report["blocking_only_failure"] is True
        assert report["shared_state"]


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def taskset_strategy(max_tasks=4, max_util=0.95):
    """Random implicit-deadline task sets with bounded utilisation."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_tasks))
        periods = [
            draw(st.floats(min_value=1.0, max_value=100.0))
            for __ in range(n)
        ]
        shares = [
            draw(st.floats(min_value=0.01, max_value=1.0))
            for __ in range(n)
        ]
        total = sum(shares)
        budget = draw(st.floats(min_value=0.05, max_value=max_util))
        tasks = []
        for index in range(n):
            u = budget * shares[index] / total
            tasks.append(Task(
                f"t{index}", wcet=max(u * periods[index], 1e-9),
                period=periods[index],
            ))
        return TaskSet(tasks)

    return build()


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(ts=taskset_strategy(), frac=st.floats(
        min_value=0.0, max_value=1.0,
    ))
    def test_rta_monotone_in_wcet(self, ts, frac):
        """Growing every WCET can only flip the verdict from
        schedulable to not, and (where both fixed points exist) never
        shrinks any response time."""
        slack = min(t.period / t.wcet for t in ts)
        scale = 1.0 + frac * (min(slack, 3.0) - 1.0)
        grown = TaskSet([
            Task(t.name, wcet=t.wcet * scale, period=t.period)
            for t in ts
        ])
        before = response_time_analysis(ts)
        after = response_time_analysis(grown)
        if after.schedulable:
            assert before.schedulable
            for response in before:
                assert (
                    after[response.name].response_time
                    >= response.response_time - 1e-9
                )

    @settings(max_examples=60, deadline=None)
    @given(ts=taskset_strategy(max_util=0.99))
    def test_rta_accepts_liu_layland_sets(self, ts):
        """Exact RTA is no more pessimistic than the sufficient bound:
        any set passing Liu–Layland must pass RTA."""
        if utilisation_test(ts).passes:
            assert response_time_analysis(
                ts, with_blocking=False
            ).schedulable

    @settings(max_examples=40, deadline=None)
    @given(ts=taskset_strategy(), held=st.floats(
        min_value=0.0, max_value=0.5,
    ))
    def test_blocking_never_helps(self, ts, held):
        """Adding blocking terms can only inflate responses: a set the
        blocking-aware analysis accepts also passes plain RTA, with
        pointwise-smaller response times."""
        locked = TaskSet([
            Task(
                t.name, wcet=t.wcet, period=t.period,
                critical_sections=(
                    CriticalSection("lock", t.wcet * held),
                ),
            )
            for t in ts
        ])
        plain = response_time_analysis(locked, with_blocking=False)
        blocked = response_time_analysis(locked, with_blocking=True)
        if blocked.schedulable:
            assert plain.schedulable
            for response in plain:
                assert (
                    blocked[response.name].response_time
                    >= response.response_time - 1e-9
                )
        if not plain.schedulable:
            assert not blocked.schedulable
