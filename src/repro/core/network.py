"""Flattening the streamer hierarchy into an executable dataflow network.

The hybrid scheduler does not interpret the streamer tree directly.  At
build time it flattens:

1. every *leaf* streamer becomes a network node with a continuous-state
   slice in one global state vector;
2. every chain ``leaf OUT → (flows / relays / boundary DPorts / capsule
   relay DPorts)* → leaf IN`` is resolved into one :class:`ResolvedEdge`
   remembering the full pad path (so per-flow statistics stay live);
3. leaves are topologically ordered; only *direct-feedthrough* consumers
   impose ordering constraints, and a feedthrough cycle is rejected as an
   algebraic loop (rule W12);
4. each leaf's zero-crossing guards are lifted into network-level guards.

The network exposes the combined right-hand side ``rhs(t, Y)`` any solver
from :mod:`repro.solvers` can integrate — this is precisely where the
paper's "solver ... computing equations" plugs in.

Multi-thread execution: each leaf belongs to the :class:`~repro.core.thread.
StreamerThread` of its top-level streamer.  Edges within one thread are
propagated at every solver stage; edges crossing threads are sampled only
at synchronisation points (the receiving pad holds the last sampled value),
which reproduces the paper's threads-plus-channels architecture for data.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Sequence, Set,
    Tuple,
)

import numpy as np

from repro.core.dport import DPort
from repro.core.flow import Flow, Relay
from repro.core.streamer import Streamer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import ExecutionPlan


class NetworkError(Exception):
    """Raised for unresolvable or ill-formed dataflow networks."""


class ResolvedEdge:
    """A leaf-to-leaf dataflow dependency with its original pad path."""

    def __init__(
        self,
        src_leaf: Streamer,
        src_port: DPort,
        dst_leaf: Streamer,
        dst_port: DPort,
        path: Sequence[object],
    ) -> None:
        self.src_leaf = src_leaf
        self.src_port = src_port
        self.dst_leaf = dst_leaf
        self.dst_port = dst_port
        #: alternating Flow/Relay objects along the chain, in order
        self.path = list(path)

    def propagate(self) -> None:
        """Push the current source value down the whole pad chain."""
        for hop in self.path:
            hop.propagate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResolvedEdge({self.src_port.qualified_name} => "
            f"{self.dst_port.qualified_name}, hops={len(self.path)})"
        )


class NetworkGuard:
    """A lifted zero-crossing guard of one leaf."""

    def __init__(self, leaf: Streamer, index: int, name: str) -> None:
        self.leaf = leaf
        self.index = index
        self.name = name

    @property
    def qualified_name(self) -> str:
        return f"{self.leaf.path()}:{self.name}"


class FlatNetwork:
    """The flattened, executable form of a set of top-level streamers."""

    def __init__(
        self,
        tops: Sequence[Streamer],
        extra_flows: Sequence[Flow] = (),
        *,
        strict: bool = True,
    ) -> None:
        if not tops:
            raise NetworkError("no streamers to flatten")
        self.tops = list(tops)
        self.extra_flows = list(extra_flows)
        #: strict (the scheduler path) rejects algebraic loops outright;
        #: non-strict (the static checker) records each delay-free cycle
        #: in :attr:`algebraic_cycles` and keeps the network analysable —
        #: stuck leaves are appended to the order, which is fine for
        #: inspection but must never be integrated.
        self.strict = strict
        self.algebraic_cycles: List[List[Streamer]] = []
        self.leaves: List[Streamer] = []
        for top in self.tops:
            self.leaves.extend(top.leaves())
        self._leaf_ids = {id(leaf) for leaf in self.leaves}
        self.edges: List[ResolvedEdge] = []
        #: edges ending at observer pads (boundary OUT DPorts, dangling
        #: relay pads): no consumer leaf, but kept fresh for probes
        self.observer_edges: List[ResolvedEdge] = []
        self._in_edges: Dict[int, List[ResolvedEdge]] = {}
        self.unconnected_inputs: List[DPort] = []
        self.order: List[Streamer] = []
        self.guards: List[NetworkGuard] = []
        self._offsets: Dict[int, Tuple[int, int]] = {}
        self.state_size = 0
        self._plan: Optional["ExecutionPlan"] = None
        #: optimized plans, keyed by (opt cache token, protected pad ids)
        self._opt_plans: Dict[Tuple, "ExecutionPlan"] = {}
        self._resolve_edges()
        self._topological_order()
        self._assign_state_slices()
        self._collect_guards()

    # ------------------------------------------------------------------
    # flattening
    # ------------------------------------------------------------------
    def _resolve_edges(self) -> None:
        flows: List[Flow] = list(self.extra_flows)
        for top in self.tops:
            flows.extend(top.all_flows())
        # index flows by their source pad for forward walking
        by_source: Dict[int, List[Flow]] = {}
        for flow in flows:
            by_source.setdefault(id(flow.source), []).append(flow)

        drivers: Dict[int, ResolvedEdge] = {}
        for leaf in self.leaves:
            for port in leaf.dports.values():
                if port.is_out and not port.relay_only:
                    self._walk_from(leaf, port, port, [], by_source, drivers,
                                    set())
        # record driver edges and detect unconnected leaf inputs (W8 info)
        for leaf in self.leaves:
            for port in leaf.dports.values():
                if port.is_in and not port.relay_only:
                    edge = drivers.get(id(port))
                    if edge is None:
                        self.unconnected_inputs.append(port)
                    else:
                        self.edges.append(edge)
                        self._in_edges.setdefault(id(leaf), []).append(edge)

    def _walk_from(
        self,
        src_leaf: Streamer,
        src_port: DPort,
        pad: DPort,
        path: List[object],
        by_source: Dict[int, List[Flow]],
        drivers: Dict[int, ResolvedEdge],
        visited: Set[int],
    ) -> None:
        """DFS from a leaf OUT pad through flows/relays/boundaries."""
        if id(pad) in visited:
            raise NetworkError(
                f"flow cycle through pad {pad.qualified_name} "
                "(relay or boundary loop)"
            )
        visited = visited | {id(pad)}
        for flow in by_source.get(id(pad), []):
            target = flow.target
            new_path = path + [flow]
            owner = target.owner
            if isinstance(owner, Relay):
                relay = owner
                relay_path = new_path + [relay]
                for out_pad in (relay.out_a, relay.out_b):
                    self._walk_from(
                        src_leaf, src_port, out_pad, relay_path,
                        by_source, drivers, visited,
                    )
            elif isinstance(owner, Streamer) and id(owner) in self._leaf_ids \
                    and target.is_in and not target.relay_only:
                existing = drivers.get(id(target))
                if existing is not None and existing.src_port is not src_port:
                    raise NetworkError(
                        f"DPort {target.qualified_name} has two drivers "
                        f"(W8): {existing.src_port.qualified_name} and "
                        f"{src_port.qualified_name}"
                    )
                drivers[id(target)] = ResolvedEdge(
                    src_leaf, src_port, owner, target, new_path
                )
            else:
                # boundary DPort of a composite, or a capsule relay DPort:
                # transparent pad, keep walking.
                if not by_source.get(id(target)):
                    # dead end: an observer pad (e.g. an exposed boundary
                    # OUT read by a probe) — keep it refreshed anyway
                    self.observer_edges.append(ResolvedEdge(
                        src_leaf, src_port, src_leaf, target, new_path
                    ))
                else:
                    self._walk_from(
                        src_leaf, src_port, target, new_path,
                        by_source, drivers, visited,
                    )

    # ------------------------------------------------------------------
    # ordering (W12)
    # ------------------------------------------------------------------
    def _topological_order(self) -> None:
        indegree: Dict[int, int] = {id(leaf): 0 for leaf in self.leaves}
        successors: Dict[int, List[Streamer]] = {
            id(leaf): [] for leaf in self.leaves
        }
        constrained = set()
        self_looped = set()
        for edge in self.edges:
            if not edge.dst_leaf.direct_feedthrough:
                continue
            if edge.src_leaf is edge.dst_leaf:
                if self.strict:
                    raise NetworkError(
                        f"algebraic self-loop (W12) at "
                        f"{edge.dst_leaf.path()}"
                    )
                if id(edge.dst_leaf) not in self_looped:
                    self_looped.add(id(edge.dst_leaf))
                    self.algebraic_cycles.append([edge.dst_leaf])
                continue
            key = (id(edge.src_leaf), id(edge.dst_leaf))
            if key in constrained:
                continue
            constrained.add(key)
            indegree[id(edge.dst_leaf)] += 1
            successors[id(edge.src_leaf)].append(edge.dst_leaf)

        # deterministic Kahn: stable by construction order of self.leaves
        ready = [leaf for leaf in self.leaves if indegree[id(leaf)] == 0]
        order: List[Streamer] = []
        while ready:
            leaf = ready.pop(0)
            order.append(leaf)
            for nxt in successors[id(leaf)]:
                indegree[id(nxt)] -= 1
                if indegree[id(nxt)] == 0:
                    ready.append(nxt)
        if len(order) != len(self.leaves):
            stuck_leaves = [
                leaf for leaf in self.leaves if indegree[id(leaf)] > 0
            ]
            if self.strict:
                stuck = sorted(leaf.path() for leaf in stuck_leaves)
                raise NetworkError(
                    f"algebraic loop (W12) among direct-feedthrough "
                    f"streamers: {', '.join(stuck)}"
                )
            self.algebraic_cycles.extend(
                self._find_cycles(stuck_leaves, successors)
            )
            order.extend(stuck_leaves)
        self.order = order

    @staticmethod
    def _find_cycles(
        stuck: List[Streamer],
        successors: Dict[int, List[Streamer]],
    ) -> List[List[Streamer]]:
        """One representative cycle per strongly connected component of
        the feedthrough-constraint subgraph spanned by ``stuck``.

        Static: the checker reuses it to recover cycles from an
        :class:`~repro.core.plan.ExecutionPlan` edge table.
        """
        stuck_ids = {id(leaf) for leaf in stuck}
        index_of: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[Streamer] = []
        sccs: List[List[Streamer]] = []
        counter = [0]

        def strongconnect(leaf: Streamer) -> None:
            # iterative Tarjan (explicit stack; models can be deep)
            work = [(leaf, iter(successors[id(leaf)]))]
            index_of[id(leaf)] = lowlink[id(leaf)] = counter[0]
            counter[0] += 1
            stack.append(leaf)
            on_stack.add(id(leaf))
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if id(child) not in stuck_ids:
                        continue
                    if id(child) not in index_of:
                        index_of[id(child)] = lowlink[id(child)] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(id(child))
                        work.append((child, iter(successors[id(child)])))
                        advanced = True
                        break
                    if id(child) in on_stack:
                        lowlink[id(node)] = min(
                            lowlink[id(node)], index_of[id(child)]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[id(parent)] = min(
                        lowlink[id(parent)], lowlink[id(node)]
                    )
                if lowlink[id(node)] == index_of[id(node)]:
                    component: List[Streamer] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(id(member))
                        component.append(member)
                        if member is node:
                            break
                    if len(component) > 1:
                        sccs.append(component)

        for leaf in stuck:
            if id(leaf) not in index_of:
                strongconnect(leaf)

        cycles: List[List[Streamer]] = []
        for component in sccs:
            member_ids = {id(member) for member in component}
            # walk successors inside the component until a node repeats:
            # that suffix is one concrete cycle through the SCC
            path = [component[0]]
            seen = {id(component[0]): 0}
            while True:
                nxt = next(
                    child for child in successors[id(path[-1])]
                    if id(child) in member_ids
                )
                if id(nxt) in seen:
                    cycles.append(path[seen[id(nxt)]:])
                    break
                seen[id(nxt)] = len(path)
                path.append(nxt)
        return cycles

    # ------------------------------------------------------------------
    # state vector layout
    # ------------------------------------------------------------------
    def _assign_state_slices(self) -> None:
        offset = 0
        for leaf in self.order:
            n = int(leaf.state_size)
            if n < 0:
                raise NetworkError(
                    f"negative state_size on {leaf.path()}"
                )
            self._offsets[id(leaf)] = (offset, offset + n)
            offset += n
        self.state_size = offset

    def _collect_guards(self) -> None:
        for leaf in self.order:
            for index, name in enumerate(leaf.zero_crossing_names):
                self.guards.append(NetworkGuard(leaf, index, name))

    def state_slice(self, leaf: Streamer) -> Tuple[int, int]:
        return self._offsets[id(leaf)]

    def initial_state(self) -> np.ndarray:
        y0 = np.zeros(self.state_size, dtype=float)
        for leaf in self.order:
            lo, hi = self._offsets[id(leaf)]
            if hi > lo:
                init = np.asarray(leaf.initial_state(), dtype=float)
                if init.shape != (hi - lo,):
                    raise NetworkError(
                        f"{leaf.path()}.initial_state() returned shape "
                        f"{init.shape}, expected ({hi - lo},)"
                    )
                y0[lo:hi] = init
        return y0

    # ------------------------------------------------------------------
    # the execution plan (compiled IR)
    # ------------------------------------------------------------------
    def in_edges(self, leaf: Streamer) -> List[ResolvedEdge]:
        """The resolved edges feeding ``leaf`` (empty if none)."""
        return list(self._in_edges.get(id(leaf), []))

    def plan(
        self,
        opt_level: int = 0,
        opt_config=None,
        protect: Sequence[DPort] = (),
    ) -> "ExecutionPlan":
        """The cached :class:`~repro.core.plan.ExecutionPlan` for this
        network (compiled on first use, single-partition).

        ``opt_level`` / ``opt_config`` select the optimizer pipeline
        (:mod:`repro.core.opt`); optimized plans are cached separately
        per configuration, so requesting O2 never disturbs the O0 plan
        the thin ``evaluate``/``rhs`` wrappers use.  ``protect`` lists
        pads the optimizer must leave untouched (probe sources).
        """
        from repro.core.plan import ExecutionPlan

        config = None
        if opt_config is not None or opt_level:
            from repro.core.opt import resolve_config

            config = resolve_config(opt_level, opt_config)
        if config is None or not config.is_active:
            if self._plan is None:
                self._plan = ExecutionPlan.compile(self)
            return self._plan
        key = (
            config.cache_token(),
            tuple(sorted(id(pad) for pad in protect)),
        )
        cached = self._opt_plans.get(key)
        if cached is None:
            counters = (
                self._plan.counters if self._plan is not None else None
            )
            cached = ExecutionPlan.compile(
                self, counters=counters, opt_config=config,
                protect=protect,
            )
            self._opt_plans[key] = cached
        return cached

    def bind_threads(
        self,
        leaf_threads: Mapping[int, int],
        opt_level: int = 0,
        opt_config=None,
        protect: Sequence[DPort] = (),
    ) -> "ExecutionPlan":
        """Recompile the plan with a thread partition.

        ``leaf_threads`` maps ``id(leaf)`` to a thread index; the new
        plan replaces the cached one (carrying the analysis counters
        over) and is returned.  The scheduler calls this once at build
        time, then derives per-thread views with
        :meth:`~repro.core.plan.ExecutionPlan.thread_plan`.  The
        optimizer arguments mirror :meth:`plan`; the optimized plan
        becomes *the* cached plan, so ``evaluate``/``rhs`` run it too.
        """
        from repro.core.plan import ExecutionPlan

        counters = self._plan.counters if self._plan is not None else None
        self._plan = ExecutionPlan.compile(
            self, leaf_threads, counters=counters,
            opt_level=opt_level, opt_config=opt_config, protect=protect,
        )
        return self._plan

    @property
    def rhs_evaluations(self) -> int:
        """Network evaluations so far (aggregated across thread views)."""
        return self.plan().counters.evaluations

    def program(
        self,
        backend: str = "interpreter",
        solver: Any = "rk4",
        h: float = 1e-3,
        records: Optional[List[str]] = None,
        opt_level: int = 0,
        opt_config=None,
        cache_dir=None,
        metrics=None,
        emit=None,
    ):
        """Compile this network into a runnable
        :class:`~repro.core.backend.base.BackendProgram`.

        Convenience front door to :func:`repro.core.backend.
        compile_program`: walks the requested backend's fallback ladder
        (reporting demotions through ``metrics``/``emit`` when given)
        and returns a program with the uniform ``step``/``run``/
        ``snapshot_state`` surface.
        """
        from repro.core.backend import CompileRequest, compile_program

        request = CompileRequest(
            network=self, solver=solver, h=h, records=records,
            opt_level=opt_level, opt_config=opt_config,
            cache_dir=cache_dir,
        )
        return compile_program(
            request, backend, metrics=metrics, emit=emit,
        )

    # ------------------------------------------------------------------
    # evaluation (thin wrappers over the plan)
    # ------------------------------------------------------------------
    def evaluate(self, t: float, state: np.ndarray) -> None:
        """Refresh all DPort values for the given global state vector."""
        self.plan().evaluate(t, state)

    def rhs(self, t: float, state: np.ndarray) -> np.ndarray:
        """The combined ODE right-hand side over the global state vector."""
        return self.plan().rhs(t, state)

    def guard_values(
        self, t: float, state: np.ndarray, guards: Sequence[NetworkGuard]
    ) -> List[float]:
        """Evaluate the given guards at ``(t, state)`` (ports assumed fresh)."""
        values: List[float] = []
        cache: Dict[int, Sequence[float]] = {}
        for guard in guards:
            if id(guard.leaf) not in cache:
                lo, hi = self._offsets[id(guard.leaf)]
                cache[id(guard.leaf)] = list(
                    guard.leaf.zero_crossings(t, state[lo:hi])
                )
            leaf_values = cache[id(guard.leaf)]
            if guard.index >= len(leaf_values):
                raise NetworkError(
                    f"{guard.leaf.path()} declared "
                    f"{len(guard.leaf.zero_crossing_names)} guard names but "
                    f"zero_crossings() returned {len(leaf_values)} values"
                )
            values.append(float(leaf_values[guard.index]))
        return values

    # ------------------------------------------------------------------
    # statistics (benchmark C1 inputs)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "leaves": len(self.leaves),
            "edges": len(self.edges),
            "states": self.state_size,
            "guards": len(self.guards),
            "unconnected_inputs": len(self.unconnected_inputs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"FlatNetwork(leaves={s['leaves']}, edges={s['edges']}, "
            f"states={s['states']})"
        )
