"""Zero-crossing detection and localisation."""

import math

import numpy as np
import pytest

from repro.solvers import EventSpec, RK4, ZeroCrossingDetector, integrate


def falling_ball():
    """y'' = -g from y0 = 10: hits y = 0 at t = sqrt(2*10/9.81)."""
    g = 9.81

    def rhs(t, y):
        return np.array([y[1], -g])

    t_hit = math.sqrt(2.0 * 10.0 / g)
    return rhs, t_hit


class TestEventSpec:
    def test_direction_validation(self):
        with pytest.raises(ValueError):
            EventSpec("e", lambda t, y: 0.0, direction=2)

    def test_defaults(self):
        spec = EventSpec("e", lambda t, y: y[0])
        assert spec.direction == 0 and not spec.terminal


class TestDetector:
    def test_detects_crossing_in_step(self):
        spec = EventSpec("zero", lambda t, y: y[0])
        detector = ZeroCrossingDetector([spec])
        detector.reset(0.0, np.array([-1.0]))
        events = detector.check_step(
            0.0, np.array([-1.0]), 1.0, np.array([1.0])
        )
        assert len(events) == 1
        assert events[0].direction == 1
        assert events[0].t == pytest.approx(0.5, abs=1e-6)

    def test_no_crossing_no_event(self):
        spec = EventSpec("zero", lambda t, y: y[0])
        detector = ZeroCrossingDetector([spec])
        detector.reset(0.0, np.array([1.0]))
        assert detector.check_step(
            0.0, np.array([1.0]), 1.0, np.array([2.0])
        ) == []

    def test_direction_filtering(self):
        rising_only = EventSpec("r", lambda t, y: y[0], direction=1)
        falling_only = EventSpec("f", lambda t, y: y[0], direction=-1)
        detector = ZeroCrossingDetector([rising_only, falling_only])
        detector.reset(0.0, np.array([1.0]))
        events = detector.check_step(
            0.0, np.array([1.0]), 1.0, np.array([-1.0])
        )
        assert [e.spec.name for e in events] == ["f"]

    def test_multiple_guards_ordered_by_time(self):
        early = EventSpec("early", lambda t, y: t - 0.2)
        late = EventSpec("late", lambda t, y: t - 0.8)
        detector = ZeroCrossingDetector([late, early])
        detector.reset(0.0, np.array([0.0]))
        events = detector.check_step(
            0.0, np.array([0.0]), 1.0, np.array([0.0])
        )
        assert [e.spec.name for e in events] == ["early", "late"]

    def test_localisation_tolerance(self):
        spec = EventSpec("zero", lambda t, y: t - 1.0 / 3.0)
        detector = ZeroCrossingDetector([spec], t_tol=1e-10)
        detector.reset(0.0, np.array([0.0]))
        events = detector.check_step(
            0.0, np.array([0.0]), 1.0, np.array([1.0])
        )
        assert events[0].t == pytest.approx(1.0 / 3.0, abs=1e-9)


class TestIntegrationWithEvents:
    def test_terminal_event_stops_integration(self):
        rhs, t_hit = falling_ball()
        ground = EventSpec("ground", lambda t, y: y[0], direction=-1,
                           terminal=True)
        result = integrate(rhs, [10.0, 0.0], 0.0, 10.0, RK4(), h=0.01,
                           events=[ground])
        assert result.terminated_by_event
        assert result.t_final == pytest.approx(t_hit, abs=1e-3)
        assert result.y_final[0] == pytest.approx(0.0, abs=1e-2)

    def test_non_terminal_events_recorded(self):
        spec = EventSpec("period", lambda t, y: y[0])
        result = integrate(
            lambda t, y: np.array([math.cos(t)]),  # y = sin(t)
            [0.0], 0.01, 4.0 * math.pi, RK4(), h=0.01, events=[spec],
        )
        assert not result.terminated_by_event
        # sin crosses zero at pi, 2pi, 3pi in (0, 4pi)
        times = [e.t for e in result.events]
        assert len(times) >= 3
        # starting at t0=0.01 shifts y by -sin(0.01), so the first
        # crossing sits at pi - arcsin(sin(0.01))
        assert times[0] == pytest.approx(
            math.pi - math.asin(math.sin(0.01)), abs=1e-3
        )

    def test_event_state_recorded(self):
        rhs, __ = falling_ball()
        ground = EventSpec("ground", lambda t, y: y[0], terminal=True)
        result = integrate(rhs, [10.0, 0.0], 0.0, 10.0, RK4(), h=0.01,
                           events=[ground])
        # velocity at impact: v = -g*t
        assert result.trajectory.y_final[1] == pytest.approx(
            -9.81 * result.t_final, rel=1e-2
        )
