"""Numerical solvers for the ``solver`` stereotype.

The paper's streamers compute differential equations through a *solver*
attached via the Strategy pattern (Figure 1).  This package supplies that
strategy family:

* fixed-step explicit methods (:mod:`repro.solvers.fixed`):
  forward Euler, Heun, classic RK4;
* adaptive explicit methods (:mod:`repro.solvers.adaptive`):
  Dormand–Prince RK45 with PI step-size control;
* implicit methods for stiff systems (:mod:`repro.solvers.implicit`):
  backward Euler and trapezoidal rule with damped Newton iteration;
* zero-crossing event detection (:mod:`repro.solvers.events`) used to turn
  continuous conditions into discrete signals for capsules;
* trajectory recording (:mod:`repro.solvers.history`);
* a high-level :func:`repro.solvers.ivp.integrate` driver.

All solvers share the ODE right-hand-side convention ``f(t, y) -> dy/dt``
with ``y`` a 1-D ``numpy`` array.
"""

from repro.solvers.base import FixedStepSolver, SolverError, StepResult
from repro.solvers.fixed import Euler, Heun, RK4
from repro.solvers.adaptive import DormandPrince45
from repro.solvers.implicit import BackwardEuler, Trapezoidal
from repro.solvers.events import EventSpec, ZeroCrossingDetector
from repro.solvers.history import Trajectory
from repro.solvers.ivp import IntegrationResult, integrate
from repro.solvers.registry import available_solvers, make_solver, solver_key

__all__ = [
    "BackwardEuler",
    "DormandPrince45",
    "Euler",
    "EventSpec",
    "FixedStepSolver",
    "Heun",
    "IntegrationResult",
    "RK4",
    "SolverError",
    "StepResult",
    "Trajectory",
    "Trapezoidal",
    "ZeroCrossingDetector",
    "available_solvers",
    "integrate",
    "make_solver",
    "solver_key",
]
