"""Control-engineering metrics over trajectories.

Step-response metrics (rise time, settling time, overshoot, steady-state
error) and the integral criteria IAE/ISE/ITAE, plus trajectory-to-
trajectory comparison on a common grid — the quantitative vocabulary of
EXPERIMENTS.md and the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.solvers.history import Trajectory

# numpy 2 renamed trapz -> trapezoid; support both
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


@dataclass
class StepMetrics:
    """Classic step-response characterisation."""

    final_value: float
    steady_state_error: float
    rise_time: Optional[float]      # 10% -> 90% of target
    settling_time: Optional[float]  # stays within +-band of target
    overshoot: float                # fraction of target
    peak: float
    peak_time: float


def step_metrics(
    trajectory: Trajectory,
    target: float,
    component: Union[int, str] = 0,
    band: float = 0.02,
) -> StepMetrics:
    """Compute step metrics for a response toward ``target``.

    ``band`` is the settling band as a fraction of ``target`` (2% default)
    when target is non-zero, absolute otherwise.
    """
    values = trajectory.component(component)
    times = trajectory.times
    final = float(values[-1])
    abs_band = abs(target) * band if target != 0 else band

    peak_idx = int(np.argmax(values)) if target >= values[0] else int(
        np.argmin(values)
    )
    peak = float(values[peak_idx])
    overshoot = 0.0
    if target != values[0]:
        excursion = (peak - target) / (target - values[0])
        overshoot = max(0.0, float(excursion))

    rise_time = _rise_time(times, values, values[0], target)
    settling = trajectory.settling_time(component, target, abs_band)
    return StepMetrics(
        final_value=final,
        steady_state_error=float(target - final),
        rise_time=rise_time,
        settling_time=settling,
        overshoot=overshoot,
        peak=peak,
        peak_time=float(times[peak_idx]),
    )


def _rise_time(
    times: np.ndarray, values: np.ndarray, start: float, target: float
) -> Optional[float]:
    span = target - start
    if span == 0:
        return 0.0
    lo_level = start + 0.1 * span
    hi_level = start + 0.9 * span
    progress = (values - start) / span
    t_lo = _first_crossing(times, progress, 0.1)
    t_hi = _first_crossing(times, progress, 0.9)
    if t_lo is None or t_hi is None or t_hi < t_lo:
        return None
    return float(t_hi - t_lo)


def _first_crossing(
    times: np.ndarray, values: np.ndarray, level: float
) -> Optional[float]:
    above = values >= level
    if not above.any():
        return None
    idx = int(np.argmax(above))
    if idx == 0:
        return float(times[0])
    # linear interpolation within the crossing interval
    v0, v1 = values[idx - 1], values[idx]
    if v1 == v0:
        return float(times[idx])
    alpha = (level - v0) / (v1 - v0)
    return float(times[idx - 1] + alpha * (times[idx] - times[idx - 1]))


# ----------------------------------------------------------------------
# integral criteria
# ----------------------------------------------------------------------
def _error_series(
    trajectory: Trajectory, target: float, component: Union[int, str]
) -> tuple:
    values = trajectory.component(component)
    times = trajectory.times
    return times, np.abs(target - values)


def iae(trajectory: Trajectory, target: float,
        component: Union[int, str] = 0) -> float:
    """Integral of absolute error (trapezoidal)."""
    times, err = _error_series(trajectory, target, component)
    return float(_trapezoid(err, times))


def ise(trajectory: Trajectory, target: float,
        component: Union[int, str] = 0) -> float:
    """Integral of squared error."""
    times, err = _error_series(trajectory, target, component)
    return float(_trapezoid(err ** 2, times))


def itae(trajectory: Trajectory, target: float,
         component: Union[int, str] = 0) -> float:
    """Time-weighted integral of absolute error."""
    times, err = _error_series(trajectory, target, component)
    return float(_trapezoid(times * err, times))


# ----------------------------------------------------------------------
# distribution summaries
# ----------------------------------------------------------------------
def percentiles(
    values, levels=(50.0, 95.0),
) -> dict:
    """Summarise a sample: count, mean, min/max and the given percentile
    levels (keys ``p50``, ``p95``, ... — ``p99_9`` for fractional levels).

    The shared vocabulary for latency/wall-time distributions: service
    telemetry histograms (:mod:`repro.service.telemetry`) and benchmark
    JSON artefacts both report through this, so "p95" means the same
    linear-interpolated quantile everywhere.  Empty samples summarise to
    zeros rather than raising, since a metrics snapshot may race a
    service that has not completed a job yet.
    """
    def key_of(level: float) -> str:
        return "p" + f"{float(level):g}".replace(".", "_")

    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        out = {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        out.update({key_of(level): 0.0 for level in levels})
        return out
    out = {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for level in levels:
        out[key_of(level)] = float(np.percentile(arr, level))
    return out


# ----------------------------------------------------------------------
# trajectory comparison
# ----------------------------------------------------------------------
def compare_trajectories(
    a: Trajectory,
    b: Trajectory,
    samples: int = 200,
    component: Union[int, str] = 0,
) -> dict:
    """Max and RMS difference of two trajectories on a shared grid.

    The grid spans the overlap of the two time ranges; each trajectory is
    linearly interpolated onto it.
    """
    t0 = max(a.times[0], b.times[0])
    t1 = min(a.t_final, b.t_final)
    if t1 <= t0:
        raise ValueError("trajectories do not overlap in time")
    grid = np.linspace(t0, t1, samples)
    if isinstance(component, str):
        idx_a = a.labels.index(component) if a.labels else 0
        idx_b = b.labels.index(component) if b.labels else 0
    else:
        idx_a = idx_b = component
    va = np.array([a.sample(t)[idx_a] for t in grid])
    vb = np.array([b.sample(t)[idx_b] for t in grid])
    diff = va - vb
    return {
        "max_diff": float(np.max(np.abs(diff))),
        "rms_diff": float(np.sqrt(np.mean(diff ** 2))),
        "grid_points": samples,
        "t0": float(t0),
        "t1": float(t1),
    }
