"""Experiment C2 — claim vs. Bichler: equations-in-states are inefficient.

The paper: "because UML is a foundational discrete language, this method
doesn't work efficiently."  Same plant, same equations (literally the
same flattened network object code); the only difference is the
architecture executing them:

* Bichler: one Euler minor step per timer message under RTC;
* streamers: minor steps are plain function calls on a streamer thread,
  messages only at sync points.

Measured shapes: (1) wall time per simulated second — streamer thread
faster; (2) queued messages — Bichler pays one per minor step, streamers
zero; (3) accuracy at fixed cost — the streamer thread can run RK4/RK45,
the RTC-embedded integrator is structurally stuck at Euler.
"""

import math

import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.baselines import BichlerModel
from repro.core.model import HybridModel

H = 0.002
T_END = 2.0


def _streamer_run(solver="euler", h=H):
    diagram = pid_plant_diagram(0)
    diagram.finalise()
    model = HybridModel("streamer")
    model.default_thread.binding.rebind(solver)
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at("plant.out"))
    model.run(until=T_END, sync_interval=0.05)
    return model


def test_c2_bichler_wall_time(benchmark):
    def run():
        baseline = BichlerModel(pid_plant_diagram(0), h=H,
                                probe="plant.out")
        baseline.run(T_END)
        return baseline

    baseline = benchmark(run)
    assert baseline.capsule.equation_evaluations == int(T_END / H)


def test_c2_streamer_wall_time(benchmark):
    model = benchmark(_streamer_run)
    assert model.stats()["minor_steps"] == int(T_END / H)


def test_c2_message_overhead(benchmark, report):
    results = {}

    def run_both():
        baseline = BichlerModel(pid_plant_diagram(0), h=H,
                                probe="plant.out")
        baseline.run(T_END)
        results["bichler"] = baseline.metrics(T_END)
        model = _streamer_run()
        results["streamer_msgs"] = model.stats()["messages_dispatched"]
        results["streamer_final"] = model.probe("y").y_final[0]
        results["bichler_final"] = baseline.trajectory.y_final[0]

    benchmark(run_both)
    bichler_msgs = results["bichler"]["messages_total"]
    report("C2: architecture overhead (same equations, same h)", [
        f"{'':<22}{'messages':>10}{'msgs/sim-s':>12}",
        f"{'Bichler eqs-in-states':<22}{bichler_msgs:>10}"
        f"{results['bichler']['messages_per_second']:>12.0f}",
        f"{'streamer thread':<22}{results['streamer_msgs']:>10}"
        f"{results['streamer_msgs'] / T_END:>12.0f}",
        "",
        f"final values agree: bichler={results['bichler_final']:.5f} "
        f"streamer={results['streamer_final']:.5f}",
    ])
    assert results["streamer_msgs"] == 0
    assert bichler_msgs == int(T_END / H)
    assert results["bichler_final"] == pytest.approx(
        results["streamer_final"], abs=1e-6
    )


def test_c2_accuracy_ceiling(benchmark, report, bench_json):
    """At the same (coarse) step the streamer thread's RK4 strategy beats
    the RTC-locked Euler by orders of magnitude — the efficiency claim in
    its accuracy-per-cost form."""
    h = 0.04
    results = {}

    def run():
        # open-loop lag so the analytic solution is known
        from repro.dataflow import Diagram, FirstOrderLag, Step

        def lag():
            d = Diagram("lag")
            d.add(Step("s", amplitude=1.0))
            d.add(FirstOrderLag("plant", tau=0.5))
            d.connect("s.out", "plant.in")
            return d

        baseline = BichlerModel(lag(), h=h, probe="plant.out")
        baseline.run(1.0)
        expected = 1.0 - math.exp(-2.0)
        results["euler_err"] = abs(
            baseline.trajectory.y_final[0] - expected
        )

        diagram = lag()
        diagram.finalise()
        model = HybridModel("rk4")
        model.default_thread.h = h  # rk4 default
        model.add_streamer(diagram)
        model.add_probe("y", diagram.port_at("plant.out"))
        model.run(until=1.0, sync_interval=0.04)
        results["rk4_err"] = abs(model.probe("y").y_final[0] - expected)

    benchmark(run)
    ratio = results["euler_err"] / max(results["rk4_err"], 1e-16)
    report("C2: accuracy ceiling at equal step (h=0.04)", [
        f"Bichler (RTC-locked Euler) error: {results['euler_err']:.2e}",
        f"streamer thread (RK4 strategy)  : {results['rk4_err']:.2e}",
        f"accuracy ratio: {ratio:.0f}x",
    ])
    assert ratio > 100
    bench_json("c2", {
        "euler_error": results["euler_err"],
        "rk4_error": results["rk4_err"],
        "accuracy_ratio": ratio,
        "bichler_messages_per_minor_step": 1,
        "streamer_messages_per_minor_step": 0,
    })
