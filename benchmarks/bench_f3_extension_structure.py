"""Experiment F3 — Figure 3: structure of extensions.

The top capsule containing a sub-capsule and two streamers, with SPort
bridges realising the capsule-streamer channel.  Validates the W-rules
over the assembled model, renders the containment structure, and measures
a full simulated second of the hybrid system.
"""

from repro.metamodel import figure3_capsule_model, render_capsule_structure
from repro.metamodel.structure import Figure3TopCapsule


def test_figure3_assembly_and_validation(benchmark, report):
    def build():
        model, top = figure3_capsule_model()
        violations = model.validate(strict=True)  # warnings only
        return model, top, violations

    model, top, violations = benchmark(build)
    assert all(v.severity == "warning" for v in violations)
    assert len(model.streamers) == 2
    assert len(model.bridges) == 2
    assert "sub" in top.parts

    report("F3: Figure 3 (structure of extensions)", [
        render_capsule_structure(top),
        "  +-- streamer1 (thread: streamers)",
        "  +-- streamer2 (thread: streamers)",
        f"SPort bridges: {len(model.bridges)} "
        "(capsule <-> streamer channels)",
        f"validation: {len(violations)} warnings, 0 errors",
    ])


def test_figure3_simulated_second(benchmark, report, bench_json):
    """Wall time for one simulated second of the Figure-3 model."""
    state = {}

    def run_one_second():
        model, top = figure3_capsule_model()
        model.run(until=1.0, sync_interval=0.02)
        state["model"], state["top"] = model, top

    benchmark(run_one_second)
    model, top = state["model"], state["top"]
    assert top.acks == {"s1": True, "s2": True}
    stats = model.stats()
    report("F3: one simulated second", [
        f"messages dispatched: {stats['messages_dispatched']}",
        f"signals capsule->streamer: {stats['signals_to_streamers']}",
        f"signals streamer->capsule: {stats['signals_to_capsules']}",
        f"minor steps: {stats['minor_steps']}",
        f"y1(1) = {model.probe('y1').y_final[0]:.4f}, "
        f"y2(1) = {model.probe('y2').y_final[0]:.4f}",
    ])
    bench_json("f3", {
        "messages_dispatched": stats["messages_dispatched"],
        "signals_to_streamers": stats["signals_to_streamers"],
        "signals_to_capsules": stats["signals_to_capsules"],
        "minor_steps": stats["minor_steps"],
    })
