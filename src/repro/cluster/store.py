"""The shared artifact/checkpoint store: one directory, any worker.

The cluster's durability substrate is a plain filesystem directory that
every worker process (and the coordinator) mounts.  It holds two kinds
of content:

* **Job checkpoint spools** — ``jobs/<job-id>/spool/`` is a
  :class:`~repro.resilience.CheckpointManager`-compatible spool.  Every
  snapshot inside is a CRC-verified ``REPROSNAP`` container carrying the
  job's opt-aware plan fingerprint, so *any* worker can resume *any*
  job: the resuming worker rebuilds the model from the job request,
  recomputes the same fingerprint, and the codec refuses a mismatched
  restore before touching state.  ``cas/<fingerprint>/<job-id>`` marker
  files index spools by content address — the coordinator writes them
  when it harvests a dead worker's spool, so "which jobs of this exact
  compiled plan are resumable?" is a directory listing.

* **Compiled artifacts** — ``artifacts/<k>/<key>.art`` is a
  cross-process content-addressed artifact cache with *single-compile*
  semantics: concurrent :meth:`ArtifactStore.get_or_compile` calls for
  one missing key elect exactly one compiler via an ``O_CREAT|O_EXCL``
  lock file; everyone else waits for the atomically-published artifact.
  Artifacts are CRC-framed, so a torn write is detected, dropped and
  recompiled rather than served.

Everything is written via the write-to-temp + ``os.replace`` discipline,
so a SIGKILL mid-write can never publish a truncated file under a valid
name — the property the kill-and-migrate test leans on.
"""

from __future__ import annotations

import json
import os
import pickle
import time
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.resilience.checkpoint import SUFFIX
from repro.resilience.codec import Snapshot, SnapshotError, decode_snapshot

#: artifact container magic; header is ``REPROART <crc32> <len>\n``
ART_MAGIC = b"REPROART"


class ArtifactStoreError(Exception):
    """Raised on store misconfiguration or an unservable artifact."""


class ArtifactCorruptError(ArtifactStoreError):
    """An artifact failed its magic/CRC integrity checks."""


def encode_artifact(value: Any) -> bytes:
    """Frame a picklable value: magic + CRC-32 + length + payload."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = b"%s %08x %d\n" % (ART_MAGIC, crc, len(payload))
    return header + payload


def decode_artifact(data: bytes) -> Any:
    """Verify the frame and unpickle the payload (raises on corruption)."""
    newline = data.find(b"\n")
    if newline < 0 or not data.startswith(ART_MAGIC + b" "):
        raise ArtifactCorruptError("bad artifact header")
    try:
        __, crc_hex, length = data[:newline].split()
        want_crc = int(crc_hex, 16)
        want_len = int(length)
    except ValueError as exc:
        raise ArtifactCorruptError(f"unparsable artifact header: {exc}")
    payload = data[newline + 1:]
    if len(payload) != want_len:
        raise ArtifactCorruptError(
            f"artifact truncated: {len(payload)} != {want_len} bytes"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != want_crc:
        raise ArtifactCorruptError("artifact CRC mismatch")
    return pickle.loads(payload)


class ArtifactStore:
    """Filesystem-backed shared store for checkpoints and artifacts.

    Safe for concurrent use from many processes on one filesystem: all
    cross-process coordination goes through atomic filesystem primitives
    (``O_EXCL`` lock creation, ``os.replace`` publication), never shared
    memory.  One instance per process is the expected shape; instances
    are cheap (no daemon threads, no open handles held).
    """

    def __init__(
        self,
        root,
        compile_timeout: float = 120.0,
        lock_stale_after: float = 60.0,
    ) -> None:
        if compile_timeout <= 0:
            raise ArtifactStoreError(
                f"compile_timeout must be positive: {compile_timeout}"
            )
        self.root = Path(root)
        self.compile_timeout = compile_timeout
        self.lock_stale_after = lock_stale_after
        self.jobs_dir = self.root / "jobs"
        self.cas_dir = self.root / "cas"
        self.artifacts_dir = self.root / "artifacts"
        for path in (self.jobs_dir, self.cas_dir, self.artifacts_dir):
            path.mkdir(parents=True, exist_ok=True)
        self.compiles = 0
        self.artifact_hits = 0
        self.lock_waits = 0
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------
    # job spools
    # ------------------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        path = self.jobs_dir / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def job_spool(self, job_id: str) -> Path:
        """The CheckpointManager-compatible spool for one job."""
        spool = self.job_dir(job_id) / "spool"
        spool.mkdir(parents=True, exist_ok=True)
        return spool

    def job_ids(self) -> List[str]:
        if not self.jobs_dir.is_dir():
            return []
        return sorted(p.name for p in self.jobs_dir.iterdir() if p.is_dir())

    def checkpoints(self, job_id: str) -> List[Path]:
        """Checkpoint files for a job, oldest first."""
        return sorted((self.jobs_dir / job_id / "spool").glob(
            f"ckpt-*{SUFFIX}"
        ))

    def latest_checkpoint(
        self, job_id: str
    ) -> Optional[Tuple[Path, Snapshot]]:
        """The newest CRC-valid checkpoint of a job, or None.

        Corrupt candidates (torn writes, injected corruption) are
        skipped and counted, exactly like
        :meth:`~repro.resilience.CheckpointManager.load_latest`.
        """
        for path in reversed(self.checkpoints(job_id)):
            try:
                return path, decode_snapshot(path.read_bytes())
            except SnapshotError:
                self.corrupt_dropped += 1
                continue
        return None

    # ------------------------------------------------------------------
    # meta + content-address index
    # ------------------------------------------------------------------
    def write_meta(self, job_id: str, meta: Dict[str, Any]) -> Path:
        path = self.job_dir(job_id) / "meta.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def read_meta(self, job_id: str) -> Dict[str, Any]:
        path = self.jobs_dir / job_id / "meta.json"
        if not path.is_file():
            return {}
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}

    def index_job(self, job_id: str) -> Optional[str]:
        """Harvest a job's fingerprint from its newest checkpoint and
        record the ``cas/<fingerprint>/<job-id>`` marker.

        Returns the fingerprint, or None when the spool holds no valid
        checkpoint yet.  Idempotent; called by workers after a run and
        by the coordinator when it migrates a dead worker's job.
        """
        latest = self.latest_checkpoint(job_id)
        if latest is None:
            return None
        path, snapshot = latest
        fingerprint = snapshot.fingerprint
        marker_dir = self.cas_dir / fingerprint
        marker_dir.mkdir(parents=True, exist_ok=True)
        (marker_dir / job_id).write_text(str(path) + "\n")
        meta = self.read_meta(job_id)
        meta.update({
            "fingerprint": fingerprint,
            "kind": snapshot.kind,
            "last_t": snapshot.t,
            "last_step": snapshot.step,
        })
        self.write_meta(job_id, meta)
        return fingerprint

    def jobs_for(self, fingerprint: str) -> List[str]:
        """Job ids indexed under one plan fingerprint."""
        marker_dir = self.cas_dir / fingerprint
        if not marker_dir.is_dir():
            return []
        return sorted(p.name for p in marker_dir.iterdir() if p.is_file())

    # ------------------------------------------------------------------
    # compiled-artifact CAS (cross-process single compile)
    # ------------------------------------------------------------------
    def _artifact_path(self, key: str) -> Path:
        safe = "".join(
            c if c.isalnum() or c in "-._" else "_" for c in key
        )
        shard = self.artifacts_dir / (safe[:2] or "00")
        shard.mkdir(parents=True, exist_ok=True)
        return shard / f"{safe}.art"

    def has_artifact(self, key: str) -> bool:
        return self._artifact_path(key).is_file()

    def load_artifact(self, key: str) -> Any:
        """Load and CRC-verify one artifact (raises when absent/corrupt)."""
        path = self._artifact_path(key)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise ArtifactStoreError(
                f"no artifact for key {key!r}: {exc}"
            ) from exc
        return decode_artifact(data)

    def put_artifact(self, key: str, value: Any) -> Path:
        """Atomically publish an artifact (overwrites an existing one)."""
        path = self._artifact_path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_bytes(encode_artifact(value))
        os.replace(tmp, path)
        return path

    def get_or_compile(self, key: str, factory: Callable[[], Any]) -> Any:
        """The cached artifact for ``key``, compiling at most once
        *across every process sharing this store directory*.

        The first process to create ``<key>.lock`` (``O_CREAT|O_EXCL``
        — atomic on a local filesystem) runs the factory, publishes the
        artifact with an atomic rename, then removes the lock; everyone
        else polls for the artifact.  A lock older than
        ``lock_stale_after`` seconds is presumed orphaned (its owner was
        SIGKILLed mid-compile) and broken.  A corrupt resident artifact
        is dropped and recompiled instead of served.
        """
        deadline = time.monotonic() + self.compile_timeout
        path = self._artifact_path(key)
        lock = path.with_suffix(".lock")
        waited = False
        while True:
            if path.is_file():
                try:
                    value = self.load_artifact(key)
                except ArtifactCorruptError:
                    self.corrupt_dropped += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
                else:
                    self.artifact_hits += 1
                    return value
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not waited:
                    waited = True
                    self.lock_waits += 1
                self._maybe_break_stale_lock(lock)
                if time.monotonic() > deadline:
                    raise ArtifactStoreError(
                        f"timed out waiting {self.compile_timeout:g}s for "
                        f"artifact {key!r} (lock {lock} held elsewhere)"
                    )
                time.sleep(0.01)
                continue
            try:
                os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
            finally:
                os.close(fd)
            try:
                # the artifact may have been published between our
                # stat and the lock grab — serve it rather than recompile
                if path.is_file():
                    try:
                        value = self.load_artifact(key)
                        self.artifact_hits += 1
                        return value
                    except ArtifactCorruptError:
                        self.corrupt_dropped += 1
                value = factory()
                self.put_artifact(key, value)
                self.compiles += 1
                return value
            finally:
                try:
                    lock.unlink()
                except OSError:
                    pass

    def _maybe_break_stale_lock(self, lock: Path) -> None:
        try:
            age = time.time() - lock.stat().st_mtime
        except OSError:
            return  # already gone
        if age > self.lock_stale_after:
            try:
                lock.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "root": str(self.root),
            "jobs": len(self.job_ids()),
            "compiles": self.compiles,
            "artifact_hits": self.artifact_hits,
            "lock_waits": self.lock_waits,
            "corrupt_dropped": self.corrupt_dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"
