"""Kühl translation: semantics preserved, explosion measured (claim C1)."""

import math

import pytest

from repro.baselines import KuhlTranslation, information_loss, model_size
from repro.baselines.metrics import diagram_features, total_information_loss
from repro.core.model import HybridModel
from repro.dataflow import (
    Constant,
    Diagram,
    FirstOrderLag,
    Gain,
    Integrator,
    PID,
    Step,
    Sum,
)


def lag_diagram():
    d = Diagram("lag")
    d.add(Step("src", amplitude=1.0))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.connect("src.out", "plant.in")
    return d


def pid_diagram():
    d = Diagram("pid_loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=4.0, ki=2.0, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


class TestSemanticPreservation:
    def test_open_loop_matches_analytic(self):
        translation = KuhlTranslation(lag_diagram(), h=0.001,
                                      probe="plant.out")
        translation.run(2.0)
        expected = 1.0 - math.exp(-4.0)
        assert translation.trajectory.y_final[0] == pytest.approx(
            expected, abs=5e-3
        )

    def test_closed_loop_matches_streamer_model(self):
        translation = KuhlTranslation(pid_diagram(), h=0.005,
                                      probe="plant.out")
        translation.run(5.0)

        reference = pid_diagram()
        reference.finalise()
        model = HybridModel("ref")
        model.default_thread.binding.rebind("euler")
        model.default_thread.h = 0.005
        model.add_streamer(reference)
        model.add_probe("y", reference.port_at("plant.out"))
        model.run(until=5.0, sync_interval=0.05)

        assert translation.trajectory.y_final[0] == pytest.approx(
            model.probe("y").y_final[0], abs=0.02
        )


class TestExplosion:
    def test_size_metrics(self):
        translation = KuhlTranslation(pid_diagram(), h=0.01)
        size = translation.size_metrics()
        original = model_size(pid_diagram())
        # the paper: "lots of objects and classes may be generated"
        assert size["capsule_instances"] == size["blocks"] + 1
        assert size["protocols"] >= len(translation.network.edges)
        assert original["capsule_instances"] == 0
        assert original["protocols"] == 0
        assert size["ports"] > size["blocks"] * 2

    def test_messages_scale_with_blocks_and_edges(self):
        translation = KuhlTranslation(pid_diagram(), h=0.01)
        translation.run(1.0)
        metrics = translation.message_metrics(1.0)
        blocks = len(translation.network.order)
        edges = len(translation.network.edges)
        ticks = 100
        # per tick: 1 timeout + blocks tick messages + edges data messages
        expected = ticks * (1 + blocks + edges)
        assert metrics["messages_total"] == pytest.approx(expected, rel=0.05)

    def test_streamer_model_sends_no_dataflow_messages(self):
        reference = pid_diagram()
        reference.finalise()
        model = HybridModel("ref")
        model.add_streamer(reference)
        model.run(until=1.0, sync_interval=0.01)
        assert model.stats()["messages_dispatched"] == 0


class TestInformationLoss:
    def test_features_counted(self):
        features = diagram_features(pid_diagram())
        assert features["blocks"] == 4
        assert features["flows"] == 4
        assert features["stateful_blocks"] == 2  # PID + lag

    def test_loss_positive_for_typed_diagram(self):
        loss = information_loss(pid_diagram())
        assert loss["flow_types_lost"] >= 1
        assert loss["solver_choice_lost"] == 1
        assert total_information_loss(pid_diagram()) >= 2

    def test_fanout_relays_counted_as_loss(self):
        d = Diagram("fan")
        d.add(Constant("c", 1.0))
        d.add(Integrator("i1"))
        d.add(Integrator("i2"))
        d.connect("c.out", "i1.in")
        d.connect("c.out", "i2.in")
        loss = information_loss(d)
        assert loss["relays_lost"] == 1
