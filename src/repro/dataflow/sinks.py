"""Sink blocks: observation and termination.

A :class:`Scope` records its inputs at every sync point into a
:class:`~repro.solvers.history.Trajectory` — the in-diagram alternative to
model-level probes.  :class:`Terminator` absorbs a flow whose value nobody
needs, silencing the W8 unconnected-input warning for symmetric reuse of
composite diagrams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataflow.block import Block
from repro.solvers.history import Trajectory


class Scope(Block):
    """Record N input channels (``in1..inN``) at every sync point."""

    default_outputs = ()

    def __init__(self, name: str, channels: int = 1,
                 labels: Sequence[str] = ()) -> None:
        inputs = [f"in{i + 1}" for i in range(max(1, channels))]
        super().__init__(name, inputs=inputs, outputs=())
        self.channels = max(1, channels)
        self.trajectory = Trajectory(
            labels=list(labels) if labels else inputs
        )

    def on_sync(self, t: float) -> None:
        values = [self.in_scalar(f"in{i + 1}") for i in range(self.channels)]
        self.trajectory.append(t, np.asarray(values))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        pass


class Terminator(Block):
    """Absorb and ignore one input flow."""

    default_inputs = ("in",)
    default_outputs = ()

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        pass
