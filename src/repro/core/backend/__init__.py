"""Execution backends: one registry, one uniform program surface.

Importing this package registers the five built-in backends
(``interpreter``, ``compiled-python``, ``native-c``, ``batch``,
``native-batch``).  See :mod:`repro.core.backend.base` for the contract
and the fallback-ladder resolver :func:`compile_program`.
"""

from repro.core.backend.base import (
    BackendError,
    BackendProgram,
    BackendUnavailable,
    CompileRequest,
    ExecutionBackend,
    FALLBACKS,
    KERNEL_SOLVERS,
    KERNEL_VERSION,
    ProgramResult,
    available_backends,
    compile_program,
    fallback_chain,
    get_backend,
    register_backend,
)
from repro.core.backend.interpreter import (
    InterpreterBackend, InterpreterProgram,
)
from repro.core.backend.pykernel import PyKernelBackend, PyKernelProgram
from repro.core.backend.native import (
    NativeBackend, NativeProgram, default_cache_dir, has_c_compiler,
)
from repro.core.backend.batchentry import BatchBackend, BatchProgramAdapter
from repro.core.backend.nativebatch import (
    NativeBatchAdapter, NativeBatchBackend, NativeBatchKernel,
    default_shards, shard_bounds,
)

__all__ = [
    "BackendError",
    "BackendProgram",
    "BackendUnavailable",
    "BatchBackend",
    "BatchProgramAdapter",
    "CompileRequest",
    "ExecutionBackend",
    "FALLBACKS",
    "InterpreterBackend",
    "InterpreterProgram",
    "KERNEL_SOLVERS",
    "KERNEL_VERSION",
    "NativeBackend",
    "NativeBatchAdapter",
    "NativeBatchBackend",
    "NativeBatchKernel",
    "NativeProgram",
    "ProgramResult",
    "PyKernelBackend",
    "PyKernelProgram",
    "available_backends",
    "compile_program",
    "default_cache_dir",
    "default_shards",
    "fallback_chain",
    "get_backend",
    "has_c_compiler",
    "register_backend",
    "shard_bounds",
]
