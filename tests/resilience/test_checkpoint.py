"""Checkpoint manager: intervals, atomicity, retention, corrupt fallback."""

from __future__ import annotations

import os

import pytest

from tests.resilience.conftest import (
    assert_probes_bitwise, build_control_model, reference_run,
    run_until_crash,
)

from repro.resilience import (
    CheckpointError, CheckpointManager, FaultInjector, SnapshotCodec,
)
from repro.resilience.checkpoint import SUFFIX
from repro.service.telemetry import MetricsRegistry


class TestConfiguration:
    def test_rejects_bad_intervals(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, every_steps=0)
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, every_steps=None)
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, every_steps=None, every_sim_time=-1)
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)

    def test_creates_spool_dir(self, tmp_path):
        spool = tmp_path / "a" / "b"
        CheckpointManager(spool)
        assert spool.is_dir()


class TestPeriodicSaves:
    def test_step_interval_and_retention(self, tmp_path):
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        manager = CheckpointManager(tmp_path, every_steps=25, keep=3)
        manager.attach(scheduler)
        scheduler.run(2.0)  # 200 major steps -> 8 saves, 3 kept
        assert manager.saves == 8
        files = manager.checkpoints()
        assert len(files) == 3
        steps = [int(p.stem.split("-")[1]) for p in files]
        assert steps == [150, 175, 200]
        # no tmp litter: every write was atomically published
        assert not list(tmp_path.glob("*.tmp"))

    def test_sim_time_interval(self, tmp_path):
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        manager = CheckpointManager(
            tmp_path, every_steps=None, every_sim_time=0.5, keep=10,
        )
        manager.attach(scheduler)
        scheduler.run(2.0)
        # saves near t = 0.5, 1.0, 1.5; the final major step is clamped
        # to exactly t_end so the last elapsed window is a hair short
        assert manager.saves == 3

    def test_observed_run_is_unperturbed(self, tmp_path):
        reference = reference_run(2.0)
        observed = build_control_model()
        scheduler = observed.scheduler(sync_interval=0.01)
        CheckpointManager(tmp_path, every_steps=20).attach(scheduler)
        scheduler.run(2.0)
        assert_probes_bitwise(reference, observed)

    def test_metrics_recorded(self, tmp_path):
        metrics = MetricsRegistry()
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        CheckpointManager(
            tmp_path, every_steps=50, metrics=metrics,
        ).attach(scheduler)
        scheduler.run(1.0)
        snap = metrics.snapshot()
        assert snap["counters"]["checkpoint.saves"] == 2
        assert snap["histograms"]["checkpoint.bytes"]["count"] == 2


class TestLoad:
    def make_spool(self, tmp_path, every=30, t_end=2.0):
        model = build_control_model()
        scheduler = run_until_crash(model, 10.0, crash_step=100)
        manager = CheckpointManager(tmp_path, every_steps=every, keep=3)
        # simulate the periodic saves having happened by saving now
        manager.save(scheduler)
        return manager, scheduler

    def test_load_latest_round_trips(self, tmp_path):
        manager, scheduler = self.make_spool(tmp_path)
        loaded = manager.load_latest()
        assert loaded is not None
        path, snapshot = loaded
        assert snapshot.step == scheduler.major_steps
        assert snapshot.fingerprint == SnapshotCodec().fingerprint(scheduler)

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        manager = CheckpointManager(tmp_path, every_steps=40, keep=3)
        manager.attach(scheduler)
        scheduler.run(1.6)  # saves at 40, 80, 120, 160 -> keep 80..160
        newest = manager.checkpoints()[-1]
        FaultInjector(seed=3).corrupt_checkpoint(tmp_path)
        path, snapshot = manager.load_latest()
        assert path != newest
        assert snapshot.step == 120
        assert manager.corrupt_skipped == 1

    def test_empty_spool_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.load_latest() is None

    def test_foreign_file_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        (tmp_path / f"ckpt-000000000001{SUFFIX}").write_bytes(b"junk")
        assert manager.load_latest() is None
        assert manager.corrupt_skipped == 1

    def test_resume_from_periodic_checkpoint_is_bitwise(self, tmp_path):
        reference = reference_run(2.0)
        crashed = build_control_model()
        scheduler = crashed.scheduler(sync_interval=0.01)
        manager = CheckpointManager(tmp_path, every_steps=30, keep=2)
        manager.attach(scheduler)

        inner = scheduler.on_major_step

        def crash(t_now):
            inner(t_now)
            if scheduler.major_steps >= 130:
                raise RuntimeError("boom")

        scheduler.on_major_step = crash
        with pytest.raises(RuntimeError):
            scheduler.run(2.0)
        del crashed, scheduler

        __, snapshot = manager.load_latest()
        assert snapshot.step == 120  # newest interval before the crash
        resumed = build_control_model()
        fresh = resumed.scheduler(sync_interval=0.01)
        manager.codec.restore(fresh, snapshot)
        fresh.run(2.0)
        assert_probes_bitwise(reference, resumed)

    def test_note_restore_delays_next_save(self, tmp_path):
        model = build_control_model()
        scheduler = run_until_crash(model, 10.0, crash_step=100)
        manager = CheckpointManager(tmp_path, every_steps=50)
        manager.note_restore(scheduler)
        assert not manager.due(scheduler)
