"""Baselines: the two prior approaches the paper argues against.

The paper's introduction dismisses two alternatives for unifying hybrid
control modelling on UML-RT; both are implemented here so the claims can
be *measured* instead of asserted:

* :mod:`repro.baselines.kuhl` — Kühl et al. (RSP'01): translate the
  Simulink-style dataflow diagram into plain UML-RT capsules.  The paper:
  "lots of objects and classes may be generated, and some information may
  be lost."  Benchmark C1 counts exactly that.
* :mod:`repro.baselines.bichler` — Bichler et al. (RTS journal 26):
  attach directed equations to capsule states, i.e. integrate inside the
  discrete machinery.  The paper: "because UML is a foundational discrete
  language, this method doesn't work efficiently."  Benchmark C2 measures
  the per-step dispatch overhead and timing degradation.
* :mod:`repro.baselines.metrics` — model-size / message / information-
  loss metrics shared by both comparisons.
"""

from repro.baselines.kuhl import KuhlTranslation
from repro.baselines.bichler import BichlerModel
from repro.baselines.metrics import (
    diagram_features,
    information_loss,
    model_size,
)

__all__ = [
    "BichlerModel",
    "KuhlTranslation",
    "diagram_features",
    "information_loss",
    "model_size",
]
