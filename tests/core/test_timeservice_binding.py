"""The Time stereotype (W11) and the solver Strategy binding (Figure 1)."""

import numpy as np
import pytest

from repro.core.solverbinding import SolverBinding
from repro.core.timeservice import ContinuousTime, TimeError
from repro.solvers import RK4, Euler


class TestContinuousTime:
    def test_monotone_advance(self):
        time = ContinuousTime()
        time.advance_to(1.0)
        time.advance_by(0.5)
        assert time.now == 1.5
        assert time.elapsed == 1.5

    def test_backwards_rejected(self):
        time = ContinuousTime()
        time.advance_to(2.0)
        with pytest.raises(TimeError, match="W11"):
            time.advance_to(1.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(TimeError):
            ContinuousTime().advance_by(-0.1)

    def test_scaled_time(self):
        time = ContinuousTime(scale=60.0)  # minutes
        time.advance_to(2.0)
        assert time.now == 120.0
        assert time.raw == 2.0

    def test_bad_scale(self):
        with pytest.raises(TimeError):
            ContinuousTime(scale=0.0)

    def test_nonzero_origin(self):
        time = ContinuousTime(t0=10.0)
        time.advance_to(12.0)
        assert time.elapsed == 2.0

    def test_audit_trail(self):
        time = ContinuousTime()
        time.audit_enabled = True
        time.advance_to(1.0)
        time.advance_to(2.0)
        assert time.audit_trail() == [(0.0, 1.0), (1.0, 2.0)]
        assert time.is_monotone()
        assert time.advancements == 2

    def test_zero_advance_allowed(self):
        time = ContinuousTime()
        time.advance_to(0.0)  # staying put is monotone


class TestSolverBinding:
    def test_bind_by_name(self):
        binding = SolverBinding("euler")
        assert binding.strategy_name == "euler"

    def test_bind_by_instance(self):
        binding = SolverBinding(RK4())
        assert binding.strategy_name == "rk4"

    def test_kwargs_with_instance_rejected(self):
        with pytest.raises(ValueError):
            SolverBinding(RK4(), rtol=1e-3)

    def test_hot_swap(self):
        """The Figure-1 Strategy pattern: concrete solvers interchange."""
        binding = SolverBinding("euler")
        previous = binding.rebind("rk4")
        assert isinstance(previous, Euler)
        assert binding.strategy_name == "rk4"
        assert binding.swaps == 1

    def test_swap_preserves_external_state(self):
        """Continuous state lives outside the strategy, so swapping
        mid-integration continues seamlessly."""
        f = lambda t, y: -y  # noqa: E731
        binding = SolverBinding("euler")
        y = np.array([1.0])
        result = binding.step(f, 0.0, y, 0.1)
        binding.rebind("rk4")
        result = binding.step(f, result.t, result.y, 0.1)
        assert 0.0 < result.y[0] < 1.0
        assert binding.steps_taken == 2
        assert binding.time_integrated == pytest.approx(0.2)

    def test_solver_kwargs_forwarded(self):
        binding = SolverBinding("rk45", rtol=1e-3)
        assert binding.solver.rtol == 1e-3
