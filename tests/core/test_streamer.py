"""Streamer structure: ports, nesting, flows, hooks (rules W3, W6)."""

import numpy as np
import pytest

from tests.conftest import PING, ConstLeaf, GainLeaf, IntegratorLeaf

from repro.core.dport import Direction
from repro.core.flowtype import SCALAR
from repro.core.streamer import Streamer, StreamerError
from repro.umlrt.capsule import Capsule


class TestPorts:
    def test_add_dports(self):
        streamer = Streamer("s")
        streamer.add_in("u", SCALAR)
        streamer.add_out("y", SCALAR)
        assert streamer.dport("u").is_in
        assert streamer.dport("y").is_out

    def test_duplicate_dport(self):
        streamer = Streamer("s")
        streamer.add_in("u", SCALAR)
        with pytest.raises(StreamerError):
            streamer.add_out("u", SCALAR)

    def test_unknown_dport(self):
        with pytest.raises(StreamerError):
            Streamer("s").dport("ghost")

    def test_sport_needs_role(self):
        streamer = Streamer("s")
        sport = streamer.add_sport("ctl", PING.conjugate())
        assert sport.role.receives == {"ping"}
        with pytest.raises(StreamerError):
            streamer.add_sport("ctl", PING.conjugate())

    def test_boundary_is_relay_only(self):
        streamer = Streamer("s")
        boundary = streamer.add_boundary("b", Direction.IN, SCALAR)
        assert boundary.relay_only


class TestNesting:
    def test_sub_streamers(self):
        top = Streamer("top")
        sub = top.add_sub(Streamer("sub"))
        subsub = sub.add_sub(Streamer("subsub"))
        assert top.sub("sub") is sub
        assert subsub.path() == "top.sub.subsub"
        assert top.is_composite and not subsub.is_composite

    def test_leaves(self):
        top = Streamer("top")
        a = top.add_sub(ConstLeaf("a"))
        mid = top.add_sub(Streamer("mid"))
        b = mid.add_sub(ConstLeaf("b"))
        assert top.leaves() == [a, b]

    def test_leaf_of_itself(self):
        leaf = ConstLeaf("x")
        assert leaf.leaves() == [leaf]

    def test_duplicate_sub(self):
        top = Streamer("top")
        top.add_sub(Streamer("sub"))
        with pytest.raises(StreamerError):
            top.add_sub(Streamer("sub"))

    def test_reparenting_rejected(self):
        a, b = Streamer("a"), Streamer("b")
        child = Streamer("child")
        a.add_sub(child)
        with pytest.raises(StreamerError):
            b.add_sub(child)

    def test_capsule_containment_rejected(self):
        """W6: streamers never contain capsules."""
        top = Streamer("top")
        with pytest.raises(StreamerError, match="W6"):
            top.add_sub(Capsule("nope"))

    def test_empty_name_rejected(self):
        with pytest.raises(StreamerError):
            Streamer("")


class TestFlowsAndRelays:
    def test_internal_flow(self):
        top = Streamer("top")
        a = top.add_sub(ConstLeaf("a", 2.0))
        b = top.add_sub(GainLeaf("b"))
        flow = top.add_flow(a.dport("y"), b.dport("u"))
        assert top.all_flows() == [flow]

    def test_flows_collected_recursively(self):
        top = Streamer("top")
        mid = top.add_sub(Streamer("mid"))
        a = mid.add_sub(ConstLeaf("a"))
        b = mid.add_sub(GainLeaf("b"))
        mid.add_flow(a.dport("y"), b.dport("u"))
        assert len(top.all_flows()) == 1

    def test_relay_registry(self):
        top = Streamer("top")
        relay = top.add_relay("split", SCALAR)
        assert top.all_relays() == [relay]
        with pytest.raises(StreamerError):
            top.add_relay("split", SCALAR)


class TestNumericHooks:
    def test_default_hooks(self):
        streamer = Streamer("s")
        assert streamer.initial_state().shape == (0,)
        assert streamer.derivatives(0.0, np.empty(0)).shape == (0,)
        assert streamer.zero_crossings(0.0, np.empty(0)) == ()

    def test_stateful_without_derivatives_raises(self):
        class Broken(Streamer):
            state_size = 2

        with pytest.raises(StreamerError, match="derivatives"):
            Broken("b").derivatives(0.0, np.zeros(2))

    def test_scalar_helpers(self):
        leaf = GainLeaf("g", k=3.0)
        leaf.dport("u")._store(2.0)
        leaf.compute_outputs(0.0, np.empty(0))
        assert leaf.dport("y").read_scalar() == 6.0

    def test_state_reset_request(self):
        leaf = IntegratorLeaf("i")
        leaf.request_state_reset([5.0])
        assert leaf.consume_state_reset().tolist() == [5.0]
        assert leaf.consume_state_reset() is None

    def test_state_reset_shape_checked(self):
        leaf = IntegratorLeaf("i")
        with pytest.raises(StreamerError):
            leaf.request_state_reset([1.0, 2.0])
