"""Frame service: dynamic structure.

UML-RT's frame service lets a running capsule incarnate capsules into
``OPTIONAL`` parts, plug externally created capsules into ``PLUGIN`` parts,
and destroy them again.  Destruction recursively tears down sub-parts,
cancels nothing by itself (timers owned by destroyed capsules are cancelled
by the runtime) and unlinks every port so later sends fail loudly instead
of delivering to a dead capsule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.umlrt.capsule import Capsule, PartKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.umlrt.runtime import RTSystem


class FrameError(Exception):
    """Raised on illegal incarnate/destroy operations."""


class FrameService:
    """Runtime facade for dynamic capsule structure."""

    def __init__(self, runtime: "RTSystem") -> None:
        self._runtime = runtime
        self.incarnated = 0
        self.destroyed = 0

    def incarnate(
        self, parent: Capsule, part_name: str, **factory_kwargs: Any
    ) -> Capsule:
        """Create a capsule in an OPTIONAL part and start it immediately."""
        part = parent.part(part_name)
        if part.kind is not PartKind.OPTIONAL:
            raise FrameError(
                f"part {part_name!r} of {parent.instance_name} is "
                f"{part.kind.value}, only optional parts can be incarnated"
            )
        if part.occupied:
            raise FrameError(
                f"part {part_name!r} of {parent.instance_name} is occupied"
            )
        instance = parent._incarnate_part(part, **factory_kwargs)
        self._runtime.adopt(instance, parent.controller)
        instance._start()
        self.incarnated += 1
        return instance

    def plug_in(self, parent: Capsule, part_name: str, capsule: Capsule) -> None:
        """Plug an externally created capsule into a PLUGIN part."""
        part = parent.part(part_name)
        if part.kind is not PartKind.PLUGIN:
            raise FrameError(
                f"part {part_name!r} of {parent.instance_name} is "
                f"{part.kind.value}, only plugin parts accept plug_in"
            )
        if part.occupied:
            raise FrameError(
                f"part {part_name!r} of {parent.instance_name} is occupied"
            )
        if not isinstance(capsule, part.capsule_class):
            raise FrameError(
                f"plugin capsule must be a {part.capsule_class.__name__}, "
                f"got {type(capsule).__name__}"
            )
        capsule.parent = parent
        part.instance = capsule
        capsule._build()
        self._runtime.adopt(capsule, parent.controller)
        capsule._start()
        self.incarnated += 1

    def destroy(self, parent: Capsule, part_name: str) -> None:
        """Destroy the capsule occupying a part (recursively)."""
        part = parent.part(part_name)
        if part.instance is None:
            raise FrameError(
                f"part {part_name!r} of {parent.instance_name} is empty"
            )
        self._teardown(part.instance)
        part.instance = None
        self.destroyed += 1

    def _teardown(self, capsule: Capsule) -> None:
        for sub in capsule.parts.values():
            if sub.instance is not None:
                self._teardown(sub.instance)
                sub.instance = None
        for port in capsule.ports.values():
            for peer in list(port.links):
                port.unlink(peer)
        self._runtime.abandon(capsule)
