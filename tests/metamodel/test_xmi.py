"""XMI serialisation round trips."""

import pytest

from repro.metamodel import figure1_package, from_xmi, to_xmi
from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Classifier,
    Multiplicity,
    Operation,
    Package,
)
from repro.metamodel.xmi import XMIError


def sample_package():
    pkg = Package("sample")
    cls = Classifier("Controller", stereotypes=("capsule",))
    cls.add_attribute(Attribute("gain", "float", "-", Multiplicity(1, 1)))
    cls.add_operation(Operation("step", parameters=("dt",),
                                return_type="void"))
    pkg.add_class(cls)
    pkg.add_class(Classifier("Base", abstract=True))
    pkg.add_generalization("Controller", "Base")
    pkg.add_association(Association(
        "owns",
        AssociationEnd("Base", multiplicity=Multiplicity(1, 1)),
        AssociationEnd("Controller", role="ctl",
                       multiplicity=Multiplicity.parse("*"),
                       aggregation="composite"),
    ))
    return pkg


class TestRoundTrip:
    def test_classifiers(self):
        restored = from_xmi(to_xmi(sample_package()))
        assert set(restored.classifiers) == {"Controller", "Base"}
        assert restored.classifier("Base").abstract
        assert restored.classifier("Controller").stereotypes == ["capsule"]

    def test_attributes_and_operations(self):
        restored = from_xmi(to_xmi(sample_package()))
        ctl = restored.classifier("Controller")
        assert ctl.attributes[0].name == "gain"
        assert ctl.attributes[0].type_name == "float"
        assert ctl.operations[0].name == "step"
        assert ctl.operations[0].parameters == ("dt",)

    def test_generalizations(self):
        restored = from_xmi(to_xmi(sample_package()))
        assert restored.children_of("Base") == ["Controller"]

    def test_associations(self):
        restored = from_xmi(to_xmi(sample_package()))
        assoc = restored.associations[0]
        assert assoc.name == "owns"
        assert assoc.end2.role == "ctl"
        assert str(assoc.end2.multiplicity) == "*"
        assert assoc.end2.aggregation == "composite"

    def test_figure1_round_trip(self):
        pkg = figure1_package()
        restored = from_xmi(to_xmi(pkg))
        assert set(restored.classifiers) == set(pkg.classifiers)
        assert len(restored.associations) == len(pkg.associations)
        assert restored.generalizations == pkg.generalizations

    def test_double_round_trip_stable(self):
        once = to_xmi(sample_package())
        twice = to_xmi(from_xmi(once))
        assert once == twice


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(XMIError):
            from_xmi("<not xml")

    def test_missing_package(self):
        with pytest.raises(XMIError):
            from_xmi("<root/>")
