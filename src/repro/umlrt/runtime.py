"""The UML-RT runtime system: a deterministic discrete-event executor.

:class:`RTSystem` owns controllers (logical threads), a logical clock, the
timing service and the frame service.  Execution model:

1. While any controller has pending messages, dispatch the globally most
   urgent one (priority, then timestamp, then send order).  Each dispatch
   is one run-to-completion step of the target capsule.
2. When every controller is idle, advance the clock to the earliest timer
   expiry, deliver the due ``timeout`` messages, and continue.
3. Stop at quiescence (no messages, no timers), at ``until`` time, or at
   ``max_steps`` dispatches.

Serialising controllers by global message order preserves the observable
semantics of concurrent controllers (each capsule still sees a totally
ordered message stream) while making runs bit-reproducible, which the test
suite and benchmarks rely on.  The hybrid layer (:mod:`repro.core.hybrid`)
drives this runtime in bounded slices, interleaving continuous integration
between discrete activity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.umlrt.capsule import Capsule
from repro.umlrt.controller import Controller
from repro.umlrt.frame import FrameService
from repro.umlrt.port import Port, PortError
from repro.umlrt.signal import Message, Priority
from repro.umlrt.timing import TimingService


class RTRuntimeError(Exception):
    """Raised on illegal runtime operations (name avoids the builtin)."""


def __getattr__(name: str) -> Any:
    # deprecated alias kept importable for old callers; the module-level
    # __getattr__ lets us warn on *use* instead of at import time
    if name == "RuntimeError_":
        import warnings

        warnings.warn(
            "repro.umlrt.RuntimeError_ is deprecated; use "
            "RTRuntimeError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return RTRuntimeError
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


class RTSystem:
    """A complete executable UML-RT system."""

    def __init__(self, name: str = "system") -> None:
        self.name = name
        self.now: float = 0.0
        #: synthetic CPU time added to the clock per dispatched message.
        #: 0 models an infinitely fast processor (pure logical time);
        #: > 0 makes queueing delay — and hence UML-RT timer jitter, the
        #: paper's "unpredictable timing" — observable (bench C3).
        self.dispatch_cost: float = 0.0
        self.controllers: List[Controller] = []
        self.default_controller = self.create_controller("main")
        self.timing = TimingService(self)
        self.frame = FrameService(self)
        self.tops: List[Capsule] = []
        self._capsules: Dict[int, Capsule] = {}
        self.started = False
        self.total_dispatched = 0
        self.messages_to_dead = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def create_controller(self, name: str) -> Controller:
        if any(c.name == name for c in self.controllers):
            raise RTRuntimeError(f"duplicate controller name {name!r}")
        controller = Controller(name)
        self.controllers.append(controller)
        return controller

    def add_top(
        self, capsule: Capsule, controller: Optional[Controller] = None
    ) -> Capsule:
        """Register a top-level capsule (builds its fixed structure)."""
        if self.started:
            raise RTRuntimeError("cannot add top capsules after start()")
        self.tops.append(capsule)
        capsule._build()
        self.adopt(capsule, controller or self.default_controller)
        return capsule

    def adopt(
        self, capsule: Capsule, controller: Optional[Controller]
    ) -> None:
        """Attach a capsule tree to this runtime and a controller."""
        target = controller or self.default_controller
        for instance in [capsule] + capsule.descendants():
            instance.runtime = self
            if instance.controller is None:
                target_ctrl = target if instance is capsule else (
                    instance.parent.controller or target
                    if instance.parent is not None
                    else target
                )
                target_ctrl.assign(instance)
            self._capsules[id(instance)] = instance

    def abandon(self, capsule: Capsule) -> None:
        """Detach a (destroyed) capsule from the runtime."""
        self._capsules.pop(id(capsule), None)
        if capsule.controller is not None:
            try:
                capsule.controller.capsules.remove(capsule)
            except ValueError:
                pass
        capsule.runtime = None
        capsule.controller = None

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def deliver(self, endpoint: Port, message: Message) -> None:
        """Queue ``message`` on the endpoint capsule's controller."""
        owner = endpoint.owner
        if owner is None or id(owner) not in self._capsules:
            self.messages_to_dead += 1
            return
        if owner.controller is None:
            raise RTRuntimeError(
                f"capsule {owner.instance_name} has no controller"
            )
        message.port = endpoint
        owner.controller.enqueue(owner, message)

    def inject(
        self,
        port: Port,
        signal: str,
        data: Any = None,
        priority: Priority = Priority.GENERAL,
    ) -> None:
        """Deliver a message straight to an end port (test/environment hook).

        Unlike :meth:`Port.send` this bypasses role send-checks on the
        sender side but still validates that the receiving role accepts the
        signal.
        """
        if signal not in port.role.receives:
            raise PortError(
                f"port {port.qualified_name} (role {port.role.name}) does "
                f"not receive {signal!r}"
            )
        self.deliver(
            port,
            Message(
                signal=signal,
                data=data,
                priority=priority,
                timestamp=self.now,
                port=port,
            ),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every top capsule (enters initial states, runs on_start)."""
        if self.started:
            raise RTRuntimeError("system already started")
        self.started = True
        for top in self.tops:
            top._start()

    def _busiest_controller(self) -> Optional[Controller]:
        best: Optional[Controller] = None
        best_key: Optional[tuple] = None
        for controller in self.controllers:
            key = controller.peek_key()
            if key is None:
                continue
            if best_key is None or key < best_key:
                best, best_key = controller, key
        return best

    def step(self) -> bool:
        """Dispatch one message system-wide.  True if one was dispatched."""
        controller = self._busiest_controller()
        if controller is None:
            return False
        controller.dispatch_one()
        self.total_dispatched += 1
        if self.dispatch_cost:
            self.now += self.dispatch_cost
        return True

    def drain(self, max_steps: Optional[int] = None) -> int:
        """Dispatch messages until every controller is idle."""
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return steps

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
    ) -> int:
        """Run to quiescence or to logical time ``until``.

        Returns the number of messages dispatched.  Timer expiries advance
        the logical clock; the clock never moves past ``until``.
        """
        if not self.started:
            self.start()
        dispatched = 0
        while True:
            dispatched += self.drain(
                None if max_steps is None else max_steps - dispatched
            )
            if max_steps is not None and dispatched >= max_steps:
                break
            expiry = self.timing.next_expiry()
            if expiry is None:
                break
            if until is not None and expiry > until:
                self.now = until
                break
            self.now = max(self.now, expiry)
            self.timing.fire_due(self.now)
        if until is not None and max_steps is None:
            self.now = max(self.now, until)
        return dispatched

    def advance_to(self, time: float) -> int:
        """Advance the clock to ``time``, firing due timers and draining.

        Used by the hybrid scheduler to run the discrete world in bounded
        slices.  Returns messages dispatched.  With a non-zero
        ``dispatch_cost`` the clock may already have overrun ``time``
        (processing overload); the call then just drains and keeps the
        later clock value.
        """
        target = max(time, self.now)
        dispatched = self.drain()
        while True:
            expiry = self.timing.next_expiry()
            if expiry is None or expiry > target:
                break
            self.now = max(self.now, expiry)
            self.timing.fire_due(self.now)
            dispatched += self.drain()
            target = max(target, self.now)
        self.now = max(self.now, target)
        return dispatched

    def quiescent(self) -> bool:
        """True if no messages are pending and no timers are scheduled."""
        return (
            all(c.idle for c in self.controllers)
            and self.timing.next_expiry() is None
        )

    def capsule_count(self) -> int:
        return len(self._capsules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RTSystem({self.name!r}, t={self.now}, "
            f"capsules={self.capsule_count()}, "
            f"controllers={len(self.controllers)})"
        )
