"""Independent verification of network ordering against networkx.

networkx is not a runtime dependency; it serves as an oracle for the
flattener's topological sort and cycle detection on random DAGs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

networkx = pytest.importorskip("networkx")

from tests.conftest import GainLeaf  # noqa: E402

from repro.core.network import FlatNetwork, NetworkError  # noqa: E402
from repro.core.streamer import Streamer  # noqa: E402


@st.composite
def random_edge_sets(draw):
    """Random directed graphs over 3-8 nodes (may contain cycles)."""
    n = draw(st.integers(min_value=3, max_value=8))
    n_edges = draw(st.integers(min_value=0, max_value=min(10, n * 2)))
    edges = set()
    for __ in range(n_edges):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((a, b))
    return n, sorted(edges)


def build_gain_graph(n, edges):
    """All-feedthrough graph; each node has one 'u' input per... no —
    a node can have at most one driver (W8), so keep only the first
    in-edge per target."""
    top = Streamer("top")
    nodes = [top.add_sub(GainLeaf(f"g{i}")) for i in range(n)]
    used_targets = set()
    kept = []
    for a, b in edges:
        if b in used_targets:
            continue
        used_targets.add(b)
        top.add_flow(nodes[a].dport("y"), nodes[b].dport("u"))
        kept.append((a, b))
    return top, kept


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(random_edge_sets())
    def test_cycle_detection_matches(self, spec):
        n, edges = spec
        top, kept = build_gain_graph(n, edges)
        graph = networkx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(kept)
        has_cycle = not networkx.is_directed_acyclic_graph(graph)
        if has_cycle:
            with pytest.raises(NetworkError, match="W12"):
                FlatNetwork([top])
        else:
            FlatNetwork([top])  # must not raise

    @settings(max_examples=60, deadline=None)
    @given(random_edge_sets())
    def test_order_is_a_valid_topological_sort(self, spec):
        n, edges = spec
        top, kept = build_gain_graph(n, edges)
        graph = networkx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(kept)
        if not networkx.is_directed_acyclic_graph(graph):
            return  # covered by the other test
        network = FlatNetwork([top])
        position = {
            leaf.name: index for index, leaf in enumerate(network.order)
        }
        for a, b in kept:
            assert position[f"g{a}"] < position[f"g{b}"], (a, b)
