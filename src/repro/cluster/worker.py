"""The cluster worker: a slimmed JobEngine loop in its own OS process.

One worker is one process running this module's :func:`worker_main`.
The protocol with the coordinator is a queue, a pipe and a shared
integer:

* ``feed`` (coordinator → worker): ``(MSG_JOB, envelope)`` dispatches
  one :class:`JobEnvelope`; ``(MSG_STOP,)`` ends the loop.
* ``outbox`` (worker → coordinator, one private pipe per worker):
  ``(MSG_READY, wid)`` requests work — the pull that drives the
  coordinator's deque/steal logic; ``(MSG_STARTED, …)``,
  ``(MSG_EVENT, …)`` and ``(MSG_DONE, …)`` report progress.  A pipe
  with a single writer, *not* a shared queue: a queue's cross-process
  write lock is a shared semaphore, and a worker SIGKILLed mid-``put``
  would leave it held forever, wedging every other worker's reports.
  A killed worker can only ever corrupt its own pipe, which the
  coordinator detects and discards.
* ``cancel_cell`` (a shared int64): the coordinator writes the *epoch*
  of the job it wants cancelled; the running job observes it at its
  next cooperative checkpoint.  Epochs are unique per dispatch, so a
  cancel can never hit the wrong job.

Execution reuses the service job specs verbatim — the worker rebuilds
the spec from the request (:func:`~repro.cluster.requests.build_spec`)
with its checkpoint spool pointed into the shared store, keeps a warm
per-process :class:`~repro.service.cache.PlanCache`, and mirrors the
engine's retry-with-backoff semantics for ``TransientJobError``.  A
re-dispatched envelope arrives with ``attempt > 1``, which is exactly
the condition the specs' resume machinery keys on: the new worker loads
the newest valid checkpoint from the store spool and continues —
bitwise, for fixed-step plans — where the dead worker stopped.

Every telemetry event a job emits is forwarded to the coordinator over
the outbox (no more in-worker black holes), and each DONE message
carries a :meth:`~repro.service.telemetry.MetricsRegistry.dump` of the
job-scoped metrics for the coordinator to merge.
"""

from __future__ import annotations

import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cluster.requests import ClusterJobRequest, build_spec
from repro.cluster.store import ArtifactStore
from repro.service.cache import PlanCache
from repro.service.jobs import (
    JobCancelledError, JobContext, JobState, JobTimeoutError,
    TransientJobError,
)
from repro.service.telemetry import EventEmitter, MetricsRegistry

#: wire message tags (worker <-> coordinator)
MSG_READY = "ready"
MSG_STARTED = "started"
MSG_EVENT = "event"
MSG_DONE = "done"
MSG_JOB = "job"
MSG_STOP = "stop"


@dataclass
class JobEnvelope:
    """One dispatched job as it rides the feed queue."""

    job_id: str
    request: ClusterJobRequest
    #: attempt number the worker starts at (migrations bump it, which is
    #: what arms checkpoint resume on the receiving worker)
    attempt: int = 1
    #: unique per-dispatch token; the cancel cell speaks in epochs
    epoch: int = 0
    #: wall-clock budget remaining at dispatch (None: no deadline)
    deadline_remaining: Optional[float] = None
    #: coordinator-side submission timestamp (diagnostics only)
    submitted_at: float = field(default_factory=time.monotonic)


class _ForwardChannel:
    """Channel-shaped shim that forwards pushed events to the outbox."""

    __slots__ = ("_outbox", "_worker_id", "_job_id")

    def __init__(self, outbox, worker_id: int, job_id: str) -> None:
        self._outbox = outbox
        self._worker_id = worker_id
        self._job_id = job_id

    def push(self, event: Any) -> bool:
        self._outbox.send(
            (MSG_EVENT, self._worker_id, self._job_id, event)
        )
        return True

    def close(self) -> None:  # channel protocol; end-of-stream is DONE
        pass


class _WorkerHandle:
    """The slice of a JobHandle a running spec actually reads:
    identity, attempt count, deadline and cooperative cancellation
    (backed by the shared cancel cell instead of a threading.Event)."""

    def __init__(
        self,
        job_id: str,
        spec,
        attempts: int,
        epoch: int,
        cancel_cell,
        deadline_remaining: Optional[float],
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.attempts = attempts
        self.state = JobState.RUNNING
        self._epoch = epoch
        self._cancel_cell = cancel_cell
        self._deadline_at = (
            None if deadline_remaining is None
            else time.monotonic() + deadline_remaining
        )

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_cell.value == self._epoch

    @property
    def deadline_at(self) -> Optional[float]:
        return self._deadline_at


class _WorkerServices:
    """Per-job service view: a warm per-process plan cache shared across
    jobs, fresh job-scoped metrics (dumped back to the coordinator) and
    the cluster default opt level."""

    def __init__(self, cache: PlanCache, default_opt_level: int) -> None:
        self.cache = cache
        self.metrics = MetricsRegistry()
        self.default_opt_level = default_opt_level


def _execute_with_retries(
    spec, handle: _WorkerHandle, ctx: JobContext
) -> Any:
    """Mirror JobEngine._run_job's retry loop, worker-process edition.

    Local retries bump ``handle.attempts`` so a TransientJobError on
    attempt 1 resumes from the spool on attempt 2 — same semantics as
    the in-process engine, same bitwise guarantee.
    """
    first_attempt = handle.attempts
    local = 0
    while True:
        handle.attempts = first_attempt + local
        try:
            return spec.execute(ctx)
        except TransientJobError:
            if local >= spec.retries:
                raise
            local += 1
            delay = spec.backoff * (2 ** (local - 1))
            wake_at = time.monotonic() + delay
            while time.monotonic() < wake_at:
                if handle.cancel_requested:
                    raise JobCancelledError(
                        f"job {handle.id} cancelled during backoff"
                    )
                time.sleep(min(0.01, wake_at - time.monotonic()))


def worker_main(
    worker_id: int,
    feed,
    outbox,
    cancel_cell,
    store_root: str,
    default_opt_level: int = 0,
    cache_capacity: int = 64,
) -> None:
    """The worker process entry point: pull, execute, report, repeat."""
    store = ArtifactStore(store_root)
    cache = PlanCache(capacity=cache_capacity)
    jobs_done = 0
    while True:
        outbox.send((MSG_READY, worker_id))
        message = feed.get()
        if not message or message[0] == MSG_STOP:
            return
        envelope: JobEnvelope = message[1]
        job_id = envelope.job_id
        outbox.send((MSG_STARTED, worker_id, job_id, envelope.attempt))
        started = time.monotonic()
        services = _WorkerServices(cache, default_opt_level)
        state, result, error = _run_envelope(
            worker_id, envelope, outbox, cancel_cell, store, services,
        )
        jobs_done += 1
        wall = time.monotonic() - started
        # pre-pickle the result so a non-picklable payload degrades to a
        # clean failure here instead of a hang in the queue feeder thread
        result_bytes = b""
        if state is JobState.DONE:
            try:
                result_bytes = pickle.dumps(
                    result, protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception as exc:
                state = JobState.FAILED
                error = f"result not picklable: {exc}"
        outbox.send((
            MSG_DONE, worker_id, job_id, state.value, result_bytes,
            error, services.metrics.dump(), wall,
        ))


def _run_envelope(
    worker_id: int,
    envelope: JobEnvelope,
    outbox,
    cancel_cell,
    store: ArtifactStore,
    services: _WorkerServices,
):
    """Execute one envelope; returns ``(state, result, error_str)``."""
    job_id = envelope.job_id
    try:
        spec = build_spec(
            envelope.request, job_id,
            spool_dir=store.job_spool(job_id)
            if envelope.request.checkpoint else None,
        )
    except Exception as exc:
        return JobState.FAILED, None, f"bad request: {exc}"
    handle = _WorkerHandle(
        job_id, spec, envelope.attempt, envelope.epoch, cancel_cell,
        envelope.deadline_remaining,
    )
    emitter = EventEmitter(
        job_id, _ForwardChannel(outbox, worker_id, job_id),
    )
    ctx = JobContext(handle, service=services, emitter=emitter)
    try:
        result = _execute_with_retries(spec, handle, ctx)
    except JobCancelledError:
        return JobState.CANCELLED, None, None
    except JobTimeoutError:
        return JobState.TIMEOUT, None, None
    except BaseException as exc:
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        return JobState.FAILED, None, detail
    # harvest the fingerprint into the content-address index while the
    # spool is fresh (a no-op when checkpointing was off)
    try:
        store.index_job(job_id)
    except OSError:
        pass
    return JobState.DONE, result, None


def result_from_wire(result_bytes: bytes) -> Any:
    """Decode a DONE message's result payload (coordinator side)."""
    if not result_bytes:
        return None
    return pickle.loads(result_bytes)


#: what the coordinator knows about outcomes: wire states map onto the
#: service's JobState vocabulary one to one
WIRE_STATES: Dict[str, JobState] = {
    state.value: state for state in JobState
}
