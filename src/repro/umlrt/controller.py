"""Controllers: logical threads of the UML-RT runtime.

A controller owns a set of capsules and a priority message queue.  All
capsules on one controller share a thread of control, so their RTC steps
never overlap; capsules on different controllers conceptually run
concurrently.  The deterministic runtime (:mod:`repro.umlrt.runtime`)
serialises controllers by global message order, which preserves UML-RT's
observable semantics while making every run reproducible.

The paper's architectural claim is precisely about controller assignment:
event-driven capsules go on (one or more) controllers, while streamers run
on separate *streamer threads* (:mod:`repro.core.thread`).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.umlrt.signal import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.umlrt.capsule import Capsule


class Controller:
    """A logical thread: message queue + the capsules it serves."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.capsules: List["Capsule"] = []
        self._queue: List[Tuple[tuple, Message, "Capsule"]] = []
        self.dispatched = 0
        self.enqueued = 0
        #: messages dropped because their capsule was destroyed while
        #: they sat in the queue
        self.stale_dropped = 0
        #: optional hook (message, capsule) -> None, called on dispatch
        self.on_dispatch = None

    # ------------------------------------------------------------------
    def assign(self, capsule: "Capsule") -> None:
        """Put ``capsule`` (and by convention its parts) on this controller."""
        if capsule.controller is not None and capsule.controller is not self:
            raise ValueError(
                f"capsule {capsule.instance_name} already assigned to "
                f"controller {capsule.controller.name}"
            )
        capsule.controller = self
        if capsule not in self.capsules:
            self.capsules.append(capsule)

    def enqueue(self, capsule: "Capsule", message: Message) -> None:
        heapq.heappush(self._queue, (message.sort_key(), message, capsule))
        self.enqueued += 1

    def peek_key(self) -> Optional[tuple]:
        """Sort key of the most urgent pending message, or None if idle."""
        if not self._queue:
            return None
        return self._queue[0][0]

    def dispatch_one(self) -> bool:
        """Pop and dispatch the most urgent message.  True if one existed."""
        if not self._queue:
            return False
        __, message, capsule = heapq.heappop(self._queue)
        if capsule.runtime is None:
            # destroyed while the message was queued (frame service)
            self.stale_dropped += 1
            return True
        self.dispatched += 1
        if self.on_dispatch is not None:
            self.on_dispatch(message, capsule)
        capsule._dispatch(message)
        return True

    def clear_queue(self) -> int:
        """Drop every pending message; returns how many were dropped.

        Used by the resilience layer to erase start-up transients before
        overlaying a checkpoint (the dropped messages' effects are part
        of the snapshot, so replaying them would double-apply).
        """
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def idle(self) -> bool:
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Controller({self.name!r}, capsules={len(self.capsules)}, "
            f"pending={self.pending})"
        )
