"""Experiment F1 — Figure 1: the State + Strategy class diagram, live.

Figure 1 is the paper's architectural argument: capsule behaviour via the
State pattern, streamer behaviour via the Strategy pattern (pluggable
solvers).  This bench (a) rebuilds the figure from the metamodel and
verifies it against the real library classes, (b) measures the cost of
the two patterns where they matter at run time — a state-machine RTC
dispatch and a solver hot swap mid-integration.
"""

import numpy as np

from repro.core.solverbinding import SolverBinding
from repro.metamodel import figure1_package, render_class_diagram, to_xmi
from repro.metamodel.classdiagram import check_figure1_against_library
from repro.umlrt.signal import Message
from repro.umlrt.statemachine import StateMachine


class _Ctx:
    pass


class _Port:
    name = "p"


def _toggle_machine():
    sm = StateMachine("toggle")
    sm.add_state("a")
    sm.add_state("b")
    sm.initial("a")
    sm.add_transition("a", "b", trigger=("p", "go"))
    sm.add_transition("b", "a", trigger=("p", "go"))
    sm.start(_Ctx())
    return sm


def test_figure1_structure(benchmark, report, bench_json):
    def build():
        pkg = figure1_package()
        problems = check_figure1_against_library()
        return pkg, problems, render_class_diagram(pkg)

    pkg, problems, rendered = benchmark(build)
    assert problems == []
    assert pkg.children_of("Strategy") == [
        "ConcreteStrategyA", "ConcreteStrategyB", "ConcreteStrategyC"
    ]
    xmi = to_xmi(pkg)
    report("F1: Figure 1 (State + Strategy patterns)", [
        rendered,
        f"XMI serialisation: {len(xmi)} bytes",
        "library check: all classifiers map to implemented classes",
    ])
    bench_json("f1", {
        "library_check_problems": len(problems),
        "xmi_bytes": len(xmi),
    })


def test_figure1_state_pattern_dispatch_cost(benchmark):
    """One RTC dispatch of the capsule-side State pattern."""
    sm = _toggle_machine()
    message = Message("go", port=_Port())
    context = _Ctx()

    benchmark(lambda: sm.dispatch(context, message))
    assert sm.rtc_steps > 0


def test_figure1_strategy_hot_swap_cost(benchmark, report):
    """Swap the concrete solver strategy between steps (Figure 1's whole
    point: ConcreteStrategyA/B/C are interchangeable mid-run)."""
    binding = SolverBinding("euler")
    f = lambda t, y: -y  # noqa: E731
    state = {"y": np.array([1.0]), "t": 0.0, "next": "rk4"}

    def swap_and_step():
        binding.rebind(state["next"])
        state["next"] = "euler" if state["next"] == "rk4" else "rk4"
        result = binding.step(f, state["t"], state["y"], 1e-3)
        state["t"], state["y"] = result.t, result.y

    benchmark(swap_and_step)
    assert binding.swaps > 0
    assert state["y"][0] < 1.0  # integration progressed across swaps
    report("F1: strategy hot-swap", [
        f"swaps performed: {binding.swaps}",
        f"steps across swaps: {binding.steps_taken}",
        f"state decayed to {state['y'][0]:.6f} (continuity preserved)",
    ])
