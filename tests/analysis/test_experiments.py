"""Parameter-sweep experiment runner."""

import pytest

from repro.analysis import best_run, grid_points, render_sweep, sweep
from repro.analysis.experiments import ExperimentError
from repro.analysis.metrics import step_metrics
from repro.core.model import HybridModel
from repro.dataflow import Diagram, FirstOrderLag, PID, Step, Sum


def make_loop(kp: float, ki: float) -> HybridModel:
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=kp, ki=ki, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.5))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    d.finalise()
    model = HybridModel("loop")
    model.default_thread.h = 0.005
    model.add_streamer(d)
    model.add_probe("y", d.port_at("plant.out"))
    return model


class TestGrid:
    def test_cartesian_product(self):
        points = grid_points({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(points) == 6
        assert {"a": 2, "b": "z"} in points

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            grid_points({})
        with pytest.raises(ExperimentError):
            grid_points({"a": []})


class TestSweep:
    def metrics(self):
        return {
            "final": lambda m: float(m.probe("y").y_final[0]),
            "err": lambda m: abs(1.0 - float(m.probe("y").y_final[0])),
            "rise": lambda m: step_metrics(m.probe("y"), 1.0).rise_time,
            "settle": lambda m: step_metrics(
                m.probe("y"), 1.0
            ).settling_time,
        }

    def test_all_points_run(self):
        runs = sweep(
            make_loop, {"kp": [1.0, 4.0], "ki": [1.0]},
            until=8.0, metrics=self.metrics(), sync_interval=0.05,
        )
        assert len(runs) == 2
        assert all(run.ok for run in runs)
        assert all("final" in run.metrics for run in runs)

    def test_higher_gain_smaller_ss_error(self):
        """P-only control: ss error = 1/(1+kp), monotone in kp."""
        runs = sweep(
            make_loop, {"kp": [0.5, 4.0], "ki": [0.0]},
            until=10.0, metrics=self.metrics(), sync_interval=0.05,
        )
        low = [r for r in runs if r.params["kp"] == 0.5][0]
        high = [r for r in runs if r.params["kp"] == 4.0][0]
        assert high.metrics["err"] < low.metrics["err"]
        assert low.metrics["err"] == pytest.approx(1.0 / 1.5, abs=0.01)

    def test_best_run_selection(self):
        runs = sweep(
            make_loop, {"kp": [0.5, 2.0, 4.0], "ki": [0.0]},
            until=10.0, metrics=self.metrics(), sync_interval=0.05,
        )
        winner = best_run(runs, "err", minimise=True)
        assert winner.params["kp"] == 4.0

    def test_failures_recorded_not_raised(self):
        def broken_factory(kp, ki):
            raise RuntimeError("boom")

        runs = sweep(
            broken_factory, {"kp": [1.0], "ki": [1.0]},
            until=1.0, metrics={},
        )
        assert not runs[0].ok
        assert "boom" in runs[0].error

    def test_keep_going_false_raises(self):
        def broken_factory(kp, ki):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            sweep(
                broken_factory, {"kp": [1.0], "ki": [1.0]},
                until=1.0, metrics={}, keep_going=False,
            )

    def test_best_run_skips_nones(self):
        runs = sweep(
            make_loop, {"kp": [0.01, 19.0], "ki": [0.0]},
            until=10.0, metrics=self.metrics(), sync_interval=0.05,
        )
        # kp=0.01 tops out at ~0.01: never crosses 90% -> rise is None
        weak = [r for r in runs if r.params["kp"] == 0.01][0]
        assert weak.metrics["rise"] is None
        winner = best_run(runs, "rise")
        assert winner.params["kp"] == 19.0

    def test_render(self):
        runs = sweep(
            make_loop, {"kp": [1.0], "ki": [1.0]},
            until=5.0, metrics=self.metrics(), sync_interval=0.05,
        )
        table = render_sweep(runs)
        assert "kp" in table and "settle" in table and "ok" in table

    def test_render_empty(self):
        assert render_sweep([]) == "(empty sweep)"
