"""Replicated ports and state-timeout transitions."""

import pytest

from tests.conftest import PING, Echo

from repro.umlrt.capsule import Capsule
from repro.umlrt.port import PortError
from repro.umlrt.runtime import RTSystem
from repro.umlrt.statemachine import StateMachine, add_timeout_transition


class Server(Capsule):
    """One replicated port serving N echo clients."""

    def __init__(self, name="server", clients=3):
        self.pongs = []
        self._clients = clients
        super().__init__(name)

    def build_structure(self):
        self.create_port("svc", PING.base(), replication=self._clients)

    def build_behaviour(self):
        sm = StateMachine("server")
        sm.add_state("s")
        sm.initial("s")
        sm.add_transition(
            "s", trigger=("svc", "pong"), internal=True,
            action=lambda c, m: c.pongs.append(m.signal),
        )
        return sm


class TestReplicatedPorts:
    def build(self, clients=3):
        rts = RTSystem("t")
        server = rts.add_top(Server("server", clients=clients))
        echoes = [rts.add_top(Echo(f"echo{i}")) for i in range(clients)]
        for echo in echoes:
            server.connect(server.port("svc"), echo.port("p"))
        rts.start()
        return rts, server, echoes

    def test_broadcast_reaches_all_peers(self):
        rts, server, echoes = self.build(3)
        delivered = server.send("svc", "ping")
        assert delivered == 3
        rts.run()
        assert len(server.pongs) == 3

    def test_indexed_send_targets_one_peer(self):
        rts, server, echoes = self.build(3)
        delivered = server.send("svc", "ping", index=1)
        assert delivered == 1
        rts.run()
        assert len(server.pongs) == 1

    def test_index_out_of_range(self):
        rts, server, __ = self.build(2)
        with pytest.raises(PortError, match="out of range"):
            server.send("svc", "ping", index=5)

    def test_over_wiring_rejected(self):
        rts = RTSystem("t")
        server = rts.add_top(Server("server", clients=2))
        echoes = [rts.add_top(Echo(f"echo{i}")) for i in range(3)]
        server.connect(server.port("svc"), echoes[0].port("p"))
        server.connect(server.port("svc"), echoes[1].port("p"))
        with pytest.raises(Exception, match="fully wired"):
            server.connect(server.port("svc"), echoes[2].port("p"))

    def test_invalid_replication(self):
        from repro.umlrt.port import Port

        with pytest.raises(PortError):
            Port("p", PING.base(), replication=0)


class Watchdog(Capsule):
    """waiting --(after 2 s)--> expired unless kicked back to idle."""

    def __init__(self, name="dog"):
        self.expired_at = None
        super().__init__(name)

    def build_structure(self):
        self.create_port("kick", PING.conjugate())

    def build_behaviour(self):
        sm = StateMachine("dog")
        sm.add_state("waiting")
        sm.add_state("expired")
        sm.initial("waiting")
        add_timeout_transition(
            sm, "waiting", 2.0, "expired",
            action=lambda c, m: setattr(
                c, "expired_at", c.runtime.now
            ),
        )
        sm.add_transition("waiting", "waiting", trigger=("kick", "ping"))
        return sm


class TestStateTimeouts:
    def test_timeout_fires_after_delay(self):
        rts = RTSystem("t")
        dog = rts.add_top(Watchdog())
        rts.start()
        rts.run(until=5.0)
        assert dog.behaviour.active_path == "expired"
        assert dog.expired_at == pytest.approx(2.0)

    def test_reentry_restarts_the_clock(self):
        """Each kick re-enters 'waiting', cancelling and restarting the
        timer: the watchdog never expires while kicked."""
        rts = RTSystem("t")
        dog = rts.add_top(Watchdog())
        rts.start()
        # kicks injected at the right logical times restart the timer
        rts.run(until=1.4)
        rts.inject(dog.port("kick"), "ping")
        rts.run(until=2.9)
        assert dog.behaviour.active_path == "waiting"  # not yet expired
        rts.inject(dog.port("kick"), "ping")
        rts.run(until=4.8)
        assert dog.behaviour.active_path == "waiting"
        rts.run(until=5.0)
        assert dog.behaviour.active_path == "expired"
        assert dog.expired_at == pytest.approx(4.9, abs=0.01)

    def test_unrelated_timers_do_not_trip_the_guard(self):
        rts = RTSystem("t")
        dog = rts.add_top(Watchdog())
        rts.start()
        dog.inform_in(0.5, data="user timer")  # unrelated timeout
        rts.run(until=1.0)
        assert dog.behaviour.active_path == "waiting"
        rts.run(until=3.0)
        assert dog.behaviour.active_path == "expired"

    def test_composes_with_existing_entry_actions(self):
        log = []
        sm = StateMachine("m")
        sm.add_state("a", entry=lambda c, m: log.append("user_entry"))
        sm.add_state("b")
        sm.initial("a")
        add_timeout_transition(sm, "a", 1.0, "b")

        rts = RTSystem("t")

        class Holder(Capsule):
            def build_behaviour(self):
                return sm

        rts.add_top(Holder("h"))
        rts.start()
        assert log == ["user_entry"]
        rts.run(until=2.0)
        assert sm.active_path == "b"
