"""Hierarchical state machines: RTC semantics, hierarchy, history, choice."""

import pytest

from repro.umlrt.signal import Message
from repro.umlrt.statemachine import (
    ChoicePoint,
    State,
    StateMachine,
    StateMachineError,
)


class FakePort:
    def __init__(self, name):
        self.name = name


def msg(signal, port="p", data=None):
    return Message(signal, data=data, port=FakePort(port))


class Recorder:
    """Capsule stand-in that records action invocations."""

    def __init__(self):
        self.log = []

    def note(self, tag):
        def action(capsule, message):
            capsule.log.append(tag)

        return action


@pytest.fixture
def recorder():
    return Recorder()


def simple_machine():
    sm = StateMachine("m")
    sm.add_state("off")
    sm.add_state("on")
    sm.initial("off")
    sm.add_transition("off", "on", trigger=("p", "go"))
    sm.add_transition("on", "off", trigger=("p", "halt"))
    return sm


class TestFlatMachine:
    def test_start_enters_initial(self, recorder):
        sm = simple_machine()
        sm.start(recorder)
        assert sm.active_path == "off"

    def test_dispatch_fires_transition(self, recorder):
        sm = simple_machine()
        sm.start(recorder)
        assert sm.dispatch(recorder, msg("go"))
        assert sm.active_path == "on"

    def test_unmatched_message_dropped(self, recorder):
        sm = simple_machine()
        sm.start(recorder)
        assert not sm.dispatch(recorder, msg("halt"))  # not valid in off
        assert sm.active_path == "off"
        assert sm.dropped_messages == 1

    def test_port_specific_trigger(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a")
        sm.add_state("b")
        sm.initial("a")
        sm.add_transition("a", "b", trigger=("left", "go"))
        sm.start(recorder)
        assert not sm.dispatch(recorder, msg("go", port="right"))
        assert sm.dispatch(recorder, msg("go", port="left"))

    def test_any_port_trigger(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a")
        sm.add_state("b")
        sm.initial("a")
        sm.add_transition("a", "b", trigger="go")
        sm.start(recorder)
        assert sm.dispatch(recorder, msg("go", port="whatever"))

    def test_guard_blocks(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a")
        sm.add_state("b")
        sm.initial("a")
        enabled = {"flag": False}
        sm.add_transition(
            "a", "b", trigger="go", guard=lambda c, m: enabled["flag"]
        )
        sm.start(recorder)
        assert not sm.dispatch(recorder, msg("go"))
        enabled["flag"] = True
        assert sm.dispatch(recorder, msg("go"))

    def test_cannot_dispatch_before_start(self, recorder):
        sm = simple_machine()
        with pytest.raises(StateMachineError):
            sm.dispatch(recorder, msg("go"))

    def test_cannot_start_twice(self, recorder):
        sm = simple_machine()
        sm.start(recorder)
        with pytest.raises(StateMachineError):
            sm.start(recorder)

    def test_requires_initial(self, recorder):
        sm = StateMachine("m")
        sm.add_state("only")
        with pytest.raises(StateMachineError):
            sm.start(recorder)


class TestActions:
    def test_entry_exit_action_order(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a", entry=recorder.note("enter_a"),
                     exit=recorder.note("exit_a"))
        sm.add_state("b", entry=recorder.note("enter_b"))
        sm.initial("a")
        sm.add_transition("a", "b", trigger="go",
                          action=recorder.note("t_action"))
        sm.start(recorder)
        sm.dispatch(recorder, msg("go"))
        assert recorder.log == ["enter_a", "exit_a", "t_action", "enter_b"]

    def test_internal_transition_no_exit_entry(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a", entry=recorder.note("enter"),
                     exit=recorder.note("exit"))
        sm.initial("a")
        sm.add_transition("a", trigger="tick", internal=True,
                          action=recorder.note("work"))
        sm.start(recorder)
        sm.dispatch(recorder, msg("tick"))
        sm.dispatch(recorder, msg("tick"))
        assert recorder.log == ["enter", "work", "work"]

    def test_self_transition_exits_and_reenters(self, recorder):
        sm = StateMachine("m")
        sm.add_state("a", entry=recorder.note("enter"),
                     exit=recorder.note("exit"))
        sm.initial("a")
        sm.add_transition("a", "a", trigger="reset")
        sm.start(recorder)
        sm.dispatch(recorder, msg("reset"))
        assert recorder.log == ["enter", "exit", "enter"]


class TestHierarchy:
    def make_composite(self, recorder):
        sm = StateMachine("m")
        sm.add_state("top", entry=recorder.note("enter_top"),
                     exit=recorder.note("exit_top"))
        sm.add_state("top.inner1", entry=recorder.note("enter_i1"),
                     exit=recorder.note("exit_i1"))
        sm.add_state("top.inner2", entry=recorder.note("enter_i2"))
        sm.add_state("outside")
        sm.initial("top")
        sm.initial("top.inner1", composite="top")
        sm.add_transition("top.inner1", "top.inner2", trigger="next")
        sm.add_transition("top", "outside", trigger="leave")
        return sm

    def test_entering_composite_drills_to_leaf(self, recorder):
        sm = self.make_composite(recorder)
        sm.start(recorder)
        assert sm.active_path == "top.inner1"
        assert recorder.log == ["enter_top", "enter_i1"]

    def test_in_state_includes_ancestors(self, recorder):
        sm = self.make_composite(recorder)
        sm.start(recorder)
        assert sm.in_state("top")
        assert sm.in_state("top.inner1")
        assert not sm.in_state("top.inner2")

    def test_group_transition_from_parent(self, recorder):
        """A transition on the composite fires from any inner state."""
        sm = self.make_composite(recorder)
        sm.start(recorder)
        sm.dispatch(recorder, msg("next"))
        assert sm.active_path == "top.inner2"
        assert sm.dispatch(recorder, msg("leave"))
        assert sm.active_path == "outside"
        assert "exit_top" in recorder.log

    def test_inner_transition_shadows_outer(self, recorder):
        sm = self.make_composite(recorder)
        sm.add_transition("top.inner1", "top.inner2", trigger="leave")
        sm.start(recorder)
        sm.dispatch(recorder, msg("leave"))
        # inner wins over the group transition to outside
        assert sm.active_path == "top.inner2"

    def test_exit_runs_innermost_first(self, recorder):
        sm = self.make_composite(recorder)
        sm.start(recorder)
        recorder.log.clear()
        sm.dispatch(recorder, msg("leave"))
        assert recorder.log.index("exit_i1") < recorder.log.index("exit_top")


class TestHistory:
    def make_history_machine(self, mode):
        sm = StateMachine("m")
        sm.add_state("work", history=mode)
        sm.add_state("work.phase1")
        sm.add_state("work.phase2")
        sm.add_state("paused")
        sm.initial("work")
        sm.initial("work.phase1", composite="work")
        sm.add_transition("work.phase1", "work.phase2", trigger="advance")
        sm.add_transition("work", "paused", trigger="pause")
        sm.add_transition("paused", "work", trigger="resume")
        return sm

    def test_shallow_history_restores_substate(self, recorder):
        sm = self.make_history_machine("shallow")
        sm.start(recorder)
        sm.dispatch(recorder, msg("advance"))
        assert sm.active_path == "work.phase2"
        sm.dispatch(recorder, msg("pause"))
        assert sm.active_path == "paused"
        sm.dispatch(recorder, msg("resume"))
        assert sm.active_path == "work.phase2"  # restored, not phase1

    def test_no_history_reenters_initial(self, recorder):
        sm = self.make_history_machine(None)
        sm.start(recorder)
        sm.dispatch(recorder, msg("advance"))
        sm.dispatch(recorder, msg("pause"))
        sm.dispatch(recorder, msg("resume"))
        assert sm.active_path == "work.phase1"

    def test_invalid_history_mode(self):
        with pytest.raises(StateMachineError):
            State("s", history="weird")


class TestChoicePoints:
    def test_choice_branches_on_guard(self, recorder):
        sm = StateMachine("m")
        sm.add_state("start")
        sm.add_state("high")
        sm.add_state("low")
        sm.initial("start")
        choice = sm.add_choice("decide")
        choice.add_branch("high", guard=lambda c, m: m.data > 10)
        choice.add_branch("low")  # else
        sm.add_transition("start", "decide", trigger="value")
        sm.start(recorder)
        sm.dispatch(recorder, msg("value", data=42))
        assert sm.active_path == "high"

    def test_choice_else_branch(self, recorder):
        sm = StateMachine("m")
        sm.add_state("start")
        sm.add_state("high")
        sm.add_state("low")
        sm.initial("start")
        choice = sm.add_choice("decide")
        choice.add_branch("high", guard=lambda c, m: m.data > 10)
        choice.add_branch("low")
        sm.add_transition("start", "decide", trigger="value")
        sm.start(recorder)
        sm.dispatch(recorder, msg("value", data=3))
        assert sm.active_path == "low"

    def test_choice_without_else_raises(self, recorder):
        point = ChoicePoint("c")
        point.add_branch("x", guard=lambda c, m: False)
        with pytest.raises(StateMachineError):
            point.select(recorder, None)

    def test_choice_branch_action_runs(self, recorder):
        sm = StateMachine("m")
        sm.add_state("start")
        sm.add_state("end")
        sm.initial("start")
        choice = sm.add_choice("c")
        choice.add_branch("end", action=recorder.note("branch"))
        sm.add_transition("start", "c", trigger="go",
                          action=recorder.note("trans"))
        sm.start(recorder)
        sm.dispatch(recorder, msg("go"))
        assert recorder.log == ["trans", "branch"]


class TestStructureValidation:
    def test_duplicate_state_rejected(self):
        sm = StateMachine("m")
        sm.add_state("a")
        with pytest.raises(StateMachineError):
            sm.add_state("a")

    def test_unknown_parent_rejected(self):
        sm = StateMachine("m")
        with pytest.raises(StateMachineError):
            sm.add_state("ghost.child")

    def test_unknown_transition_target(self):
        sm = StateMachine("m")
        sm.add_state("a")
        with pytest.raises(StateMachineError):
            sm.add_transition("a", "nowhere", trigger="x")

    def test_transition_counts(self):
        sm = simple_machine()
        assert sm.transition_count() == 2
        assert sm.all_states() == ["off", "on"]

    def test_internal_with_different_target_rejected(self):
        from repro.umlrt.statemachine import Transition

        with pytest.raises(StateMachineError):
            Transition("a", "b", internal=True)
