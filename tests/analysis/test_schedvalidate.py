"""Trace-validation of the static RTA bounds (the ISSUE's harness).

A matrix of hybrid models — single- and multi-thread, multirate, with
and without shared mutable state, with a capsule controller — is run
under an instrumented :class:`~repro.core.hybrid.HybridScheduler`; for
every model the statically computed response-time bound must dominate
the worst response actually observed in the trace.  A violation means
the engine's priority model has diverged from the runtime.
"""

from __future__ import annotations

import pytest

from tests.conftest import (
    ConstLeaf, DecayLeaf, GainLeaf, IntegratorLeaf,
)

from repro.analysis.schedvalidate import (
    SchedulerProbe,
    ValidationReport,
    validate_schedulability,
)
from repro.core.model import HybridModel
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine

CMD = Protocol.define("VCmd", outgoing=("set_value",), incoming=("ack",))


# ----------------------------------------------------------------------
# the model matrix
# ----------------------------------------------------------------------
def single_decay() -> HybridModel:
    model = HybridModel("decay")
    model.add_streamer(DecayLeaf("d", lam=2.0))
    model.add_probe("y", model.streamers[0].dport("y"))
    return model


def integrator_ramp() -> HybridModel:
    model = HybridModel("ramp")
    const = model.add_streamer(ConstLeaf("c", 2.0))
    integ = model.add_streamer(IntegratorLeaf("i"))
    model.add_flow(const.dport("y"), integ.dport("u"))
    model.add_probe("y", integ.dport("y"))
    return model


def gain_chain() -> HybridModel:
    model = HybridModel("chain")
    const = model.add_streamer(ConstLeaf("c", 1.0))
    a = model.add_streamer(GainLeaf("a", k=2.0))
    b = model.add_streamer(GainLeaf("b", k=3.0))
    model.add_flow(const.dport("y"), a.dport("u"))
    model.add_flow(a.dport("y"), b.dport("u"))
    model.add_probe("y", b.dport("y"))
    return model


def feedback_loop() -> HybridModel:
    model = HybridModel("feedback")
    gain = model.add_streamer(GainLeaf("g", k=-0.5))
    integ = model.add_streamer(IntegratorLeaf("i", y0=1.0))
    model.add_flow(integ.dport("y"), gain.dport("u"))
    model.add_flow(gain.dport("y"), integ.dport("u"))
    model.add_probe("y", integ.dport("y"))
    return model


def two_threads_independent() -> HybridModel:
    model = HybridModel("two-threads")
    fast = model.create_thread("fast", h=5e-4)
    model.add_streamer(DecayLeaf("a", lam=1.0), thread=fast)
    model.add_streamer(DecayLeaf("b", lam=2.0))
    model.add_probe("ya", model.streamers[0].dport("y"))
    model.add_probe("yb", model.streamers[1].dport("y"))
    return model


def two_threads_shared_state() -> HybridModel:
    model = HybridModel("two-threads-shared")
    fast = model.create_thread("fast", h=5e-4)
    src = ConstLeaf("src", 1.0)
    a = GainLeaf("a", k=2.0)
    shared = a.params
    shared.update(src.params)
    src.params = shared  # one dict across both threads
    model.add_streamer(src, thread=fast)
    model.add_streamer(a)
    model.add_flow(src.dport("y"), a.dport("u"))
    model.add_probe("y", a.dport("y"))
    return model


def three_rates() -> HybridModel:
    model = HybridModel("three-rates")
    mid = model.create_thread("mid", h=5e-4)
    slow = model.create_thread("slow", h=2e-3)
    model.add_streamer(DecayLeaf("a", lam=1.0))
    model.add_streamer(DecayLeaf("b", lam=2.0), thread=mid)
    model.add_streamer(DecayLeaf("c", lam=3.0), thread=slow)
    return model


def wide_fanout() -> HybridModel:
    model = HybridModel("fanout")
    src = model.add_streamer(ConstLeaf("src", 1.0))
    for index in range(6):
        gain = model.add_streamer(GainLeaf(f"g{index}", k=float(index)))
        model.add_flow(src.dport("y"), gain.dport("u"))
    return model


class _Tuner(Capsule):
    """Retunes a gain once via a timer (gives the model a controller)."""

    def build_structure(self):
        self.create_port("cmd", CMD.base())

    def build_behaviour(self):
        sm = StateMachine("tuner")
        sm.add_state("waiting")
        sm.add_state("done")
        sm.initial("waiting")
        sm.add_transition(
            "waiting", "done", trigger=("timer", "timeout"),
            action=lambda c, m: c.send("cmd", "set_value", 5.0),
        )
        return sm

    def on_start(self):
        self.inform_in(0.02)


class _TunableGain(GainLeaf):
    def __init__(self, name):
        super().__init__(name, k=1.0)
        self.add_sport("tune", CMD.conjugate())

    def handle_signal(self, sport_name, message):
        if message.signal == "set_value":
            self.params["k"] = float(message.data)


def capsule_controlled() -> HybridModel:
    model = HybridModel("capsule")
    tuner = model.add_capsule(_Tuner("tuner"))
    const = model.add_streamer(ConstLeaf("c", 1.0))
    gain = model.add_streamer(_TunableGain("g"))
    model.add_flow(const.dport("y"), gain.dport("u"))
    model.connect_sport(tuner.port("cmd"), gain.sport("tune"))
    model.add_probe("y", gain.dport("y"))
    return model


def capsule_multirate() -> HybridModel:
    model = HybridModel("capsule-multirate")
    fast = model.create_thread("fast", h=5e-4)
    tuner = model.add_capsule(_Tuner("tuner"))
    const = model.add_streamer(ConstLeaf("c", 1.0), thread=fast)
    gain = model.add_streamer(_TunableGain("g"))
    model.add_flow(const.dport("y"), gain.dport("u"))
    model.connect_sport(tuner.port("cmd"), gain.sport("tune"))
    return model


def cluster_cruise() -> HybridModel:
    from repro.cluster.models import cruise

    return cruise()


def cluster_lag() -> HybridModel:
    from repro.cluster.models import lag

    return lag()


MATRIX = [
    single_decay,
    integrator_ramp,
    gain_chain,
    feedback_loop,
    two_threads_independent,
    two_threads_shared_state,
    three_rates,
    wide_fanout,
    capsule_controlled,
    capsule_multirate,
    cluster_cruise,
    cluster_lag,
]


def test_matrix_is_at_least_ten_models():
    # the ISSUE's acceptance floor: dominance demonstrated on >= 10
    # traced models
    assert len(MATRIX) >= 10


@pytest.mark.parametrize(
    "factory", MATRIX, ids=[f.__name__ for f in MATRIX],
)
def test_static_bound_dominates_trace(factory):
    report = validate_schedulability(
        factory, t_end=0.06, sync_interval=0.01,
    )
    assert report.steps > 0
    assert report.observed, "probe recorded no responses"
    assert report.dominates, (
        f"static bound violated: margins {report.margins}"
    )
    assert all(margin >= 0.0 for margin in report.margins.values())


def test_headroom_scales_bounds_up():
    tight = validate_schedulability(
        gain_chain, t_end=0.04, sync_interval=0.01, headroom=1.0,
    )
    padded = validate_schedulability(
        gain_chain, t_end=0.04, sync_interval=0.01, headroom=4.0,
    )
    assert padded.dominates
    for name, bound in tight.bound.items():
        assert padded.bound[name] >= bound


def test_report_is_json_shaped():
    report = validate_schedulability(
        two_threads_shared_state, t_end=0.04, sync_interval=0.01,
    )
    assert isinstance(report, ValidationReport)
    payload = report.as_dict()
    assert payload["dominates"] is True
    assert set(payload["observed"]) == set(payload["bound"])
    assert payload["steps"] == report.steps
    assert payload["tasks"]


def test_probe_records_each_major_step():
    model = gain_chain()
    scheduler = model.scheduler(sync_interval=0.01)
    probe = SchedulerProbe(scheduler).attach()
    model.run(until=0.05, sync_interval=0.01)
    assert len(probe.steps) == 5
    for record in probe.steps:
        assert record.thread_costs
        assert all(cost >= 0.0 for cost in record.thread_costs.values())


def test_probe_attach_is_idempotent():
    model = single_decay()
    scheduler = model.scheduler(sync_interval=0.01)
    probe = SchedulerProbe(scheduler)
    assert probe.attach() is probe.attach()
    model.run(until=0.03, sync_interval=0.01)
    assert len(probe.steps) == 3


def test_probe_chains_existing_observer():
    seen = []
    model = single_decay()
    scheduler = model.scheduler(sync_interval=0.01)
    scheduler.on_major_step = seen.append
    SchedulerProbe(scheduler).attach()
    model.run(until=0.03, sync_interval=0.01)
    assert len(seen) == 3  # the pre-existing hook still fires
