"""Trajectory recording, interpolation and metrics."""

import math

import numpy as np
import pytest

from repro.solvers.history import Trajectory, TrajectoryError


def ramp_trajectory():
    trajectory = Trajectory(labels=["y"])
    for k in range(11):
        trajectory.append(k * 0.1, [k * 0.1])
    return trajectory


class TestAppend:
    def test_basic(self):
        trajectory = ramp_trajectory()
        assert len(trajectory) == 11
        assert trajectory.t_final == pytest.approx(1.0)
        assert trajectory.y_final[0] == pytest.approx(1.0)

    def test_scalar_append(self):
        trajectory = Trajectory()
        trajectory.append(0.0, 5.0)
        assert trajectory.states.shape == (1, 1)

    def test_non_monotone_time_rejected(self):
        trajectory = Trajectory()
        trajectory.append(1.0, [0.0])
        with pytest.raises(TrajectoryError):
            trajectory.append(0.5, [0.0])

    def test_equal_times_allowed(self):
        """Discrete jumps at one instant are legal (hybrid resets)."""
        trajectory = Trajectory()
        trajectory.append(1.0, [0.0])
        trajectory.append(1.0, [5.0])
        assert len(trajectory) == 2

    def test_dimension_change_rejected(self):
        trajectory = Trajectory()
        trajectory.append(0.0, [1.0, 2.0])
        with pytest.raises(TrajectoryError):
            trajectory.append(1.0, [1.0])

    def test_empty_access_raises(self):
        trajectory = Trajectory()
        with pytest.raises(TrajectoryError):
            __ = trajectory.t_final
        with pytest.raises(TrajectoryError):
            trajectory.sample(0.0)


class TestSampling:
    def test_interpolation(self):
        trajectory = ramp_trajectory()
        assert trajectory.sample(0.55)[0] == pytest.approx(0.55)

    def test_clamping(self):
        trajectory = ramp_trajectory()
        assert trajectory.sample(-5.0)[0] == pytest.approx(0.0)
        assert trajectory.sample(99.0)[0] == pytest.approx(1.0)

    def test_resample(self):
        trajectory = ramp_trajectory()
        resampled = trajectory.resample([0.0, 0.25, 0.5, 1.0])
        assert len(resampled) == 4
        assert resampled.component("y")[1] == pytest.approx(0.25)

    def test_component_by_label_and_index(self):
        trajectory = ramp_trajectory()
        assert np.allclose(
            trajectory.component("y"), trajectory.component(0)
        )

    def test_unknown_label(self):
        with pytest.raises(TrajectoryError):
            ramp_trajectory().component("nope")


class TestErrorMetrics:
    def test_exact_reference_zero_error(self):
        trajectory = ramp_trajectory()
        assert trajectory.max_error_against(lambda t: t) == pytest.approx(0.0)
        assert trajectory.rms_error_against(lambda t: t) == pytest.approx(0.0)

    def test_constant_offset(self):
        trajectory = ramp_trajectory()
        assert trajectory.max_error_against(
            lambda t: t + 0.5
        ) == pytest.approx(0.5)

    def test_final_error(self):
        trajectory = ramp_trajectory()
        assert trajectory.final_error_against(
            lambda t: 0.0
        ) == pytest.approx(1.0)


class TestControlMetrics:
    def step_response(self):
        """First-order step response toward 1 with tau=1."""
        trajectory = Trajectory()
        for k in range(500):
            t = k * 0.01
            trajectory.append(t, [1.0 - math.exp(-t)])
        return trajectory

    def test_settling_time(self):
        trajectory = self.step_response()
        settle = trajectory.settling_time(0, 1.0, 0.02)
        # 2% band of exp response: t = ln(50) ~ 3.91
        assert settle == pytest.approx(math.log(50.0), abs=0.05)

    def test_never_settles(self):
        trajectory = ramp_trajectory()
        assert trajectory.settling_time(0, 5.0, 0.01) is None

    def test_overshoot_zero_for_monotone(self):
        assert self.step_response().overshoot(0, 1.0) == 0.0

    def test_overshoot_positive(self):
        trajectory = Trajectory()
        for t, y in [(0.0, 0.0), (1.0, 1.3), (2.0, 1.0)]:
            trajectory.append(t, [y])
        assert trajectory.overshoot(0, 1.0) == pytest.approx(0.3)
