"""ExecutionPlan.fingerprint: the service cache's content address.

Two structurally identical diagrams must hash identically (so separate
submissions share one compiled artefact), and *every* structural edit —
parameter, edge, guard-bearing block, or the extra solver/step-size
inputs — must change the hash (so nothing stale is ever served).
"""

from __future__ import annotations

import pytest

from repro.core.network import FlatNetwork
from repro.dataflow.diagram import Diagram
from repro.dataflow.dynamics import PID, FirstOrderLag
from repro.dataflow.math_blocks import Sum
from repro.dataflow.nonlinear import RelayHysteresis
from repro.dataflow.sources import Step


def pid_loop(kp: float = 3.0, tau: float = 0.4,
             feedback: bool = True) -> Diagram:
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", "+-"))
    d.add(PID("pid", kp=kp, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=tau))
    d.connect("ref.out", "err.in1")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    if feedback:
        d.connect("plant.out", "err.in2")
    else:
        d.connect("ref.out", "err.in2")
    return d


def plan_of(diagram: Diagram):
    diagram.finalise()
    return FlatNetwork([diagram]).plan()


class TestIdentity:
    def test_identical_diagrams_identical_fingerprints(self):
        assert plan_of(pid_loop()).fingerprint() == \
            plan_of(pid_loop()).fingerprint()

    def test_fingerprint_is_stable_across_calls(self):
        plan = plan_of(pid_loop())
        assert plan.fingerprint() == plan.fingerprint()

    def test_fingerprint_is_hex_sha256(self):
        fp = plan_of(pid_loop()).fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex


class TestSensitivity:
    def test_parameter_edit_changes_fingerprint(self):
        assert plan_of(pid_loop(kp=3.0)).fingerprint() != \
            plan_of(pid_loop(kp=3.5)).fingerprint()

    def test_plant_parameter_edit_changes_fingerprint(self):
        assert plan_of(pid_loop(tau=0.4)).fingerprint() != \
            plan_of(pid_loop(tau=0.5)).fingerprint()

    def test_edge_rewire_changes_fingerprint(self):
        assert plan_of(pid_loop(feedback=True)).fingerprint() != \
            plan_of(pid_loop(feedback=False)).fingerprint()

    def test_live_parameter_mutation_changes_fingerprint(self):
        """Params are hashed fresh on every call — mutating a block
        after planning must be visible (this is what invalidates a
        cached artefact for a mutated diagram)."""
        diagram = pid_loop()
        plan = plan_of(diagram)
        before = plan.fingerprint()
        diagram.sub("pid").params["kp"] = 9.9
        assert plan.fingerprint() != before

    def test_guard_bearing_block_changes_fingerprint(self):
        plain = pid_loop()

        guarded = pid_loop()
        guarded.add(RelayHysteresis("relay", lower=-0.5, upper=0.5))
        guarded.connect("plant.out", "relay.in")

        plan = plan_of(guarded)
        assert len(plan.guards) > 0
        assert plan.fingerprint() != plan_of(plain).fingerprint()

    def test_extra_solver_binding_changes_fingerprint(self):
        plan = plan_of(pid_loop())
        assert plan.fingerprint(extra={"solver": "rk4"}) != \
            plan.fingerprint(extra={"solver": "euler"})

    def test_extra_step_size_changes_fingerprint(self):
        plan = plan_of(pid_loop())
        assert plan.fingerprint(extra={"h": 1e-3}) != \
            plan.fingerprint(extra={"h": 2e-3})

    def test_extra_key_order_is_irrelevant(self):
        plan = plan_of(pid_loop())
        assert plan.fingerprint(extra={"a": 1, "b": 2}) == \
            plan.fingerprint(extra={"b": 2, "a": 1})
