"""Stereotype definitions and the Table-1 registry.

Table 1 of the paper maps UML-RT concepts to the extension's new
stereotypes:

==============  =====================
UML-RT          Extension
==============  =====================
capsule         streamer
port            DPort, SPort
connect         flow, relay
protocol        flow type
state machine   solver, strategy
Time service    Time
==============  =====================

(eight new stereotypes: streamer, DPort, SPort, flow, relay, flow type,
solver, strategy — the paper counts ``Time`` with the services.)

This module states both profiles declaratively and, crucially, ties every
stereotype to its *implementation class* in this library, so bench T1 can
machine-check that the whole table is realised, not just documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dport import DPort
from repro.core.flow import Flow, Relay
from repro.core.flowtype import FlowType
from repro.core.solverbinding import SolverBinding
from repro.core.sport import SPort
from repro.core.streamer import Streamer
from repro.core.timeservice import ContinuousTime
from repro.solvers.base import SolverBase
from repro.umlrt.capsule import Capsule
from repro.umlrt.connector import Connector
from repro.umlrt.port import Port
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine
from repro.umlrt.timing import TimingService


@dataclass(frozen=True)
class StereotypeDef:
    """One stereotype: its name, UML base metaclass, and implementation."""

    name: str
    base_metaclass: str
    profile: str
    description: str = ""
    implementation: Optional[type] = None
    notation: str = ""

    def implemented(self) -> bool:
        return self.implementation is not None


#: the UML-RT profile (the substrate the paper extends)
UMLRT_PROFILE: Tuple[StereotypeDef, ...] = (
    StereotypeDef(
        "capsule", "Class", "UML-RT",
        "active object; behaviour is a hierarchical state machine under "
        "run-to-completion semantics",
        Capsule,
    ),
    StereotypeDef(
        "port", "Port", "UML-RT",
        "typed boundary object; end ports terminate messages, relay "
        "ports forward them",
        Port,
    ),
    StereotypeDef(
        "connect", "Connector", "UML-RT",
        "checked wiring between two protocol-compatible ports",
        Connector,
    ),
    StereotypeDef(
        "protocol", "Collaboration", "UML-RT",
        "named contract of incoming/outgoing signals with base and "
        "conjugate roles",
        Protocol,
    ),
    StereotypeDef(
        "state machine", "StateMachine", "UML-RT",
        "hierarchical statechart: the behaviour of a capsule",
        StateMachine,
    ),
    StereotypeDef(
        "Time service", "Class", "UML-RT",
        "message-based timing: timeout messages queued like any other "
        "message (hence 'unpredictable' timing)",
        TimingService,
    ),
)

#: the paper's extension profile (Table 1, right column)
EXTENSION_PROFILE: Tuple[StereotypeDef, ...] = (
    StereotypeDef(
        "streamer", "Class", "Extension",
        "capsule-like actor whose behaviour is a solver computing "
        "equations over dataflow; may contain sub-streamers",
        Streamer,
    ),
    StereotypeDef(
        "DPort", "Port", "Extension",
        "data port carrying a typed dataflow; circle notation",
        DPort, notation="circle",
    ),
    StereotypeDef(
        "SPort", "Port", "Extension",
        "signal port conveying protocol messages between streamers and "
        "capsules; square notation",
        SPort, notation="square",
    ),
    StereotypeDef(
        "flow", "Connector", "Extension",
        "directed dataflow connection; legal iff the source flow type is "
        "a subset of the target flow type (W1)",
        Flow,
    ),
    StereotypeDef(
        "relay", "Connector", "Extension",
        "fan-out point generating two similar flows from a flow (W2)",
        Relay,
    ),
    StereotypeDef(
        "flow type", "DataType", "Extension",
        "record type of a dataflow connection; plays the role protocols "
        "play for signal ports",
        FlowType,
    ),
    StereotypeDef(
        "solver", "Class", "Extension",
        "numeric integrator computing a streamer's equations",
        SolverBase,
    ),
    StereotypeDef(
        "strategy", "Class", "Extension",
        "the pluggable binding slot through which concrete solvers are "
        "attached and hot-swapped (Figure 1)",
        SolverBinding,
    ),
    StereotypeDef(
        "Time", "Class", "Extension",
        "continuous, monotone simulation clock usable by both worlds",
        ContinuousTime,
    ),
)

#: Table 1 rows: (UML-RT concept, extension stereotype names)
TABLE1: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("capsule", ("streamer",)),
    ("port", ("DPort", "SPort")),
    ("connect", ("flow", "relay")),
    ("protocol", ("flow type",)),
    ("state machine", ("solver", "strategy")),
    ("Time service", ("Time",)),
)


def _by_name() -> Dict[str, StereotypeDef]:
    return {s.name: s for s in UMLRT_PROFILE + EXTENSION_PROFILE}


def implementation_of(stereotype_name: str) -> type:
    """The library class implementing a stereotype (raises if unknown)."""
    defs = _by_name()
    if stereotype_name not in defs:
        raise KeyError(f"unknown stereotype {stereotype_name!r}")
    impl = defs[stereotype_name].implementation
    if impl is None:
        raise KeyError(f"stereotype {stereotype_name!r} not implemented")
    return impl


def table1_rows() -> List[Tuple[str, str]]:
    """Table 1 as printable (UML-RT, Extension) string pairs."""
    return [
        (umlrt, ", ".join(extensions)) for umlrt, extensions in TABLE1
    ]


def render_table1() -> str:
    """Render Table 1 exactly in the paper's two-column layout."""
    rows = table1_rows()
    left_width = max(len("UML-RT"), *(len(a) for a, __ in rows))
    right_width = max(len("Extension"), *(len(b) for __, b in rows))
    sep = f"+-{'-' * left_width}-+-{'-' * right_width}-+"
    lines = [
        "Table 1. New stereotypes comparing with UML-RT",
        sep,
        f"| {'UML-RT'.ljust(left_width)} | "
        f"{'Extension'.ljust(right_width)} |",
        sep,
    ]
    for left, right in rows:
        lines.append(
            f"| {left.ljust(left_width)} | {right.ljust(right_width)} |"
        )
    lines.append(sep)
    return "\n".join(lines)


def new_stereotype_count() -> int:
    """The paper says "eight new stereotypes" — count the extension column
    entries excluding ``Time`` (introduced as a service, like the Time
    service row it replaces)."""
    names = [
        name for __, extensions in TABLE1 for name in extensions
    ]
    return len([n for n in names if n != "Time"])
