"""Content-addressed plan cache: compile once, serve many.

Every simulation request needs a compiled artefact — an
:class:`~repro.core.batch.BatchProgram`, generated source, a solver-bound
plan — derived deterministically from the request's *content*.  The
:class:`PlanCache` keys those artefacts by
:meth:`repro.core.plan.ExecutionPlan.fingerprint`: a stable hash over the
plan's node/edge/guard tables plus caller extras (solver binding, step
size, record list, sweep paths).  Two structurally identical diagrams —
even built independently by different requests — collide on the same key,
so a warm service compiles each distinct model exactly once no matter how
many users submit it.

Properties:

* **Thread-safe, compile-once**: concurrent :meth:`get_or_compile` calls
  for the same missing key run the factory exactly once; the other
  callers block on the in-flight compile and share its result (or its
  exception).  Distinct keys compile concurrently — the cache lock is
  never held while a factory runs.
* **LRU-bounded**: ``capacity`` caps resident entries; least-recently
  *used* entries are evicted, with an eviction counter for dashboards.
* **Invalidation by key mismatch**: fingerprints hash parameter values
  and structure, so a mutated diagram simply stops matching its old
  entry (which ages out of the LRU).  Explicit :meth:`invalidate` /
  :meth:`clear` exist for callers that know a dependency changed outside
  the fingerprint's view (e.g. a re-registered solver factory).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.service.telemetry import MetricsRegistry


class CacheError(Exception):
    """Raised on cache misconfiguration."""


class _Inflight:
    """Bookkeeping for one in-progress compile."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class PlanCache:
    """A thread-safe, LRU-bounded, content-addressed artefact cache."""

    def __init__(
        self,
        capacity: int = 128,
        metrics: Optional[MetricsRegistry] = None,
        on_evict: Optional[Callable[[str], None]] = None,
    ) -> None:
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        #: called with the evicted key on every LRU eviction (capacity
        #: pressure only, not explicit invalidation); used by callers
        #: that count evictions under their own metric name
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._inflight: Dict[str, _Inflight] = {}
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0
        self.invalidations = 0
        self._metrics = metrics

    # ------------------------------------------------------------------
    def get_or_compile(self, key: str, factory: Callable[[], Any]) -> Any:
        """Return the cached artefact for ``key``, compiling at most once.

        On a miss, the first caller runs ``factory()`` outside the cache
        lock; concurrent callers for the same key wait and share the
        outcome.  A factory exception is propagated to *every* waiting
        caller and nothing is cached, so a transient compile failure can
        be retried.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("cache.hits")
                    return self._entries[key]
                self.misses += 1
                self._count("cache.misses")
                inflight = self._inflight.get(key)
                if inflight is None:
                    inflight = self._inflight[key] = _Inflight()
                    owner = True
                else:
                    owner = False
            if owner:
                try:
                    value = factory()
                except BaseException as exc:
                    with self._lock:
                        inflight.error = exc
                        self._inflight.pop(key, None)
                    inflight.event.set()
                    raise
                with self._lock:
                    self.compiles += 1
                    self._count("cache.compiles")
                    self._insert(key, value)
                    inflight.value = value
                    self._inflight.pop(key, None)
                inflight.event.set()
                return value
            inflight.event.wait()
            if inflight.error is not None:
                raise inflight.error
            # the owner may have been invalidated between insert and our
            # wake-up; trust its value only if it produced one
            return inflight.value

    def get(self, key: str) -> Optional[Any]:
        """Peek without compiling (counts as hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("cache.hits")
                return self._entries[key]
            self.misses += 1
            self._count("cache.misses")
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert/replace an entry directly."""
        with self._lock:
            self._insert(key, value)

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it was resident."""
        with self._lock:
            present = self._entries.pop(key, None) is not None
            if present:
                self.invalidations += 1
            return present

    def clear(self) -> int:
        """Drop every resident entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    # ------------------------------------------------------------------
    def _insert(self, key: str, value: Any) -> None:
        # caller holds the lock
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            evicted, __ = self._entries.popitem(last=False)
            self.evictions += 1
            self._count("cache.evictions")
            if self._on_evict is not None:
                self._on_evict(evicted)

    def _count(self, name: str) -> None:
        # caller holds the lock; registry counters have their own lock
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"PlanCache({stats['entries']}/{self.capacity} entries, "
            f"hit_rate={stats['hit_rate']:.2f})"
        )
