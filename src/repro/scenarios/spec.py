"""Scenario specifications — the seed-to-workload contract.

A :class:`ScenarioSpec` is a *pure function of its seed*:
:meth:`ScenarioSpec.from_seed` derives the family and every parameter
from one ``random.Random(seed)`` stream and nothing else.  That purity
is what makes ``python -m repro.scenarios replay --seed <s>`` exact —
the campaign runner's coverage steering only *selects among* candidate
seeds, it never rewrites what a seed means, so a failing seed replays
to the identical workload on any machine regardless of what the ledger
looked like when the campaign generated it.

Families
--------
``dag`` / ``dag_sampled``
    Random feed-forward diagram mixes (:func:`~repro.scenarios.synth.
    synth_dag`), run differentially across backends at O0/O1.
``feedback``
    The same grammar closed with seeded delay-broken loops
    (:func:`~repro.scenarios.synth.synth_feedback`).
``plant``
    PID-over-plant control families with optimizer bait for all four
    passes (:func:`~repro.scenarios.synth.synth_plant`).
``batch``
    One diagram, N instances: :class:`~repro.core.batch.BatchSimulator`
    against the sequential interpreter reference, bitwise (continuous
    blocks only — the repo makes no bitwise batch-vs-sequential claim
    for sampled blocks).
``solver``
    Adaptive/implicit solver kinds (the ones compiled kernels demote
    on) through the interpreter, run-twice determinism.
``fault``
    A control model through the service :class:`~repro.service.jobs.
    SingleRunJob` with an injected crash, checkpoint spool and retry —
    recovered finals must equal the uninterrupted run's.
``multirate``
    Two-rate :class:`~repro.core.model.HybridModel` threads
    (:func:`~repro.scenarios.synth.synth_multirate`), rerun
    determinism plus lint harvest.
``defect``
    One registered defect builder (:mod:`repro.scenarios.defects`),
    driving the rules coverage dimension.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Tuple

#: fixed-step solver kinds every execution backend can kernelise
KERNEL_SOLVERS: Tuple[str, ...] = ("euler", "heun", "rk4")

#: solver kinds that demote compiled backends to the interpreter
DEMOTING_SOLVERS: Tuple[str, ...] = (
    "backward_euler", "rk45", "trapezoidal",
)

#: family -> draw weight; heavier families carry more of the coverage
FAMILIES: Tuple[Tuple[str, int], ...] = (
    ("dag", 3),
    ("dag_sampled", 2),
    ("feedback", 2),
    ("plant", 2),
    ("batch", 1),
    ("solver", 1),
    ("fault", 1),
    ("multirate", 1),
    ("defect", 3),
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined scenario: seed, family and drawn params."""

    seed: int
    family: str
    params: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_seed(seed: int) -> "ScenarioSpec":
        """The one true seed -> spec mapping (keep it pure!)."""
        from repro.scenarios.defects import DEFECTS

        rng = random.Random(seed)
        family = rng.choices(
            [name for name, __ in FAMILIES],
            weights=[weight for __, weight in FAMILIES],
        )[0]
        params: Dict[str, Any] = {}
        if family in ("dag", "dag_sampled"):
            params["blocks"] = rng.randint(8, 20)
            params["solver"] = rng.choice(KERNEL_SOLVERS)
        elif family == "feedback":
            params["blocks"] = rng.randint(8, 16)
            params["loops"] = rng.randint(1, 3)
            params["solver"] = rng.choice(KERNEL_SOLVERS)
        elif family == "plant":
            params["solver"] = rng.choice(KERNEL_SOLVERS)
        elif family == "batch":
            # continuous blocks only: the repo makes no bitwise claim
            # for sampled blocks between the batch codegen (closed-form
            # sample grid, sync evaluates outputs first) and the
            # sequential reference (incremental walk over stale pads) —
            # see tests/core/test_batch.py::TestSampledBlocks.  Sampled
            # opcodes get their differential coverage from the
            # ``dag_sampled`` family instead.
            params["blocks"] = rng.randint(6, 14)
            params["n"] = rng.randint(3, 6)
            params["solver"] = rng.choice(KERNEL_SOLVERS)
            params["sweep"] = rng.random() < 0.5
        elif family == "solver":
            params["blocks"] = rng.randint(6, 12)
            params["solver"] = rng.choice(DEMOTING_SOLVERS)
        elif family == "fault":
            params["crash_step"] = rng.randint(20, 60)
        elif family == "multirate":
            params["feedthrough"] = rng.random() < 0.5
        elif family == "defect":
            params["defect"] = rng.choice(sorted(DEFECTS))
        return ScenarioSpec(seed=seed, family=family, params=params)

    # ------------------------------------------------------------------
    # workload construction
    # ------------------------------------------------------------------
    def build(self):
        """The family's workload object (diagram, model or check
        target), freshly constructed — safe to call repeatedly."""
        from repro.scenarios import synth
        from repro.scenarios.defects import DEFECTS

        p = self.params
        if self.family == "dag":
            return synth.synth_dag(self.seed, blocks=p["blocks"])
        if self.family == "dag_sampled":
            return synth.synth_dag(
                self.seed, blocks=p["blocks"], sampled=True,
            )
        if self.family == "feedback":
            return synth.synth_feedback(
                self.seed, blocks=p["blocks"], loops=p["loops"],
            )
        if self.family == "plant":
            return synth.synth_plant(self.seed)
        if self.family in ("batch", "solver"):
            return synth.synth_dag(self.seed, blocks=p["blocks"])
        if self.family == "fault":
            return synth.synth_control_model(self.seed)
        if self.family == "multirate":
            return synth.synth_multirate(
                self.seed, feedthrough=p["feedthrough"],
            )
        if self.family == "defect":
            return DEFECTS[p["defect"]].builder()
        raise ValueError(f"unknown scenario family {self.family!r}")

    # ------------------------------------------------------------------
    # steering metadata
    # ------------------------------------------------------------------
    def targets(self) -> Dict[str, FrozenSet[str]]:
        """Coverage keys this scenario is *predicted* to contribute.

        Used only to rank candidates during steering — approximate by
        design (pre-optimization opcodes, declared rule codes), never a
        substitute for what the executors actually record.
        """
        from repro.scenarios.defects import DEFECTS

        out: Dict[str, FrozenSet[str]] = {}
        if self.family == "defect":
            out["rules"] = DEFECTS[self.params["defect"]].expected
            return out
        solver = self.params.get("solver")
        if solver:
            out["solvers"] = frozenset([solver])
        if self.family == "batch":
            out["backends"] = frozenset(["batch"])
        elif self.family == "solver":
            out["backends"] = frozenset(["interpreter"])
        if self.family in (
            "dag", "dag_sampled", "feedback", "plant", "batch",
        ):
            target = self.build()
            opcodes = {
                type(sub).__name__ for sub in target.subs.values()
            }
            if self.family == "plant":
                # the bait substructures guarantee both synthetic leaves
                opcodes.update(("FoldedBlock", "FusedChain"))
            out["opcodes"] = frozenset(opcodes)
        return out

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "family": self.family,
                "params": dict(self.params),
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        data = json.loads(text)
        return ScenarioSpec(
            seed=int(data["seed"]),
            family=str(data["family"]),
            params=dict(data.get("params", {})),
        )

    @staticmethod
    def from_mapping(data: Mapping[str, Any]) -> "ScenarioSpec":
        return ScenarioSpec(
            seed=int(data["seed"]),
            family=str(data["family"]),
            params=dict(data.get("params", {})),
        )
