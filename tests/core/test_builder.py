"""ModelBuilder: path-addressed fluent construction."""

import pytest

from tests.conftest import PING, ConstLeaf, Echo, GainLeaf, IntegratorLeaf

from repro.core.builder import BuilderError, ModelBuilder
from repro.core.flowtype import SCALAR
from repro.core.streamer import Streamer
from repro.umlrt.protocol import Protocol

CMD = Protocol.define("BCmd", outgoing=("set_k",), incoming=())


class TestPaths:
    def build(self):
        builder = ModelBuilder("b")
        builder.streamer(ConstLeaf("c", 2.0))
        builder.streamer(GainLeaf("g", 3.0))
        return builder

    def test_flow_by_path(self):
        builder = self.build()
        builder.flow("c.y", "g.u")
        model = builder.build()
        assert len(model.flows) == 1

    def test_unknown_streamer(self):
        with pytest.raises(BuilderError, match="unknown top streamer"):
            self.build().flow("ghost.y", "g.u")

    def test_unknown_port(self):
        with pytest.raises(BuilderError, match="no DPort"):
            self.build().flow("c.ghost", "g.u")

    def test_nested_path(self):
        builder = ModelBuilder("b")
        top = Streamer("top")
        inner = top.add_sub(ConstLeaf("inner", 1.0))
        builder.streamer(top)
        assert builder.dport("top.inner.y") is inner.dport("y")

    def test_short_path_rejected(self):
        with pytest.raises(BuilderError):
            self.build().dport("justaname")

    def test_relay_pads_addressable(self):
        builder = self.build()
        builder.streamer(IntegratorLeaf("i1"))
        builder.streamer(IntegratorLeaf("i2"))
        builder.relay("split", SCALAR)
        builder.flow("c.y", "split.in")
        builder.flow("split.out_a", "i1.u")
        builder.flow("split.out_b", "i2.u")
        builder.flow("c.y", "g.u") if False else None
        model = builder.model
        assert len(model.flows) == 3

    def test_unknown_relay_pad(self):
        builder = self.build()
        builder.relay("split", SCALAR)
        with pytest.raises(BuilderError, match="no pad"):
            builder.dport("split.out_c")


class TestThreadsAndControllers:
    def test_thread_assignment(self):
        builder = ModelBuilder("b")
        builder.thread("fast", solver="rk4", h=1e-4)
        builder.streamer(ConstLeaf("c", 1.0), thread="fast")
        model = builder.model
        fast = [t for t in model.threads if t.name == "fast"][0]
        assert model.streamers[0].thread is fast

    def test_unknown_thread(self):
        builder = ModelBuilder("b")
        with pytest.raises(BuilderError):
            builder.streamer(ConstLeaf("c", 1.0), thread="ghost")

    def test_controller_assignment(self):
        builder = ModelBuilder("b")
        builder.controller("aux")
        builder.capsule(Echo("echo"), controller="aux")
        echo = builder.model.rts.tops[0]
        assert echo.controller.name == "aux"

    def test_unknown_controller(self):
        builder = ModelBuilder("b")
        with pytest.raises(BuilderError):
            builder.capsule(Echo("echo"), controller="ghost")


class TestSPortLinks:
    class Tunable(GainLeaf):
        def __init__(self, name):
            super().__init__(name)
            self.add_sport("tune", CMD.conjugate())

    class Commander(Echo):
        def build_structure(self):
            self.create_port("cmd", CMD.base())

        def build_behaviour(self):
            return None

    def test_sport_link_by_path(self):
        builder = ModelBuilder("b")
        builder.streamer(ConstLeaf("c", 1.0))
        builder.streamer(self.Tunable("g"))
        builder.flow("c.y", "g.u")
        builder.capsule(self.Commander("cmdr"))
        builder.sport_link("cmdr.cmd", "g.tune")
        model = builder.build()
        assert len(model.bridges) == 1

    def test_unknown_capsule(self):
        builder = ModelBuilder("b")
        builder.streamer(self.Tunable("g"))
        with pytest.raises(BuilderError, match="unknown capsule"):
            builder.sport_link("ghost.cmd", "g.tune")

    def test_unknown_sport(self):
        builder = ModelBuilder("b")
        builder.streamer(ConstLeaf("c", 1.0))
        builder.capsule(self.Commander("cmdr"))
        with pytest.raises(BuilderError, match="no SPort"):
            builder.sport_link("cmdr.cmd", "c.ghost")


class TestBuildRuns:
    def test_probe_and_run(self):
        model = (
            ModelBuilder("b")
            .streamer(ConstLeaf("c", 2.0))
            .streamer(IntegratorLeaf("i"))
            .flow("c.y", "i.u")
            .probe("out", "i.y")
            .build()
        )
        model.run(until=1.0, sync_interval=0.1)
        assert model.probe("out").y_final[0] == pytest.approx(2.0)

    def test_build_validates(self):
        builder = ModelBuilder("b")
        builder.streamer(GainLeaf("a"))
        builder.streamer(GainLeaf("b"))
        builder.flow("a.y", "b.u")
        builder.flow("b.y", "a.u")  # algebraic loop
        with pytest.raises(Exception):
            builder.build(strict=True)
