"""Network flattening: resolution, ordering, algebraic loops (W8, W12)."""

import numpy as np
import pytest

from tests.conftest import ConstLeaf, DecayLeaf, GainLeaf, IntegratorLeaf

from repro.core.dport import Direction
from repro.core.flowtype import SCALAR
from repro.core.network import FlatNetwork, NetworkError
from repro.core.streamer import Streamer


def chain_model():
    """const(2) -> gain(3) -> integrator."""
    top = Streamer("top")
    const = top.add_sub(ConstLeaf("const", 2.0))
    gain = top.add_sub(GainLeaf("gain", 3.0))
    integ = top.add_sub(IntegratorLeaf("integ"))
    top.add_flow(const.dport("y"), gain.dport("u"))
    top.add_flow(gain.dport("y"), integ.dport("u"))
    return top, const, gain, integ


class TestResolution:
    def test_direct_edges(self):
        top, *_ = chain_model()
        network = FlatNetwork([top])
        assert len(network.edges) == 2
        assert network.stats()["leaves"] == 3

    def test_through_boundary_ports(self):
        """Flows crossing composite boundaries resolve to leaf edges."""
        top = Streamer("top")
        inner = top.add_sub(Streamer("inner"))
        source = inner.add_sub(ConstLeaf("src", 1.0))
        inner.add_boundary("out", Direction.OUT, SCALAR)
        inner.add_flow(source.dport("y"), inner.dport("out"))
        sink = top.add_sub(IntegratorLeaf("sink"))
        top.add_flow(inner.dport("out"), sink.dport("u"))
        network = FlatNetwork([top])
        assert len(network.edges) == 1
        edge = network.edges[0]
        assert edge.src_leaf is source and edge.dst_leaf is sink
        assert len(edge.path) == 2  # two hops through the boundary

    def test_through_relay(self):
        top = Streamer("top")
        source = top.add_sub(ConstLeaf("src", 1.0))
        a = top.add_sub(IntegratorLeaf("a"))
        b = top.add_sub(IntegratorLeaf("b"))
        relay = top.add_relay("split", SCALAR)
        top.add_flow(source.dport("y"), relay.input)
        top.add_flow(relay.out_a, a.dport("u"))
        top.add_flow(relay.out_b, b.dport("u"))
        network = FlatNetwork([top])
        assert len(network.edges) == 2

    def test_double_driver_rejected(self):
        """W8: an IN DPort cannot have two drivers."""
        top = Streamer("top")
        a = top.add_sub(ConstLeaf("a", 1.0))
        b = top.add_sub(ConstLeaf("b", 2.0))
        sink = top.add_sub(IntegratorLeaf("sink"))
        top.add_flow(a.dport("y"), sink.dport("u"))
        top.add_flow(b.dport("y"), sink.dport("u"))
        with pytest.raises(NetworkError, match="W8"):
            FlatNetwork([top])

    def test_unconnected_input_reported(self):
        top = Streamer("top")
        top.add_sub(IntegratorLeaf("lonely"))
        network = FlatNetwork([top])
        assert len(network.unconnected_inputs) == 1

    def test_empty_tops_rejected(self):
        with pytest.raises(NetworkError):
            FlatNetwork([])


class TestOrdering:
    def test_topological_order(self):
        top, const, gain, integ = chain_model()
        network = FlatNetwork([top])
        order = [leaf.name for leaf in network.order]
        assert order.index("const") < order.index("gain")
        # integrator is not feedthrough: no constraint, but must appear
        assert set(order) == {"const", "gain", "integ"}

    def test_feedback_through_integrator_allowed(self):
        """gain -> integrator -> gain loop is fine (state breaks it)."""
        top = Streamer("top")
        gain = top.add_sub(GainLeaf("gain", -1.0))
        integ = top.add_sub(IntegratorLeaf("integ"))
        top.add_flow(gain.dport("y"), integ.dport("u"))
        top.add_flow(integ.dport("y"), gain.dport("u"))
        network = FlatNetwork([top])  # must not raise
        assert len(network.edges) == 2

    def test_algebraic_loop_rejected(self):
        """W12: gain -> gain cycle has no state to break it."""
        top = Streamer("top")
        a = top.add_sub(GainLeaf("a"))
        b = top.add_sub(GainLeaf("b"))
        top.add_flow(a.dport("y"), b.dport("u"))
        top.add_flow(b.dport("y"), a.dport("u"))
        with pytest.raises(NetworkError, match="W12"):
            FlatNetwork([top])

    def test_deterministic_order(self):
        orders = []
        for __ in range(2):
            top, *_ = chain_model()
            orders.append([l.name for l in FlatNetwork([top]).order])
        assert orders[0] == orders[1]


class TestStateVector:
    def test_layout(self):
        top, __, ___, integ = chain_model()
        network = FlatNetwork([top])
        assert network.state_size == 1
        lo, hi = network.state_slice(integ)
        assert hi - lo == 1

    def test_initial_state(self):
        top = Streamer("top")
        top.add_sub(DecayLeaf("d1", y0=3.0))
        top.add_sub(DecayLeaf("d2", y0=7.0))
        network = FlatNetwork([top])
        assert sorted(network.initial_state().tolist()) == [3.0, 7.0]

    def test_bad_initial_state_shape(self):
        class Broken(IntegratorLeaf):
            def initial_state(self):
                return np.zeros(3)

        top = Streamer("top")
        top.add_sub(Broken("b"))
        with pytest.raises(NetworkError, match="initial_state"):
            FlatNetwork([top]).initial_state()


class TestEvaluation:
    def test_rhs_chain(self):
        top, *_ = chain_model()
        network = FlatNetwork([top])
        dstate = network.rhs(0.0, network.initial_state())
        assert dstate.tolist() == [6.0]  # 2 * 3

    def test_evaluate_refreshes_ports(self):
        top, const, gain, integ = chain_model()
        network = FlatNetwork([top])
        network.evaluate(0.0, np.array([0.0]))
        assert gain.dport("y").read_scalar() == 6.0

    def test_rhs_shape_validated(self):
        class Broken(IntegratorLeaf):
            def derivatives(self, t, state):
                return np.zeros(2)

        top = Streamer("top")
        top.add_sub(Broken("b"))
        network = FlatNetwork([top])
        with pytest.raises(NetworkError, match="derivatives"):
            network.rhs(0.0, network.initial_state())

    def test_guard_collection(self):
        class Guarded(DecayLeaf):
            zero_crossing_names = ("level",)

            def zero_crossings(self, t, state):
                return (state[0] - 0.5,)

        top = Streamer("top")
        leaf = top.add_sub(Guarded("g", y0=1.0))
        network = FlatNetwork([top])
        assert len(network.guards) == 1
        values = network.guard_values(
            0.0, network.initial_state(), network.guards
        )
        assert values == [0.5]

    def test_guard_count_mismatch_detected(self):
        class Broken(DecayLeaf):
            zero_crossing_names = ("a", "b")

            def zero_crossings(self, t, state):
                return (1.0,)  # declares 2, returns 1

        top = Streamer("top")
        top.add_sub(Broken("b"))
        network = FlatNetwork([top])
        with pytest.raises(NetworkError):
            network.guard_values(
                0.0, network.initial_state(), network.guards
            )
