"""Capsules: the active objects of UML-RT.

A capsule owns ports, optional sub-capsule *parts*, and a hierarchical
state machine as its behaviour.  Capsules never share memory; they interact
exclusively by sending signals through ports.  Users subclass
:class:`Capsule` and override the three hooks:

* :meth:`Capsule.build_structure` — create ports, parts and connectors;
* :meth:`Capsule.build_behaviour` — return the capsule's state machine
  (or ``None`` for a purely structural capsule);
* :meth:`Capsule.on_start` — run once when the system starts the capsule.

Every capsule automatically owns an end port named ``"timer"`` wired to the
timing service, so transitions can be triggered by ``("timer", "timeout")``.

The paper's extension (§2, Figure 3) additionally lets capsules *contain
streamers* and carry relay-only DPorts; that lives in :mod:`repro.core` and
attaches to this class via :class:`repro.core.model.HybridModel`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Type

from repro.umlrt.connector import Connector
from repro.umlrt.port import Port, PortKind
from repro.umlrt.protocol import Protocol, ProtocolRole
from repro.umlrt.signal import Message, Priority
from repro.umlrt.statemachine import StateMachine

if TYPE_CHECKING:  # pragma: no cover
    from repro.umlrt.runtime import RTSystem
    from repro.umlrt.controller import Controller


class CapsuleError(Exception):
    """Raised on ill-formed capsule structure or illegal operations."""


class PartKind(enum.Enum):
    """Lifecycle category of a sub-capsule part (ROOM terminology)."""

    FIXED = "fixed"        #: created with the parent, lives as long
    OPTIONAL = "optional"  #: incarnated/destroyed via the frame service
    PLUGIN = "plugin"      #: an externally supplied capsule plugged in


#: Protocol of the implicit per-capsule timing port.
TIMING_PROTOCOL = Protocol.define("Timing", outgoing=(), incoming=("timeout",))


class CapsulePart:
    """A named slot in a parent capsule that holds sub-capsule instances."""

    def __init__(
        self,
        name: str,
        capsule_class: Type["Capsule"],
        kind: PartKind = PartKind.FIXED,
        factory_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.capsule_class = capsule_class
        self.kind = kind
        self.factory_kwargs = dict(factory_kwargs or {})
        self.instance: Optional["Capsule"] = None

    @property
    def occupied(self) -> bool:
        return self.instance is not None


class Capsule:
    """Base class for all capsules.

    Parameters
    ----------
    instance_name:
        Name of this capsule instance; part instances get
        ``"<parent>.<part>"`` automatically.
    """

    def __init__(self, instance_name: str = "") -> None:
        self.instance_name = instance_name or type(self).__name__
        self.ports: Dict[str, Port] = {}
        self.parts: Dict[str, CapsulePart] = {}
        self.behaviour: Optional[StateMachine] = None
        self.parent: Optional["Capsule"] = None
        self.runtime: Optional["RTSystem"] = None
        self.controller: Optional["Controller"] = None
        self._structure_built = False
        # implicit timing port, present on every capsule
        self.create_port("timer", TIMING_PROTOCOL.base())

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    def build_structure(self) -> None:
        """Create ports, parts and internal connectors.  Override me."""

    def build_behaviour(self) -> Optional[StateMachine]:
        """Return this capsule's state machine, or None.  Override me."""
        return None

    def on_start(self) -> None:
        """Called once when the runtime starts this capsule.  Override me."""

    def on_message(self, message: Message) -> None:
        """Called for every dispatched message *before* the state machine.

        Override for message-level bookkeeping; the default does nothing.
        """

    # ------------------------------------------------------------------
    # structure construction API (used inside build_structure)
    # ------------------------------------------------------------------
    def create_port(
        self,
        name: str,
        role: ProtocolRole,
        kind: PortKind = PortKind.END,
        replication: int = 1,
    ) -> Port:
        if name in self.ports:
            raise CapsuleError(
                f"duplicate port {name!r} on capsule {self.instance_name}"
            )
        port = Port(name, role, kind, owner=self, replication=replication)
        self.ports[name] = port
        return port

    def create_part(
        self,
        name: str,
        capsule_class: Type["Capsule"],
        kind: PartKind = PartKind.FIXED,
        **factory_kwargs: Any,
    ) -> CapsulePart:
        if name in self.parts:
            raise CapsuleError(
                f"duplicate part {name!r} on capsule {self.instance_name}"
            )
        part = CapsulePart(name, capsule_class, kind, factory_kwargs)
        self.parts[name] = part
        return part

    def connect(self, a: Port, b: Port) -> Connector:
        """Create a connector between two ports (checks role compatibility)."""
        return Connector(a, b)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise CapsuleError(
                f"capsule {self.instance_name} has no port {name!r}"
            ) from None

    def part(self, name: str) -> CapsulePart:
        try:
            return self.parts[name]
        except KeyError:
            raise CapsuleError(
                f"capsule {self.instance_name} has no part {name!r}"
            ) from None

    def part_instance(self, name: str) -> "Capsule":
        part = self.part(name)
        if part.instance is None:
            raise CapsuleError(
                f"part {name!r} of {self.instance_name} is not incarnated"
            )
        return part.instance

    def send(
        self,
        port_name: str,
        signal: str,
        data: Any = None,
        priority: Priority = Priority.GENERAL,
        index: Optional[int] = None,
    ) -> int:
        """Send ``signal`` out of the named port (``index`` selects one
        peer of a replicated port; None broadcasts)."""
        return self.port(port_name).send(signal, data, priority, index)

    @property
    def timer(self):
        """The runtime timing service, bound for convenience."""
        if self.runtime is None:
            raise CapsuleError(
                f"capsule {self.instance_name} is not attached to a runtime"
            )
        return self.runtime.timing

    def inform_in(self, delay: float, data: Any = None):
        """Schedule a one-shot timeout delivered to this capsule's timer port."""
        return self.timer.inform_in(self, delay, data)

    def inform_every(self, period: float, data: Any = None):
        """Schedule a periodic timeout delivered to this capsule's timer port."""
        return self.timer.inform_every(self, period, data)

    # ------------------------------------------------------------------
    # lifecycle (driven by the runtime / frame service)
    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self._structure_built:
            return
        self._structure_built = True
        self.build_structure()
        self.behaviour = self.build_behaviour()
        for part in self.parts.values():
            if part.kind is PartKind.FIXED:
                self._incarnate_part(part)

    def _incarnate_part(self, part: CapsulePart, **extra: Any) -> "Capsule":
        if part.occupied:
            raise CapsuleError(
                f"part {part.name!r} of {self.instance_name} already occupied"
            )
        kwargs = dict(part.factory_kwargs)
        kwargs.update(extra)
        instance = part.capsule_class(
            f"{self.instance_name}.{part.name}", **kwargs
        )
        instance.parent = self
        part.instance = instance
        instance._build()
        return instance

    def _start(self) -> None:
        if self.behaviour is not None and not self.behaviour.started:
            self.behaviour.start(self)
        self.on_start()
        for part in self.parts.values():
            if part.instance is not None:
                part.instance._start()

    def _dispatch(self, message: Message) -> bool:
        self.on_message(message)
        if self.behaviour is None:
            return False
        fired = self.behaviour.dispatch(self, message)
        if fired:
            # re-enqueue messages the state change recalled (ROOM defer)
            for recalled in self.behaviour.take_recalled():
                if self.runtime is not None and recalled.port is not None:
                    self.runtime.deliver(recalled.port, recalled)
        return fired

    def descendants(self) -> List["Capsule"]:
        """All transitively contained capsule instances, depth-first."""
        out: List[Capsule] = []
        for part in self.parts.values():
            if part.instance is not None:
                out.append(part.instance)
                out.extend(part.instance.descendants())
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.instance_name!r})"
