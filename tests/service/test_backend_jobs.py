"""Backend selection through the service layer.

Every job resolves an execution backend; the resolution is observable —
a ``backend`` telemetry event per job plus ``backend.used.<name>`` /
``backend.fallback`` counters — and enters the plan-cache key, so
artefacts compiled for different backends never cross-serve.
"""

import numpy as np

from repro.core.opt import resolve_config
from repro.dataflow import PID, FirstOrderLag, Step, Sum
from repro.dataflow.diagram import Diagram
from repro.service import BACKEND, BatchJob, SimulationService, SingleRunJob
from repro.core.model import HybridModel

H = 1.0 / 512.0
T_END = 0.25


def loop_diagram():
    d = Diagram("loop")
    d.add(Step("ref", amplitude=1.0))
    d.add(Sum("err", signs="+-"))
    d.add(PID("pid", kp=3.0, ki=1.5, tf=0.5))
    d.add(FirstOrderLag("plant", tau=0.4))
    d.connect("ref.out", "err.in1")
    d.connect("plant.out", "err.in2")
    d.connect("err.out", "pid.in")
    d.connect("pid.out", "plant.in")
    return d


def loop_model() -> HybridModel:
    diagram = loop_diagram()
    diagram.finalise()
    model = HybridModel("loop")
    model.default_thread.h = H
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at("plant.out"))
    return model


def backend_events(handle):
    return [e for e in handle.stream() if e.kind == BACKEND]


class TestSingleRunBackend:
    def test_kernel_backend_reported_and_counted(self):
        with SimulationService(workers=1) as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=1.0 / 64.0, backend="compiled-python",
            ))
            events = backend_events(handle)
            handle.result()
            assert len(events) == 1
            assert events[0].payload["requested"] == "compiled-python"
            assert events[0].payload["effective"] == "compiled-python"
            assert events[0].payload["reason"] is None
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.used.compiled-python"] == 1
            assert "backend.fallback" not in counters

    def test_default_is_interpreter(self):
        with SimulationService(workers=1) as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=1.0 / 64.0,
            ))
            events = backend_events(handle)
            handle.result()
            assert events[0].payload["effective"] == "interpreter"
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.used.interpreter"] == 1

    def test_kernel_run_matches_interpreter_run(self):
        with SimulationService(workers=1) as svc:
            fast = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=1.0 / 64.0, backend="compiled-python",
            )).result()
            plain = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=1.0 / 64.0,
            )).result()
        assert np.array_equal(fast.probes["y"].times, plain.probes["y"].times)
        assert np.array_equal(fast.probes["y"].states, plain.probes["y"].states)

    def test_fallback_reported_when_kernel_impossible(self, monkeypatch):
        # no C compiler anywhere: the native request degrades but the
        # job still succeeds, and both the event and the metric say why
        import repro.core.backend.native as native

        monkeypatch.setattr(native, "has_c_compiler", lambda: False)
        with SimulationService(workers=1) as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=T_END,
                sync_interval=1.0 / 64.0, backend="native-c",
            ))
            events = backend_events(handle)
            handle.result()
            assert events[0].payload["requested"] == "native-c"
            assert events[0].payload["effective"] == "compiled-python"
            assert events[0].payload["reason"]
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.fallback"] == 1
            assert counters["backend.fallback.native-c"] == 1
            assert counters["backend.used.compiled-python"] == 1


class TestBatchJobBackend:
    def test_batch_jobs_always_report_batch(self):
        with SimulationService(workers=1) as svc:
            handle = svc.submit(BatchJob(
                diagram_factory=loop_diagram, n=4, t_end=T_END, h=H,
                records=["plant.out"],
                sweeps={"pid.kp": np.linspace(1.0, 4.0, 4)},
            ))
            events = backend_events(handle)
            handle.result()
            assert events[0].payload["requested"] == "batch"
            assert events[0].payload["effective"] == "batch"
            assert events[0].payload["reason"] is None

    def test_scalar_backend_request_on_batch_explains_itself(self):
        with SimulationService(workers=1) as svc:
            handle = svc.submit(BatchJob(
                diagram_factory=loop_diagram, n=4, t_end=T_END, h=H,
                records=["plant.out"], backend="compiled-python",
                sweeps={"pid.kp": np.linspace(1.0, 4.0, 4)},
            ))
            events = backend_events(handle)
            handle.result()
            assert events[0].payload["requested"] == "compiled-python"
            assert events[0].payload["effective"] == "batch"
            assert "batch" in events[0].payload["reason"]
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.fallback"] == 1

    def test_requested_backend_keys_the_cache_separately(self):
        diagram = loop_diagram()
        diagram.finalise()
        plan = None
        from repro.core.network import FlatNetwork

        plan = FlatNetwork([diagram]).plan()
        opt = resolve_config(0, None)

        def key(backend):
            job = BatchJob(
                diagram_factory=loop_diagram, n=4, t_end=T_END, h=H,
                records=["plant.out"], backend=backend,
            )
            return job._cache_key(plan, opt)

        assert key(None) == key("batch")
        assert key("compiled-python") != key(None)
        assert key("native-batch") != key(None)
        assert key("native-batch") != key("compiled-python")


class TestNativeBatchJob:
    def job(self, **overrides):
        spec = dict(
            diagram_factory=loop_diagram, n=6, t_end=T_END, h=H,
            records=["plant.out", "pid.out"],
            sweeps={"pid.kp": np.linspace(1.0, 4.0, 6)},
            backend="native-batch",
        )
        spec.update(overrides)
        return BatchJob(**spec)

    def test_native_batch_reported_and_bitwise(self):
        import pytest

        from repro.core.backend import has_c_compiler

        if not has_c_compiler():
            pytest.skip("no C compiler on this host")
        with SimulationService(workers=1) as svc:
            handle = svc.submit(self.job())
            events = backend_events(handle)
            native = handle.result()
            assert events[0].payload["requested"] == "native-batch"
            assert events[0].payload["effective"] == "native-batch"
            assert events[0].payload["reason"] is None
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.used.native-batch"] == 1
            assert "backend.fallback" not in counters
            plain = svc.submit(self.job(backend=None)).result()
        assert np.array_equal(native.t, plain.t)
        for label in native.series:
            assert np.array_equal(
                native.series[label], plain.series[label]
            ), label
        assert np.array_equal(native.final_states, plain.final_states)

    def test_no_compiler_demotes_with_metric(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with SimulationService(workers=1) as svc:
            handle = svc.submit(self.job())
            events = backend_events(handle)
            handle.result()  # the job itself must still succeed
            assert events[0].payload["requested"] == "native-batch"
            assert events[0].payload["effective"] == "batch"
            assert "compiler" in events[0].payload["reason"]
            counters = svc.metrics_snapshot()["counters"]
            assert counters["backend.fallback"] == 1
            assert counters["backend.fallback.native-batch"] == 1
            assert counters["backend.used.batch"] == 1
