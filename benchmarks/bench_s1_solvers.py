"""Experiment S1 — solver strategy sweep (the ``solver`` stereotype).

Accuracy-versus-cost of every registered solver strategy on a smooth
plant and a stiff plant, plus zero-crossing localisation accuracy as a
function of step size.  Expected shapes: error ratios follow declared
convergence orders; implicit solvers alone remain stable on the stiff
plant at coarse steps; event localisation error is far below the step.
"""

import math

import numpy as np
import pytest

from repro.solvers import (
    EventSpec,
    RK4,
    SolverError,
    available_solvers,
    integrate,
    make_solver,
)


def test_s1_accuracy_sweep(benchmark, report, bench_json):
    """All solvers on y' = -2y over [0, 1], h = 0.01."""
    results = {}

    def sweep():
        for name in available_solvers():
            solver = make_solver(name)
            outcome = integrate(
                lambda t, y: -2.0 * y, [1.0], 0.0, 1.0, solver, h=0.01
            )
            results[name] = {
                "error": abs(outcome.y_final[0] - math.exp(-2.0)),
                "steps": outcome.steps,
                "order": solver.order,
            }

    benchmark(sweep)
    lines = [f"{'solver':<16}{'order':>6}{'steps':>7}{'final error':>14}"]
    for name, row in sorted(results.items(),
                            key=lambda kv: kv[1]["error"], reverse=True):
        lines.append(
            f"{name:<16}{row['order']:>6}{row['steps']:>7}"
            f"{row['error']:>14.2e}"
        )
    report("S1: solver accuracy on y' = -2y (h = 0.01)", lines)

    # shape: higher order -> smaller error (within explicit family)
    assert results["euler"]["error"] > results["heun"]["error"]
    assert results["heun"]["error"] > results["rk4"]["error"]
    assert results["backward_euler"]["error"] > \
        results["trapezoidal"]["error"]
    assert results["rk45"]["error"] < 1e-6
    bench_json("s1", {
        f"{name}_error": row["error"] for name, row in results.items()
    })


def test_s1_convergence_orders(benchmark, report):
    """Error ratio when halving h must be ~2^order."""
    ratios = {}

    def sweep():
        for name in ("euler", "heun", "rk4", "backward_euler",
                     "trapezoidal"):
            errors = []
            for h in (0.02, 0.01):
                solver = make_solver(name)
                outcome = integrate(
                    lambda t, y: -y, [1.0], 0.0, 1.0, solver, h=h
                )
                errors.append(abs(outcome.y_final[0] - math.exp(-1.0)))
            ratios[name] = (
                errors[0] / errors[1], make_solver(name).order
            )

    benchmark(sweep)
    lines = [f"{'solver':<16}{'order':>6}{'measured ratio':>15}"
             f"{'expected 2^p':>13}"]
    for name, (ratio, order) in ratios.items():
        lines.append(f"{name:<16}{order:>6}{ratio:>15.2f}{2**order:>13}")
        assert 2 ** order * 0.6 < ratio < 2 ** order * 1.6, name
    report("S1: convergence orders (halving h)", lines)


def test_s1_stiff_stability(benchmark, report):
    """lambda = -1000, h = 0.05: explicit explodes, implicit decays."""
    outcomes = {}

    def sweep():
        for name in available_solvers():
            solver = make_solver(name)
            try:
                with np.errstate(over="ignore", invalid="ignore"):
                    result = integrate(
                        lambda t, y: -1000.0 * y, [1.0], 0.0, 1.0,
                        solver, h=0.05,
                    )
                final = abs(result.y_final[0])
                outcomes[name] = (
                    "stable" if final < 1.0 else f"unstable ({final:.1e})"
                )
            except SolverError as exc:
                outcomes[name] = f"failed ({type(exc).__name__})"

    benchmark(sweep)
    report("S1: stiff plant (lambda=-1000) at h=0.05", [
        f"{name:<16}{status}" for name, status in outcomes.items()
    ])
    assert outcomes["backward_euler"] == "stable"
    assert outcomes["trapezoidal"] == "stable"
    assert "stable" != outcomes["euler"][:6]
    assert outcomes["rk45"] == "stable"  # adaptive shrinks its way through


def test_s1_event_localisation_accuracy(benchmark, report):
    """Falling-ball impact time error vs integration step size."""
    g = 9.81
    t_hit = math.sqrt(2.0 * 10.0 / g)
    rows = []

    def sweep():
        rows.clear()
        for h in (0.1, 0.02, 0.004):
            ground = EventSpec("ground", lambda t, y: y[0],
                               direction=-1, terminal=True)
            result = integrate(
                lambda t, y: np.array([y[1], -g]), [10.0, 0.0],
                0.0, 5.0, RK4(), h=h, events=[ground],
            )
            rows.append((h, abs(result.t_final - t_hit)))

    benchmark(sweep)
    report("S1: zero-crossing localisation (falling ball)", [
        f"h = {h:<8} impact-time error = {err:.2e}" for h, err in rows
    ])
    for h, err in rows:
        assert err < h / 10  # localisation beats the step by >= 10x
    assert rows[-1][1] < rows[0][1]


def test_s1_adaptive_tolerance_response(benchmark, report):
    """RK45: tightening rtol buys accuracy with sub-linear extra steps."""
    rows = []

    def sweep():
        rows.clear()
        for rtol in (1e-3, 1e-6, 1e-9):
            solver = make_solver("rk45", rtol=rtol, atol=rtol * 1e-3)
            result = integrate(
                lambda t, y: np.array([math.cos(3.0 * t)]), [0.0],
                0.0, 10.0, solver, h=0.1,
            )
            error = abs(result.y_final[0] - math.sin(30.0) / 3.0)
            rows.append((rtol, result.steps, error))

    benchmark(sweep)
    report("S1: RK45 tolerance sweep (y' = cos 3t)", [
        f"rtol = {rtol:<8} steps = {steps:<6} error = {err:.2e}"
        for rtol, steps, err in rows
    ])
    assert rows[2][2] < rows[0][2]
    assert rows[2][1] < rows[0][1] * 40
