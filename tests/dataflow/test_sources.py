"""Source blocks."""

import math

import numpy as np
import pytest

from repro.core.network import FlatNetwork
from repro.dataflow import (
    Constant,
    Pulse,
    Ramp,
    Sine,
    Step,
    TimeSource,
    WhiteNoise,
)
from repro.dataflow.block import BlockError


def out_of(block, t=0.0):
    block.compute_outputs(t, np.empty(0))
    return block.dport("out").read_scalar()


class TestConstant:
    def test_value(self):
        assert out_of(Constant("c", 3.5)) == 3.5

    def test_no_inputs(self):
        assert Constant("c").in_names == []


class TestStep:
    def test_before_and_after(self):
        step = Step("s", t_step=1.0, amplitude=2.0, offset=0.5)
        assert out_of(step, 0.5) == 0.5
        assert out_of(step, 1.0) == 2.5
        assert out_of(step, 5.0) == 2.5


class TestRamp:
    def test_slope(self):
        ramp = Ramp("r", slope=2.0, t_start=1.0)
        assert out_of(ramp, 0.5) == 0.0
        assert out_of(ramp, 2.0) == 2.0


class TestSine:
    def test_waveform(self):
        sine = Sine("s", amplitude=2.0, freq=1.0, offset=1.0)
        assert out_of(sine, 0.0) == pytest.approx(1.0)
        assert out_of(sine, 0.25) == pytest.approx(3.0)

    def test_phase(self):
        sine = Sine("s", phase=math.pi / 2.0)
        assert out_of(sine, 0.0) == pytest.approx(1.0)


class TestPulse:
    def test_duty_cycle(self):
        pulse = Pulse("p", period=1.0, duty=0.25, amplitude=3.0)
        assert out_of(pulse, 0.1) == 3.0
        assert out_of(pulse, 0.5) == 0.0
        assert out_of(pulse, 1.1) == 3.0  # periodic

    def test_validation(self):
        with pytest.raises(BlockError):
            Pulse("p", period=0.0)
        with pytest.raises(BlockError):
            Pulse("p", duty=1.5)


class TestWhiteNoise:
    def test_deterministic_given_seed(self):
        a, b = WhiteNoise("n", seed=42), WhiteNoise("n2", seed=42)
        seq_a, seq_b = [], []
        for k in range(20):
            a.on_sync(k * 0.1)
            b.on_sync(k * 0.1)
            seq_a.append(out_of(a))
            seq_b.append(out_of(b))
        assert seq_a == seq_b

    def test_different_seeds_differ(self):
        a, b = WhiteNoise("n", seed=1), WhiteNoise("n2", seed=2)
        a.on_sync(0.0)
        b.on_sync(0.0)
        assert out_of(a) != out_of(b)

    def test_amplitude_bound(self):
        noise = WhiteNoise("n", amplitude=0.5, seed=7)
        for k in range(200):
            noise.on_sync(k * 0.1)
            assert abs(out_of(noise)) <= 0.5

    def test_roughly_zero_mean(self):
        noise = WhiteNoise("n", amplitude=1.0, seed=3)
        values = []
        for k in range(2000):
            noise.on_sync(k * 0.1)
            values.append(out_of(noise))
        assert abs(np.mean(values)) < 0.05


class TestTimeSource:
    def test_exposes_time(self):
        ts = TimeSource("t", scale=2.0)
        assert out_of(ts, 1.5) == 3.0

    def test_in_network(self):
        from repro.core.streamer import Streamer

        top = Streamer("top")
        top.add_sub(TimeSource("t"))
        network = FlatNetwork([top])
        network.evaluate(4.0, network.initial_state())
        assert top.sub("t").dport("out").read_scalar() == 4.0
