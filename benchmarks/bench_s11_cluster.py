"""Experiment S11 — cluster throughput scaling and migration latency.

The cluster's value proposition is wall-clock: a farm of paced
(software-in-the-loop) runs is clock-bound, not CPU-bound — each job
spends most of its wall time holding sim-time level with the real-time
clock — so a pool of workers multiplies throughput even on a small
host, exactly like a hardware-in-the-loop rack.  S11 measures that
scaling over worker counts 1/2/4/8 on a 50-job paced sweep, and the
pool's recovery reflex: SIGKILL a worker mid-run and time how long the
job takes to be re-dispatched and running on a surviving worker.

Headline metrics land in ``BENCH_S11.json`` (acceptance: >2.5x
throughput at 4 workers vs 1).
"""

from __future__ import annotations

import tempfile
import time

from repro.cluster.pool import ClusterConfig, WorkerPool
from repro.cluster.requests import ClusterJobRequest

JOBS = 50
WORKER_COUNTS = (1, 2, 4, 8)
#: simulated seconds per job, paced at PACE sim-seconds per wall-second
T_END = 2.0
PACE = 5.0


def _paced_request(i: int) -> ClusterJobRequest:
    return ClusterJobRequest(
        kind="single_run", model="cruise",
        params={
            "t_end": T_END, "sync_interval": 0.01,
            "realtime_factor": PACE,
        },
        model_args={"setpoint": 20.0 + (i % 17)},
        client=f"s11-{i % 4}", checkpoint=False, name=f"s11-{i:03d}",
    )


def _run_paced_sweep(workers: int, jobs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-s11-") as root:
        with WorkerPool(root, ClusterConfig(workers=workers)) as pool:
            # warm every worker (spawn + import) outside the timed window
            warm = [
                pool.submit(ClusterJobRequest(
                    kind="single_run", model="lag",
                    params={"t_end": 0.05}, checkpoint=False,
                    client=f"warm-{w}",
                ))
                for w in range(workers)
            ]
            for handle in warm:
                handle.result(timeout=120.0)

            started = time.perf_counter()
            handles = [
                pool.submit(_paced_request(i)) for i in range(jobs)
            ]
            for handle in handles:
                handle.result(timeout=600.0)
            wall = time.perf_counter() - started
            status = pool.status()
    return {
        "workers": workers,
        "jobs": jobs,
        "wall_s": wall,
        "jobs_per_s": jobs / wall,
        "steals": status["steals"],
    }


def test_s11_throughput_scaling(report, bench_json):
    """50 paced jobs over 1/2/4/8 workers; speedup 4w vs 1w > 2.5x."""
    rows = [_run_paced_sweep(w, JOBS) for w in WORKER_COUNTS]
    by_workers = {row["workers"]: row for row in rows}
    base = by_workers[1]["jobs_per_s"]
    speedups = {
        w: by_workers[w]["jobs_per_s"] / base for w in WORKER_COUNTS
    }

    report("S11 cluster throughput (50 paced jobs)", [
        f"workers={row['workers']:>2}  wall={row['wall_s']:7.2f}s  "
        f"throughput={row['jobs_per_s']:6.2f} jobs/s  "
        f"speedup={speedups[row['workers']]:.2f}x  "
        f"steals={row['steals']}"
        for row in rows
    ])
    bench_json("s11", {
        "jobs": JOBS,
        "paced_t_end_s": T_END,
        "realtime_factor": PACE,
        "throughput_jobs_per_s": {
            str(w): by_workers[w]["jobs_per_s"] for w in WORKER_COUNTS
        },
        "wall_s": {
            str(w): by_workers[w]["wall_s"] for w in WORKER_COUNTS
        },
        "speedup_2w_vs_1w": speedups[2],
        "speedup_4w_vs_1w": speedups[4],
        "speedup_8w_vs_1w": speedups[8],
    })
    assert speedups[4] > 2.5, (
        f"4-worker speedup {speedups[4]:.2f}x below the 2.5x acceptance bar"
    )


def test_s11_migration_latency(report, bench_json):
    """SIGKILL a worker mid-run; time kill -> retry attempt running."""
    rounds = 3
    latencies = []
    recoveries = []
    with tempfile.TemporaryDirectory(prefix="repro-s11-mig-") as root:
        with WorkerPool(root, ClusterConfig(workers=2)) as pool:
            for __ in range(rounds):
                handle = pool.submit(ClusterJobRequest(
                    kind="single_run", model="cruise",
                    params={
                        "t_end": 3.0, "sync_interval": 0.01,
                        "realtime_factor": 2.0,
                        "checkpoint_every_steps": 40,
                    },
                ))
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if handle.worker is not None and \
                            pool.store.checkpoints(handle.id):
                        break
                    time.sleep(0.01)
                killed_at = time.monotonic()
                pool.kill_worker(handle.worker)
                while time.monotonic() < deadline:
                    if handle.attempts >= 2:
                        break
                    time.sleep(0.002)
                latencies.append(time.monotonic() - killed_at)
                handle.result(timeout=120.0)
                recoveries.append(time.monotonic() - killed_at)
                # wait out the respawn so the next round has 2 workers
                while time.monotonic() < deadline:
                    if all(
                        w["alive"] for w in pool.status()["workers"]
                    ):
                        break
                    time.sleep(0.05)
            counters = pool.metrics.snapshot()["counters"]

    assert counters["cluster.migrations"] == rounds
    mean = sum(latencies) / len(latencies)
    report("S11 migration latency (SIGKILL -> retry running)", [
        f"rounds={rounds}",
        f"kill->redispatch  mean={mean * 1e3:7.1f} ms  "
        f"max={max(latencies) * 1e3:7.1f} ms",
        f"kill->job done    mean={sum(recoveries) / rounds:7.2f} s",
    ])
    bench_json("s11", {
        "migration_rounds": rounds,
        "migration_latency_s_mean": mean,
        "migration_latency_s_max": max(latencies),
        "kill_to_done_s_mean": sum(recoveries) / rounds,
    })
