"""Export a built HybridModel as a stereotyped UML package.

The paper's pitch is *unified* modelling: the executable model and the
UML model are one artefact.  This module closes that loop in the
reproduction — any :class:`~repro.core.model.HybridModel` can be lifted
into the metamodel (classes stereotyped per Table 1, containment as
composite associations, flows/connectors as associations) and serialised
with :func:`repro.metamodel.xmi.to_xmi`, giving a CASE-tool-shaped view
of the running system.

The export is structural (classes and relations), not behavioural: state
machines appear as a tagged value with their state count, equations stay
in code — see DESIGN.md §7.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Classifier,
    Multiplicity,
    Operation,
    Package,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel
    from repro.core.streamer import Streamer
    from repro.umlrt.capsule import Capsule


def model_to_package(model: "HybridModel") -> Package:
    """Lift a hybrid model into a UML package with Table-1 stereotypes."""
    package = Package(model.name)

    for top in model.rts.tops:
        _export_capsule(package, top)
    for streamer in model.streamers:
        _export_streamer(package, streamer)
    _export_flows(package, model)
    _export_bridges(package, model)
    return package


# ----------------------------------------------------------------------
def _class_name(instance_name: str) -> str:
    return instance_name.replace(".", "_")


def _export_capsule(package: Package, capsule: "Capsule") -> Classifier:
    cls = Classifier(_class_name(capsule.instance_name),
                     stereotypes=("capsule",))
    for port in capsule.ports.values():
        cls.add_attribute(Attribute(
            port.name, port.role.name, "+",
        ))
    if capsule.behaviour is not None:
        cls.tagged_values["stateMachine"] = capsule.behaviour.name
        cls.tagged_values["states"] = str(
            len(capsule.behaviour.all_states())
        )
    package.add_class(cls)
    for part in capsule.parts.values():
        if part.instance is None:
            continue
        child = _export_capsule(package, part.instance)
        package.add_association(Association(
            f"{cls.name}_owns_{child.name}",
            AssociationEnd(cls.name, multiplicity=Multiplicity(1, 1),
                           aggregation="composite"),
            AssociationEnd(child.name, role=part.name),
        ))
    return cls


def _export_streamer(package: Package, streamer: "Streamer") -> Classifier:
    cls = Classifier(_class_name(streamer.path()),
                     stereotypes=("streamer",))
    for dport in streamer.dports.values():
        cls.add_attribute(Attribute(
            dport.name,
            f"DPort<{dport.flow_type.name}>",
            "+",
        ))
    for sport in streamer.sports.values():
        cls.add_attribute(Attribute(
            sport.name, f"SPort<{sport.role.name}>", "+",
        ))
    if not streamer.is_composite:
        cls.tagged_values["states"] = str(streamer.state_size)
        solver = (
            streamer.thread.binding.strategy_name
            if streamer.thread is not None else "unbound"
        )
        cls.tagged_values["solver"] = solver
        cls.add_operation(Operation("AlgorithmInterface"))
    package.add_class(cls)
    for sub in streamer.subs.values():
        child = _export_streamer(package, sub)
        package.add_association(Association(
            f"{cls.name}_contains_{child.name}",
            AssociationEnd(cls.name, multiplicity=Multiplicity(1, 1),
                           aggregation="composite"),
            AssociationEnd(child.name),
        ))
    return cls


def _owner_class(package: Package, owner) -> str:
    from repro.core.streamer import Streamer

    if isinstance(owner, Streamer):
        return _class_name(owner.path())
    name = getattr(owner, "instance_name", None)
    if name is not None:
        return _class_name(name)
    return _class_name(getattr(owner, "name", "unknown"))


def _export_flows(package: Package, model: "HybridModel") -> None:
    flows = list(model.flows)
    for top in model.streamers:
        flows.extend(top.all_flows())
    seen: Dict[str, int] = {}
    for flow in flows:
        src_owner = _owner_class(package, flow.source.owner)
        dst_owner = _owner_class(package, flow.target.owner)
        if src_owner not in package.classifiers or \
                dst_owner not in package.classifiers:
            continue  # relay pads live inside composites; skip raw pads
        base = f"flow_{src_owner}_{dst_owner}"
        seen[base] = seen.get(base, 0) + 1
        name = base if seen[base] == 1 else f"{base}_{seen[base]}"
        assoc = Association(
            name,
            AssociationEnd(src_owner, role=flow.source.name),
            AssociationEnd(dst_owner, role=flow.target.name),
        )
        package.add_association(assoc)


def _export_bridges(package: Package, model: "HybridModel") -> None:
    for bridge in model.bridges:
        sport = bridge._sport
        streamer_cls = _owner_class(package, sport.owner)
        # the user capsule on the far side of the bridge's boundary port
        endpoints = bridge.port("boundary").resolve_endpoints()
        if not endpoints or streamer_cls not in package.classifiers:
            continue
        capsule = endpoints[0].owner
        capsule_cls = _class_name(capsule.instance_name)
        if capsule_cls not in package.classifiers:
            continue
        package.add_association(Association(
            f"sport_{capsule_cls}_{streamer_cls}_{sport.name}",
            AssociationEnd(capsule_cls, role=endpoints[0].name),
            AssociationEnd(streamer_cls, role=sport.name),
        ))


def model_stereotype_census(package: Package) -> Dict[str, int]:
    """Count applied stereotypes — the Table-1 vocabulary in use."""
    census: Dict[str, int] = {}
    for cls in package.classifiers.values():
        for stereotype in cls.stereotypes:
            census[stereotype] = census.get(stereotype, 0) + 1
    return census
