"""State-machine coverage analysis."""

import pytest

from repro.analysis import coverage_of, render_coverage
from repro.analysis.coverage import CoverageError
from repro.umlrt.signal import Message
from repro.umlrt.statemachine import StateMachine


class FakePort:
    def __init__(self, name="p"):
        self.name = name


def msg(signal):
    return Message(signal, port=FakePort())


class Ctx:
    pass


def three_state_machine():
    sm = StateMachine("traffic")
    sm.trace_enabled = True
    sm.add_state("red")
    sm.add_state("green")
    sm.add_state("amber")
    sm.initial("red")
    sm.add_transition("red", "green", trigger="go")
    sm.add_transition("green", "amber", trigger="caution")
    sm.add_transition("amber", "red", trigger="stop")
    sm.add_transition("green", trigger="tick", internal=True)
    return sm


class TestCoverage:
    def test_requires_tracing(self):
        sm = three_state_machine()
        sm.trace_enabled = False
        with pytest.raises(CoverageError):
            coverage_of(sm)

    def test_initial_state_counts(self):
        sm = three_state_machine()
        sm.start(Ctx())
        report = coverage_of(sm)
        assert report.states_visited == {"red"}
        assert report.state_coverage == pytest.approx(1.0 / 3.0)

    def test_full_cycle_full_coverage(self):
        sm = three_state_machine()
        ctx = Ctx()
        sm.start(ctx)
        for signal in ("go", "tick", "caution", "stop"):
            sm.dispatch(ctx, msg(signal))
        report = coverage_of(sm)
        assert report.state_coverage == 1.0
        assert report.transition_coverage == 1.0
        assert ("red", "green") in report.transitions_fired
        assert "green" in report.internal_fired

    def test_partial_transition_coverage(self):
        sm = three_state_machine()
        ctx = Ctx()
        sm.start(ctx)
        sm.dispatch(ctx, msg("go"))
        report = coverage_of(sm)
        assert report.transition_coverage == pytest.approx(0.25)
        assert report.unvisited_states(sm) == ["amber"]

    def test_render(self):
        sm = three_state_machine()
        sm.start(Ctx())
        text = render_coverage(sm)
        assert "1/3" in text
        assert "never entered: amber, green" in text

    def test_transitionless_machine_needs_no_tracing(self):
        # a machine with states but no transitions has nothing a trace
        # could add: empty-but-valid report instead of CoverageError
        sm = StateMachine("lone")
        sm.add_state("only")
        sm.initial("only")
        assert sm.trace_enabled is False
        report = coverage_of(sm)
        assert report.states_total == 1
        assert report.states_visited == set()
        assert report.transitions_total == 0
        assert report.transitions_fired == set()
        assert report.internal_fired == set()
        assert report.state_coverage == 0.0
        assert report.transition_coverage == 1.0
        assert report.unvisited_states(sm) == ["only"]

    def test_transitionless_machine_renders(self):
        sm = StateMachine("lone")
        sm.add_state("only")
        sm.initial("only")
        text = render_coverage(sm)
        assert "0/1" in text
        assert "0/0 (100%)" in text
        assert "never entered: only" in text

    def test_transitionless_traced_run_still_counts_states(self):
        sm = StateMachine("lone")
        sm.add_state("only")
        sm.initial("only")
        sm.trace_enabled = True
        sm.start(Ctx())
        report = coverage_of(sm)
        assert report.states_visited == {"only"}
        assert report.state_coverage == 1.0
        assert report.transition_coverage == 1.0

    def test_machine_with_transitions_still_requires_tracing(self):
        sm = three_state_machine()
        sm.trace_enabled = False
        with pytest.raises(CoverageError):
            render_coverage(sm)

    def test_hierarchical_coverage(self):
        sm = StateMachine("h")
        sm.trace_enabled = True
        sm.add_state("top")
        sm.add_state("top.a")
        sm.add_state("top.b")
        sm.initial("top")
        sm.initial("top.a", composite="top")
        sm.add_transition("top.a", "top.b", trigger="next")
        ctx = Ctx()
        sm.start(ctx)
        sm.dispatch(ctx, msg("next"))
        report = coverage_of(sm)
        assert report.states_visited == {"top", "top.a", "top.b"}
        assert report.state_coverage == 1.0
