"""Deadline-aware admission and EDF dispatch (repro.service.admission).

The service-side loop-close of the schedulability story: a calibrated
per-kind cost model predicts each job's completion, jobs that cannot
make their deadline are rejected at submission (with ADMISSION
telemetry), and EDF dispatch orders the queue by urgency.  The last
test demonstrates the ISSUE's acceptance property in miniature:
deadline-aware admission improves the met-deadline rate over plain
FIFO on an overloaded job mix.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, List

import pytest

from repro.service import SimulationService
from repro.service.admission import (
    AdmissionDecision, CostModel, DeadlineAdmission,
)
from repro.service.engine import JobEngine
from repro.service.jobs import (
    DeadlineInfeasible, JobContext, JobSpec, JobState,
)
from repro.service.telemetry import ADMISSION


@dataclass
class SpinJob(JobSpec):
    """Cooperatively spins for ``duration`` seconds, checkpointing."""

    duration: float = 0.05
    kind = "spin"

    def execute(self, ctx: JobContext) -> str:
        end = time.monotonic() + self.duration
        while time.monotonic() < end:
            ctx.checkpoint()
            time.sleep(0.002)
        return "spun"


@dataclass
class TagJob(JobSpec):
    """Records its tag into a shared list when it runs (order probe)."""

    tag: str = ""
    seen: Any = None
    kind = "tag"

    def execute(self, ctx: JobContext) -> str:
        self.seen.append(self.tag)
        return self.tag


@dataclass
class GateJob(JobSpec):
    """Blocks until its gate is set (for parking the worker)."""

    gate: Any = None
    started: Any = None
    kind = "gate"

    def execute(self, ctx: JobContext) -> str:
        if self.started is not None:
            self.started.set()
        while not self.gate.wait(0.005):
            ctx.checkpoint()
        return "released"


# ----------------------------------------------------------------------
# the cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_cold_predicts_nothing(self):
        assert CostModel().predict("spin") is None

    def test_per_kind_ema(self):
        model = CostModel(alpha=0.5)
        model.observe("spin", 1.0)
        model.observe("spin", 2.0)
        assert model.predict("spin") == pytest.approx(1.5)

    def test_global_fallback_for_unseen_kind(self):
        model = CostModel()
        model.observe("spin", 2.0)
        assert model.predict("never_seen") == pytest.approx(2.0)

    def test_seed_pins_initial_estimate(self):
        model = CostModel(alpha=0.5)
        model.seed("spin", 4.0)
        assert model.predict("spin") == pytest.approx(4.0)
        model.observe("spin", 2.0)
        assert model.predict("spin") == pytest.approx(3.0)

    def test_negative_wall_ignored(self):
        model = CostModel()
        model.observe("spin", -1.0)
        assert model.predict("spin") is None

    def test_snapshot_includes_global(self):
        model = CostModel()
        model.observe("spin", 1.0)
        snapshot = model.snapshot()
        assert snapshot["spin"] == pytest.approx(1.0)
        assert snapshot["*"] == pytest.approx(1.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            CostModel(alpha=0.0)


class TestDeadlineAdmission:
    def test_no_deadline_always_admitted(self):
        decision = DeadlineAdmission().evaluate(
            "spin", None, queued=100, workers=1,
        )
        assert decision.admitted and decision.reason == "no_deadline"

    def test_cold_model_admits(self):
        decision = DeadlineAdmission().evaluate(
            "spin", 0.001, queued=100, workers=1,
        )
        assert decision.admitted and decision.reason == "cold"

    def test_feasible_deadline_admitted(self):
        admission = DeadlineAdmission()
        admission.cost_model.observe("spin", 0.1)
        decision = admission.evaluate("spin", 1.0, queued=0, workers=1)
        assert decision.admitted and decision.reason == "ok"
        assert decision.predicted_completion == pytest.approx(0.1)

    def test_queue_pressure_inflates_prediction(self):
        admission = DeadlineAdmission()
        admission.cost_model.observe("spin", 0.1)
        decision = admission.evaluate("spin", 0.25, queued=4, workers=2)
        # 0.1 * (1 + 4/2) = 0.3 > 0.25
        assert not decision.admitted
        assert decision.reason == "deadline_infeasible"
        assert decision.predicted_completion == pytest.approx(0.3)

    def test_margin_relaxes_the_predicate(self):
        admission = DeadlineAdmission(margin=2.0)
        admission.cost_model.observe("spin", 0.1)
        decision = admission.evaluate("spin", 0.25, queued=4, workers=2)
        assert decision.admitted  # 0.3 <= 0.25 * 2

    def test_margin_validated(self):
        with pytest.raises(ValueError, match="margin"):
            DeadlineAdmission(margin=0.0)

    def test_decision_payload_shape(self):
        payload = AdmissionDecision(True, "ok", 0.1, 0.2, 1.0).as_payload()
        assert payload == {
            "admitted": True, "reason": "ok", "predicted_cost": 0.1,
            "predicted_completion": 0.2, "deadline": 1.0,
        }


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineAdmission:
    def engine(self, **kwargs):
        admission = DeadlineAdmission()
        return JobEngine(workers=1, admission=admission, **kwargs), admission

    def test_infeasible_job_rejected_at_submit(self):
        engine, admission = self.engine()
        with engine:
            admission.cost_model.seed("spin", 10.0)
            with pytest.raises(DeadlineInfeasible):
                engine.submit(SpinJob(duration=0.01, deadline=0.05))

    def test_rejection_is_observable(self):
        engine, admission = self.engine()
        with engine:
            admission.cost_model.seed("spin", 10.0)
            try:
                engine.submit(SpinJob(duration=0.01, deadline=0.05))
            except DeadlineInfeasible as exc:
                error = exc
            counters = engine.metrics.snapshot()["counters"]
            assert counters["sched.rejected.deadline"] == 1
            assert "rejected at admission" in str(error)

    def test_rejected_handle_carries_admission_event(self):
        engine, admission = self.engine()
        with engine:
            admission.cost_model.seed("spin", 10.0)
            with pytest.raises(DeadlineInfeasible):
                engine.submit(SpinJob(duration=0.01, deadline=0.05))
            # the handle is unreachable (submit raised), but a fresh
            # admitted job shows the event stream contract
            handle = engine.submit(SpinJob(duration=0.01, deadline=30.0))
            handle.result(timeout=10.0)
            events = [
                e for e in handle.channel.drain() if e.kind == ADMISSION
            ]
            assert len(events) == 1
            assert events[0].seq == -1
            assert events[0].payload["admitted"] is True
            assert events[0].payload["reason"] == "ok"

    def test_done_jobs_calibrate_the_cost_model(self):
        engine, admission = self.engine()
        with engine:
            handle = engine.submit(SpinJob(duration=0.03))
            handle.result(timeout=10.0)
            predicted = admission.cost_model.predict("spin")
            assert predicted is not None
            assert predicted >= 0.03
            counters = engine.metrics.snapshot()["counters"]
            assert counters["sched.admitted"] == 1

    def test_deadline_met_and_missed_counters(self):
        engine, __ = self.engine()
        with engine:
            met = engine.submit(SpinJob(duration=0.01, deadline=30.0))
            met.result(timeout=10.0)
            missed = engine.submit(SpinJob(duration=5.0, deadline=0.05))
            missed.wait(timeout=10.0)
            assert missed.state is JobState.TIMEOUT
            snapshot = engine.metrics.snapshot()
            assert snapshot["counters"]["sched.deadline_met"] == 1
            assert snapshot["counters"]["sched.deadline_missed"] == 1
            assert "sched.lateness" in snapshot["histograms"]

    def test_service_facade_wires_admission(self):
        with SimulationService(
            workers=1, deadline_admission=True, dispatch="edf",
        ) as service:
            assert service.admission is not None
            service.admission.cost_model.seed("single_run", 10.0)
            with pytest.raises(DeadlineInfeasible):
                service.submit_single_run(
                    lambda: None, t_end=1.0, deadline=0.01,
                )


class TestEDFDispatch:
    def test_queue_drains_in_deadline_order(self):
        seen: List[str] = []
        gate = threading.Event()
        started = threading.Event()
        with JobEngine(workers=1, dispatch="edf") as engine:
            engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(timeout=10.0)
            # queued while the only worker is parked; EDF must reorder
            engine.submit(TagJob(tag="late", seen=seen, deadline=30.0))
            engine.submit(TagJob(tag="urgent", seen=seen, deadline=5.0))
            engine.submit(TagJob(tag="whenever", seen=seen))  # no deadline
            engine.submit(TagJob(tag="soon", seen=seen, deadline=10.0))
            gate.set()
            assert engine.drain(timeout=10.0)
        assert seen == ["urgent", "soon", "late", "whenever"]

    def test_fifo_preserves_submit_order(self):
        seen: List[str] = []
        gate = threading.Event()
        started = threading.Event()
        with JobEngine(workers=1, dispatch="fifo") as engine:
            engine.submit(GateJob(gate=gate, started=started))
            assert started.wait(timeout=10.0)
            engine.submit(TagJob(tag="late", seen=seen, deadline=30.0))
            engine.submit(TagJob(tag="urgent", seen=seen, deadline=5.0))
            gate.set()
            assert engine.drain(timeout=10.0)
        assert seen == ["late", "urgent"]

    def test_unknown_dispatch_rejected(self):
        from repro.service.jobs import JobError

        with pytest.raises(JobError, match="dispatch"):
            JobEngine(workers=1, dispatch="lifo")

    def test_edf_shutdown_drains_queued_jobs(self):
        seen: List[str] = []
        with JobEngine(workers=1, dispatch="edf") as engine:
            handles = [
                engine.submit(TagJob(tag=str(i), seen=seen, deadline=30.0))
                for i in range(5)
            ]
        # context exit = shutdown(wait=True): sentinels sort after jobs
        assert len(seen) == 5
        assert all(h.state is JobState.DONE for h in handles)


class TestAdmissionImprovesMetRate:
    """The acceptance property in miniature: on an overloaded one-worker
    mix, deadline-aware admission + EDF strictly beats FIFO's
    met-deadline rate (rejected jobs never clog the queue)."""

    JOBS = 10
    DURATION = 0.05
    DEADLINE = 0.18

    def overload(self, engine) -> None:
        for __ in range(self.JOBS):
            try:
                engine.submit(SpinJob(
                    duration=self.DURATION, deadline=self.DEADLINE,
                ))
            except DeadlineInfeasible:
                continue
        engine.drain(timeout=30.0)

    def met_rate(self, engine) -> float:
        counters = engine.metrics.snapshot()["counters"]
        met = counters.get("sched.deadline_met", 0)
        missed = counters.get("sched.deadline_missed", 0)
        return met / max(1, met + missed)

    def test_edf_with_admission_beats_fifo(self):
        with JobEngine(workers=1, dispatch="fifo") as fifo:
            self.overload(fifo)
            fifo_rate = self.met_rate(fifo)
            fifo_counters = fifo.metrics.snapshot()["counters"]

        admission = DeadlineAdmission()
        admission.cost_model.seed("spin", self.DURATION)
        with JobEngine(
            workers=1, dispatch="edf", admission=admission,
        ) as sched:
            self.overload(sched)
            sched_rate = self.met_rate(sched)
            sched_counters = sched.metrics.snapshot()["counters"]

        # FIFO queues everything and most jobs blow their deadline
        assert fifo_counters.get("sched.deadline_missed", 0) > 0
        # admission sheds the hopeless tail instead of queueing it
        assert sched_counters.get("sched.rejected.deadline", 0) > 0
        assert sched_rate > fifo_rate
