"""Empirical validation of the static schedulability bounds.

The RTA engine (:mod:`repro.analysis.schedulability`) claims its
response-time bound dominates anything the cooperative
:class:`~repro.core.hybrid.HybridScheduler` actually does.  This module
checks that claim on a live run:

* :class:`SchedulerProbe` instruments a scheduler before it is run —
  each thread's ``integrate_slice`` and the scheduler's discrete phase
  are wrapped with ``perf_counter`` timing, and the ``on_major_step``
  hook closes one :class:`StepRecord` per sync slice (chaining any
  observer already installed);
* :func:`validate_schedulability` runs an instrumented model, derives a
  task set whose WCETs are the *observed maxima* (times a safety
  ``headroom``), runs blocking-aware RTA on it, and compares each task's
  static bound against its observed worst-case response.

Why dominance is guaranteed (and hence worth asserting): the cooperative
scheduler executes threads sequentially in declaration order inside each
slice, and :func:`~repro.analysis.schedulability.taskset_from_model`
assigns static priorities in that same order.  The observed response of
the *k*-th task in a slice is the sum of that slice's actual costs up
through *k*; the RTA fixed point charges every higher-priority task at
least one full WCET (= the max observed cost), so the bound is a
sum of per-task maxima — and a max-of-sums never exceeds the
sum-of-maxes.  A violated assertion therefore means the engine's
priority model has diverged from the runtime, which is exactly the
regression this harness exists to catch.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.schedulability import (
    RTAResult, TaskSet, response_time_analysis, taskset_from_model,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.hybrid import HybridScheduler
    from repro.core.model import HybridModel


@dataclass
class StepRecord:
    """Measured costs of one major step (one sync slice)."""

    #: per-thread continuous slice cost, in execution order
    thread_costs: Dict[str, float] = field(default_factory=dict)
    #: discrete phase (controller dispatch) cost
    discrete_cost: float = 0.0

    @property
    def continuous_total(self) -> float:
        return sum(self.thread_costs.values())


class SchedulerProbe:
    """Wall-clock instrumentation of a hybrid scheduler.

    Attach *before* :meth:`HybridScheduler.run`; read :attr:`steps`
    after.  The probe is observer-only — it changes no scheduling
    decision, only wraps the existing calls with timers.
    """

    def __init__(self, scheduler: "HybridScheduler") -> None:
        self.scheduler = scheduler
        self.steps: List[StepRecord] = []
        self._current = StepRecord()
        self._attached = False

    def attach(self) -> "SchedulerProbe":
        if self._attached:
            return self
        self._attached = True
        for thread in self.scheduler.model.threads:
            self._wrap_thread(thread)

        scheduler = self.scheduler
        inner_discrete = scheduler._discrete_phase

        def timed_discrete(t: float) -> None:
            start = _time.perf_counter()
            inner_discrete(t)
            self._current.discrete_cost += _time.perf_counter() - start

        scheduler._discrete_phase = timed_discrete  # type: ignore

        previous: Optional[Callable[[float], None]] = \
            scheduler.on_major_step

        def close_step(t: float) -> None:
            self.steps.append(self._current)
            self._current = StepRecord()
            if previous is not None:
                previous(t)

        scheduler.on_major_step = close_step
        return self

    def _wrap_thread(self, thread) -> None:
        inner = thread.integrate_slice

        def timed_slice(state, t0, t1):
            start = _time.perf_counter()
            result = inner(state, t0, t1)
            elapsed = _time.perf_counter() - start
            costs = self._current.thread_costs
            costs[thread.name] = costs.get(thread.name, 0.0) + elapsed
            return result

        thread.integrate_slice = timed_slice  # type: ignore

    # ------------------------------------------------------------------
    # observed response times
    # ------------------------------------------------------------------
    def observed_responses(self) -> Dict[str, float]:
        """Worst observed response per task, keyed like the task set.

        Inside a slice the cooperative scheduler runs threads in
        declaration order, then the discrete phase; a task's response
        relative to the sync point is therefore the cumulative cost up
        to and including its own slot.
        """
        # only threads that own streamers become tasks; empty threads
        # (e.g. an unused default thread) are unmodeled no-ops
        order = [
            t.name for t in self.scheduler.model.threads
            if t.streamers or t.leaves
        ]
        worst: Dict[str, float] = {}
        for record in self.steps:
            cumulative = 0.0
            for name in order:
                cost = record.thread_costs.get(name)
                if cost is None:
                    continue
                cumulative += cost
                key = f"streamer:{name}"
                worst[key] = max(worst.get(key, 0.0), cumulative)
            total = sum(
                record.thread_costs.get(name, 0.0) for name in order
            ) + record.discrete_cost
            for controller in self.scheduler.model.rts.controllers:
                if not controller.capsules:
                    continue
                key = f"controller:{controller.name}"
                worst[key] = max(worst.get(key, 0.0), total)
        return worst

    def max_thread_costs(self) -> Dict[str, float]:
        """Per-thread maximum observed slice cost (the empirical WCET)."""
        worst: Dict[str, float] = {}
        for record in self.steps:
            for name, cost in record.thread_costs.items():
                worst[name] = max(worst.get(name, 0.0), cost)
        return worst

    def max_discrete_cost(self) -> float:
        return max(
            (record.discrete_cost for record in self.steps), default=0.0
        )


@dataclass
class ValidationReport:
    """Outcome of one static-vs-traced comparison."""

    model: str
    sync_interval: float
    steps: int
    taskset: TaskSet
    rta: RTAResult
    #: task name -> worst observed response (wall seconds)
    observed: Dict[str, float]
    #: task name -> static response-time bound
    bound: Dict[str, float]

    @property
    def dominates(self) -> bool:
        """True iff the static bound covers every observed response."""
        return all(
            self.bound.get(name, 0.0) >= observed
            for name, observed in self.observed.items()
        )

    @property
    def margins(self) -> Dict[str, float]:
        """Per-task slack ``bound - observed`` (negative = violated)."""
        return {
            name: self.bound.get(name, 0.0) - observed
            for name, observed in self.observed.items()
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "sync_interval": self.sync_interval,
            "steps": self.steps,
            "dominates": self.dominates,
            "observed": dict(self.observed),
            "bound": dict(self.bound),
            "margins": self.margins,
            "rta": self.rta.as_dict(),
            "tasks": [task.as_dict() for task in self.taskset.tasks],
        }


def validate_schedulability(
    model_factory: Callable[[], "HybridModel"],
    t_end: float = 0.2,
    sync_interval: float = 0.01,
    headroom: float = 1.0,
    **scheduler_kwargs: object,
) -> ValidationReport:
    """Run an instrumented model and compare static bound vs trace.

    ``headroom`` scales the measured WCETs before they enter the static
    model (1.0 = the observed maxima themselves; dominance holds at any
    ``headroom >= 1.0`` by the sum-of-maxes argument above).
    """
    model = model_factory()
    scheduler = model.scheduler(
        sync_interval=sync_interval, **scheduler_kwargs
    )
    probe = SchedulerProbe(scheduler).attach()
    model.run(until=t_end, sync_interval=sync_interval)

    measured = probe.max_thread_costs()
    streamer_wcet = {
        name: max(cost * headroom, 1e-12)
        for name, cost in measured.items() if cost > 0.0
    }
    controller_wcet = max(
        probe.max_discrete_cost() * headroom, 1e-12
    )
    taskset = taskset_from_model(
        model, sync_interval,
        streamer_wcet=streamer_wcet,
        controller_wcet=controller_wcet,
    )
    rta = response_time_analysis(taskset)
    bound = {
        response.name: response.response_time for response in rta
    }
    return ValidationReport(
        model=model.name,
        sync_interval=sync_interval,
        steps=len(probe.steps),
        taskset=taskset,
        rta=rta,
        observed=probe.observed_responses(),
        bound=bound,
    )
