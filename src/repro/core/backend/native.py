"""The ``native-c`` backend: cgen wrapped in a ctypes build-and-load path.

Renders a shared-object flavour of the C kernel (exported ``kernel_*``
functions instead of a ``main``), compiles it with the host toolchain and
loads it via :mod:`ctypes` (stdlib — no cffi dependency).  Artifacts are
cached on disk keyed by the opt-aware plan fingerprint, so recompiling
the same plan is a file-existence check.

Bitwise parity: every expression is emitted by the same
:mod:`repro.codegen.common` emitters; ``repr`` float literals round-trip
exactly through ``strtod``; the solver stages replicate
:mod:`repro.solvers.fixed` with the same grouping; and the build uses
``-ffp-contract=off`` so the compiler cannot fuse multiply-adds into FMA
(which would change results in the last ulp).  IEEE-754 double +,-,*,/
are exactly rounded, so C and Python agree bit for bit.

No compiler, or a failed build, raises :class:`BackendUnavailable` — the
resolver then demotes to ``compiled-python`` (metric + telemetry event),
never failing the run.
"""

from __future__ import annotations

import ctypes
import math
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.codegen.common import CLang
from repro.core.backend.base import (
    BackendError, BackendProgram, BackendUnavailable, CompileRequest,
    ExecutionBackend, KERNEL_VERSION, ProgramResult, kernel_solver_name,
    lower_request, register_backend,
)
from repro.core.backend.pykernel import kernel_tables

#: flags shared by every artifact build; ``-ffp-contract=off`` is load-
#: bearing for bitwise parity (no FMA), ``-shared -fPIC`` for dlopen
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")


def find_c_compiler() -> Optional[str]:
    """Path of the host C compiler (``$CC``, then cc/gcc/clang), or None.

    ``REPRO_NATIVE_DISABLE=1`` reports no compiler even when one exists —
    CI's compiler-free lanes use it to pin the fallback path
    deterministically on hosts that happen to ship a toolchain.
    """
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        return None
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        if found:
            return found
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def has_c_compiler() -> bool:
    """True when the native-c backend can build on this host."""
    return find_c_compiler() is not None


def default_cache_dir() -> Path:
    """The artifact cache directory (``$REPRO_NATIVE_CACHE`` overrides)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-native-cache"


def cache_limit_bytes() -> Optional[int]:
    """The artifact-cache size cap (``$REPRO_NATIVE_CACHE_MAX_MB``), or
    None when unbounded (the default)."""
    raw = os.environ.get("REPRO_NATIVE_CACHE_MAX_MB", "").strip()
    if not raw:
        return None
    try:
        limit = float(raw)
    except ValueError:
        return None
    if limit < 0:
        return None
    return int(limit * 1024 * 1024)


def sweep_cache(
    cache_dir: Path,
    limit_bytes: Optional[int] = None,
    protect: Optional[str] = None,
) -> List[Path]:
    """Evict least-recently-used artifacts until the cache fits.

    Artifacts are grouped by fingerprint key (``<key>.so`` + ``<key>.c``
    evict together) and ranked by the ``.so``'s mtime — loads touch it
    (:func:`build_artifact`), so mtime order is LRU order.  ``protect``
    exempts the key just built/loaded.  Returns the removed paths.
    Errors (racing processes, read-only dirs) are swallowed: the sweep
    is best-effort hygiene, never a build failure.
    """
    if limit_bytes is None:
        limit_bytes = cache_limit_bytes()
    if limit_bytes is None:
        return []
    groups: Dict[str, List[Path]] = {}
    try:
        entries = list(cache_dir.iterdir())
    except OSError:
        return []
    for path in entries:
        if path.suffix not in (".so", ".c"):
            continue
        groups.setdefault(path.stem, []).append(path)
    ranked = []
    total = 0
    for key, paths in groups.items():
        size = 0
        mtime = 0.0
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            size += stat.st_size
            if path.suffix == ".so":
                mtime = stat.st_mtime
        total += size
        ranked.append((mtime, key, size, paths))
    removed: List[Path] = []
    ranked.sort()  # oldest .so first
    for mtime, key, size, paths in ranked:
        if total <= limit_bytes:
            break
        if protect is not None and key == protect:
            continue
        for path in paths:
            try:
                path.unlink()
                removed.append(path)
            except OSError:
                pass
        total -= size
    return removed


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_C_STAGES: Dict[str, Tuple[str, ...]] = {
    "euler": (
        "kernel_deriv(t, x, held, k1);",
        "for (i = 0; i < NS; i++) x[i] = x[i] + hh * k1[i];",
    ),
    "heun": (
        "kernel_deriv(t, x, held, k1);",
        "for (i = 0; i < NS; i++) xs[i] = x[i] + hh * k1[i];",
        "kernel_deriv(t + hh, xs, held, k2);",
        "for (i = 0; i < NS; i++)"
        " x[i] = x[i] + (hh / 2.0) * (k1[i] + k2[i]);",
    ),
    "rk4": (
        "kernel_deriv(t, x, held, k1);",
        "for (i = 0; i < NS; i++) xs[i] = x[i] + (hh / 2.0) * k1[i];",
        "kernel_deriv(t + hh / 2.0, xs, held, k2);",
        "for (i = 0; i < NS; i++) xs[i] = x[i] + (hh / 2.0) * k2[i];",
        "kernel_deriv(t + hh / 2.0, xs, held, k3);",
        "for (i = 0; i < NS; i++) xs[i] = x[i] + hh * k3[i];",
        "kernel_deriv(t + hh, xs, held, k4);",
        "for (i = 0; i < NS; i++)",
        "    x[i] = x[i] + (hh / 6.0)"
        " * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);",
    ),
}


def render_c_kernel(model, solver_name: str) -> str:
    """A shared-object C translation unit for ``model``.

    Unlike :mod:`repro.codegen.cgen`'s standalone program, signals are
    plain ``const double`` locals (declared in plan order, which is a
    valid declaration order because only non-feedthrough consumers sit
    before their producers and those never read the signal in their
    output expression) — no signal array, no textual substitution.
    """
    tables = kernel_tables(model)
    held_names = [name for name, __ in tables["held"]]
    n_states = tables["n_states"]
    n_rec = len(tables["record_exprs"])
    out: List[str] = [
        "/* Auto-generated by repro.core.backend.native -- do not edit.",
        f" * Source model: {model.name}",
        f" * Solver: {solver_name}",
        " */",
        "#include <math.h>",
        "",
        f"#define NS {n_states}",
        f"#define NSAFE {max(1, n_states)}",
        f"#define NREC {n_rec}",
        f"#define RECN {max(1, n_rec)}",
        "",
    ]
    init = ", ".join(repr(float(v)) for v in model.initial_state) or "0.0"
    out.append(f"static const double X0[NSAFE] = {{{init}}};")
    held_init = ", ".join(
        repr(float(v)) for __, v in tables["held"]
    ) or "0.0"
    out.append(
        f"static const double H0[{max(1, len(held_names))}]"
        f" = {{{held_init}}};"
    )
    out.append("")

    def emit_signals(mutable_held: bool) -> None:
        qualifier = "double" if mutable_held else "const double"
        for i, name in enumerate(held_names):
            out.append(f"    {qualifier} {name} = held[{i}];")
        for line in tables["output_lines"]:
            var, __, expr = line.partition(" = ")
            out.append(f"    const double {var} = {expr};")

    out.append("void kernel_deriv(double t, const double* x,")
    out.append("                  const double* held, double* dx)")
    out.append("{")
    out.append("    int i;")
    out.append("    (void)t; (void)x; (void)held;")
    emit_signals(mutable_held=False)
    out.append("    for (i = 0; i < NS; i++) dx[i] = 0.0;")
    for index, expr in tables["derivs"]:
        out.append(f"    dx[{index}] = {expr};")
    out.append("}")
    out.append("")

    out.append("void kernel_outvals(double t, const double* x,")
    out.append("                    const double* held, double* rec)")
    out.append("{")
    out.append("    (void)t; (void)x; (void)held; (void)rec;")
    emit_signals(mutable_held=False)
    for i, expr in enumerate(tables["record_exprs"]):
        out.append(f"    rec[{i}] = {expr};")
    out.append("}")
    out.append("")

    out.append("void kernel_sync(double t, const double* x, double* held)")
    out.append("{")
    out.append("    (void)t; (void)x; (void)held;")
    if tables["sync_rows"]:
        emit_signals(mutable_held=True)
        for indent, line in tables["sync_rows"]:
            out.append(f"    {'    ' * indent}{line}")
        for i, name in enumerate(held_names):
            out.append(f"    held[{i}] = {name};")
    out.append("}")
    out.append("")

    out.append("double kernel_step(double t, double hh,")
    out.append("                   double* x, double* held)")
    out.append("{")
    out.append("    double k1[NSAFE], k2[NSAFE], k3[NSAFE],")
    out.append("           k4[NSAFE], xs[NSAFE];")
    out.append("    int i;")
    out.append("    (void)k2; (void)k3; (void)k4; (void)xs; (void)held;")
    for line in _C_STAGES[solver_name]:
        out.append(f"    {line}")
    out.append("    return t + hh;")
    out.append("}")
    out.append("")

    out.append("long kernel_run(double t, double t_end, double h,")
    out.append("                long record_every, long step, int cold,")
    out.append("                double* x, double* held,")
    out.append("                double* rec_t, double* rec_vals, long cap,")
    out.append("                double* t_out, long* step_out)")
    out.append("{")
    out.append("    long nrec = 0;")
    out.append("    if (cold) kernel_sync(t, x, held);")
    out.append("    while (t < t_end - 1e-12) {")
    out.append("        double hh = (h < t_end - t) ? h : (t_end - t);")
    out.append("        if (step % record_every == 0) {")
    out.append("            if (nrec >= cap) return -1;")
    out.append("            rec_t[nrec] = t;")
    out.append("            kernel_outvals(t, x, held,"
               " rec_vals + nrec * RECN);")
    out.append("            nrec += 1;")
    out.append("        }")
    out.append("        t = kernel_step(t, hh, x, held);")
    out.append("        step += 1;")
    out.append("        kernel_sync(t, x, held);")
    out.append("    }")
    out.append("    if (nrec >= cap) return -1;")
    out.append("    rec_t[nrec] = t;")
    out.append("    kernel_outvals(t, x, held, rec_vals + nrec * RECN);")
    out.append("    nrec += 1;")
    out.append("    *t_out = t;")
    out.append("    *step_out = step;")
    out.append("    return nrec;")
    out.append("}")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
def build_artifact(
    source: str, key: str, cache_dir: Path
) -> Tuple[Path, bool]:
    """Ensure ``<key>.so`` exists in ``cache_dir``; returns
    ``(so_path, cache_hit)``.  Raises :class:`BackendUnavailable` when no
    compiler is found or the build fails."""
    cache_dir.mkdir(parents=True, exist_ok=True)
    c_path = cache_dir / f"{key}.c"
    so_path = cache_dir / f"{key}.so"
    if so_path.exists():
        try:
            os.utime(so_path)  # touch: mtime is the LRU rank
        except OSError:
            pass
        return so_path, True
    compiler = find_c_compiler()
    if compiler is None:
        raise BackendUnavailable(
            "no C compiler on this host (checked $CC, cc, gcc, clang)"
        )
    c_path.write_text(source)
    tmp_path = cache_dir / f"{key}.so.tmp{os.getpid()}"
    cmd = [compiler, *CFLAGS, "-o", str(tmp_path), str(c_path), "-lm"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        tmp_path.unlink(missing_ok=True)
        raise BackendUnavailable(
            f"C build failed ({' '.join(cmd[:2])}...): "
            f"{proc.stderr.strip()[-500:]}"
        )
    os.replace(tmp_path, so_path)
    sweep_cache(cache_dir, protect=key)
    return so_path, False


_DP = ctypes.POINTER(ctypes.c_double)


def _load(so_path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(so_path))
    lib.kernel_deriv.argtypes = [ctypes.c_double, _DP, _DP, _DP]
    lib.kernel_deriv.restype = None
    lib.kernel_outvals.argtypes = [ctypes.c_double, _DP, _DP, _DP]
    lib.kernel_outvals.restype = None
    lib.kernel_sync.argtypes = [ctypes.c_double, _DP, _DP]
    lib.kernel_sync.restype = None
    lib.kernel_step.argtypes = [ctypes.c_double, ctypes.c_double, _DP, _DP]
    lib.kernel_step.restype = ctypes.c_double
    lib.kernel_run.argtypes = [
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_long, ctypes.c_long, ctypes.c_int,
        _DP, _DP, _DP, _DP, ctypes.c_long,
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_long),
    ]
    lib.kernel_run.restype = ctypes.c_long
    return lib


def _ptr(array: np.ndarray):
    return array.ctypes.data_as(_DP)


class NativeProgram(BackendProgram):
    backend = "native-c"

    def __init__(
        self,
        model,
        solver_name: str,
        h: float,
        so_path: Path,
        cache_hit: bool,
        source: str,
    ) -> None:
        self._model = model
        self._plan = model.plan
        self._solver_name = solver_name
        self.h = float(h)
        self.so_path = so_path
        self.cache_hit = cache_hit
        self.source = source
        self._lib = _load(so_path)

        tables = kernel_tables(model)
        self._held_names: List[str] = [n for n, __ in tables["held"]]
        self._held0 = np.asarray(
            [v for __, v in tables["held"]] or [0.0], dtype=float
        )
        index_of = {name: i for i, name in enumerate(self._held_names)}
        self._held_bindings = [
            (index_of[name], leaf, attr)
            for name, leaf, attr in tables["held_attrs"]
        ]
        self._n_states = tables["n_states"]
        self._n_rec = len(tables["record_exprs"])
        self._x0 = np.asarray(
            list(model.initial_state) or [0.0], dtype=float
        )
        self._t = 0.0
        self._x = self._x0.copy()
        self._held = self._held0.copy()
        self._step = 0
        self._cold = True

    # ------------------------------------------------------------------
    @property
    def plan(self):
        return self._plan

    @property
    def t(self) -> float:
        return self._t

    @property
    def x(self) -> np.ndarray:
        return self._x[: self._n_states]

    def record_labels(self) -> List[str]:
        return [label for label, __ in self._model.records]

    def fingerprint(self) -> str:
        return artifact_key(self._plan, self._model, self._solver_name)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._t = 0.0
        self._x = self._x0.copy()
        self._held = self._held0.copy()
        self._step = 0
        self._cold = True

    def step(self, h: Optional[float] = None) -> float:
        hh = self.h if h is None else float(h)
        if self._cold:
            self._lib.kernel_sync(self._t, _ptr(self._x), _ptr(self._held))
            self._cold = False
        self._t = self._lib.kernel_step(
            self._t, hh, _ptr(self._x), _ptr(self._held)
        )
        self._step += 1
        self._lib.kernel_sync(self._t, _ptr(self._x), _ptr(self._held))
        return self._t

    def run(
        self,
        t_end: float,
        h: Optional[float] = None,
        record_every: int = 1,
    ) -> ProgramResult:
        hh = self.h if h is None else float(h)
        remaining = max(0.0, float(t_end) - self._t)
        iters = int(math.floor(remaining / hh)) + 2 if hh > 0 else 2
        cap = iters // max(1, int(record_every)) + 3
        rec_t = np.empty(cap, dtype=float)
        rec_vals = np.empty((cap, max(1, self._n_rec)), dtype=float)
        t_out = ctypes.c_double()
        step_out = ctypes.c_long()
        nrec = self._lib.kernel_run(
            self._t, float(t_end), hh,
            int(record_every), self._step, int(self._cold),
            _ptr(self._x), _ptr(self._held),
            _ptr(rec_t), _ptr(rec_vals), cap,
            ctypes.byref(t_out), ctypes.byref(step_out),
        )
        if nrec < 0:
            raise BackendError(
                f"native record buffer overflow (cap={cap})"
            )
        self._t = t_out.value
        self._step = step_out.value
        self._cold = False
        labels = self.record_labels()
        return ProgramResult(
            t=rec_t[:nrec].copy(),
            series={
                label: rec_vals[:nrec, i].copy()
                for i, label in enumerate(labels)
            },
            final_state=self.x.copy(),
            stats={
                "backend": self.backend,
                "steps": self._step,
                "solver": self._solver_name,
                "artifact": str(self.so_path),
                "artifact_cache_hit": self.cache_hit,
            },
        )

    def rhs(self, t: float, x: np.ndarray) -> np.ndarray:
        buf = np.ascontiguousarray(x, dtype=float)
        if buf is x:
            buf = buf.copy()  # the kernel must not alias solver stages
        if buf.size == 0:
            buf = np.zeros(1)
        dx = np.zeros(max(1, self._n_states), dtype=float)
        self._lib.kernel_deriv(
            float(t), _ptr(buf), _ptr(self._held), _ptr(dx)
        )
        return dx[: self._n_states]

    def sync_now(self, t: float) -> None:
        self._lib.kernel_sync(float(t), _ptr(self._x), _ptr(self._held))

    def refresh_held_from_blocks(self) -> None:
        held = self._held
        for slot, leaf, attr in self._held_bindings:
            held[slot] = float(getattr(leaf, attr))

    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "t": self._t,
            "step": self._step,
            "cold": self._cold,
            "x": [float(v) for v in self._x[: self._n_states]],
            "held": {
                name: float(self._held[i])
                for i, name in enumerate(self._held_names)
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self._t = float(state["t"])
        self._step = int(state["step"])
        self._cold = bool(state.get("cold", False))
        x = np.asarray(state["x"], dtype=float)
        self._x = x.copy() if x.size else np.zeros(1)
        held = state.get("held", {})
        self._held = np.asarray(
            [
                float(held.get(name, self._held0[i]))
                for i, name in enumerate(self._held_names)
            ] or [0.0],
            dtype=float,
        )


def artifact_key(plan, model, solver_name: str) -> str:
    """The on-disk artifact identity: opt-aware plan fingerprint plus
    everything else baked into the rendered source."""
    return plan.fingerprint(extra={
        "backend": "native-c",
        "solver": solver_name,
        "records": tuple(label for label, __ in model.records),
        "x0": tuple(repr(float(v)) for v in model.initial_state),
        "kernel": KERNEL_VERSION,
    })


class NativeBackend(ExecutionBackend):
    name = "native-c"

    def compile(self, request: CompileRequest) -> NativeProgram:
        solver_name = kernel_solver_name(request)
        if not has_c_compiler():
            raise BackendUnavailable(
                "no C compiler on this host (checked $CC, cc, gcc, clang)"
            )
        model = lower_request(request, CLang())
        source = render_c_kernel(model, solver_name)
        key = artifact_key(model.plan, model, solver_name)
        cache_dir = (
            Path(request.cache_dir) if request.cache_dir is not None
            else default_cache_dir()
        )
        so_path, cache_hit = build_artifact(source, key, cache_dir)
        return NativeProgram(
            model, solver_name, request.h, so_path, cache_hit, source
        )


register_backend(NativeBackend())
