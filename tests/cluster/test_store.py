"""ArtifactStore: framing, CAS semantics, spools, corruption handling."""

from __future__ import annotations

import pytest

from repro.cluster.store import (
    ArtifactCorruptError,
    ArtifactStore,
    ArtifactStoreError,
    decode_artifact,
    encode_artifact,
)
from repro.resilience.codec import SNAPSHOT_VERSION, Snapshot, encode_snapshot


class TestArtifactFraming:
    def test_roundtrip(self):
        value = {"plan": [1, 2, 3], "name": "x"}
        assert decode_artifact(encode_artifact(value)) == value

    def test_truncation_detected(self):
        data = encode_artifact(list(range(100)))
        with pytest.raises(ArtifactCorruptError):
            decode_artifact(data[:-3])

    def test_flipped_byte_detected(self):
        data = bytearray(encode_artifact("payload"))
        data[-1] ^= 0xFF
        with pytest.raises(ArtifactCorruptError):
            decode_artifact(bytes(data))

    def test_bad_header_detected(self):
        with pytest.raises(ArtifactCorruptError):
            decode_artifact(b"NOTANART 00000000 3\nabc")


class TestGetOrCompile:
    def test_compiles_once_then_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return {"compiled": True}

        first = store.get_or_compile("plan-abc", factory)
        second = store.get_or_compile("plan-abc", factory)
        assert first == second == {"compiled": True}
        assert len(calls) == 1
        assert store.compiles == 1
        assert store.artifact_hits == 1

    def test_distinct_keys_compile_separately(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.get_or_compile("key-a", lambda: "A")
        b = store.get_or_compile("key-b", lambda: "B")
        assert (a, b) == ("A", "B")
        assert store.compiles == 2

    def test_corrupt_resident_artifact_recompiled(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.get_or_compile("key", lambda: "good")
        path = store._artifact_path("key")
        path.write_bytes(b"REPROART deadbeef 4\ngarb")
        value = store.get_or_compile("key", lambda: "fresh")
        assert value == "fresh"
        assert store.corrupt_dropped >= 1

    def test_stale_lock_broken(self, tmp_path):
        store = ArtifactStore(
            tmp_path, compile_timeout=5.0, lock_stale_after=0.0,
        )
        lock = store._artifact_path("key").with_suffix(".lock")
        lock.write_text("dead-pid\n")  # an orphan from a SIGKILLed owner
        assert store.get_or_compile("key", lambda: 42) == 42

    def test_live_lock_times_out(self, tmp_path):
        store = ArtifactStore(
            tmp_path, compile_timeout=0.2, lock_stale_after=60.0,
        )
        lock = store._artifact_path("key").with_suffix(".lock")
        lock.write_text("held\n")
        with pytest.raises(ArtifactStoreError, match="timed out"):
            store.get_or_compile("key", lambda: 42)

    def test_bad_timeout_rejected(self, tmp_path):
        with pytest.raises(ArtifactStoreError):
            ArtifactStore(tmp_path, compile_timeout=0.0)

    def test_key_sanitised_and_sharded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store._artifact_path("a/b:c d")
        assert path.parent.parent == store.artifacts_dir
        assert "/" not in path.name and ":" not in path.name


def _write_checkpoint(store, job_id, step, fingerprint="fp-1"):
    spool = store.job_spool(job_id)
    snapshot = Snapshot(
        version=SNAPSHOT_VERSION, fingerprint=fingerprint,
        t=step * 0.01, step=step, kind="hybrid",
        payload={"threads": []},
    )
    path = spool / f"ckpt-{step:012d}.ckpt"
    path.write_bytes(encode_snapshot(snapshot))
    return path


class TestJobSpools:
    def test_latest_checkpoint_newest_valid(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_checkpoint(store, "job-1", 10)
        _write_checkpoint(store, "job-1", 20)
        path, snapshot = store.latest_checkpoint("job-1")
        assert snapshot.step == 20
        assert path.name == "ckpt-000000000020.ckpt"

    def test_latest_skips_torn_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_checkpoint(store, "job-1", 10)
        good = _write_checkpoint(store, "job-1", 20)
        torn = store.job_spool("job-1") / "ckpt-000000000030.ckpt"
        torn.write_bytes(good.read_bytes()[:40])  # SIGKILL mid-write
        __, snapshot = store.latest_checkpoint("job-1")
        assert snapshot.step == 20
        assert store.corrupt_dropped == 1

    def test_index_job_builds_cas_marker(self, tmp_path):
        store = ArtifactStore(tmp_path)
        _write_checkpoint(store, "job-1", 40, fingerprint="fp-xyz")
        assert store.index_job("job-1") == "fp-xyz"
        assert store.jobs_for("fp-xyz") == ["job-1"]
        meta = store.read_meta("job-1")
        assert meta["fingerprint"] == "fp-xyz"
        assert meta["last_step"] == 40

    def test_index_empty_spool_is_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.job_spool("job-empty")
        assert store.index_job("job-empty") is None
        assert store.jobs_for("anything") == []

    def test_job_ids_listed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.job_dir("b")
        store.job_dir("a")
        assert store.job_ids() == ["a", "b"]
        assert store.stats()["jobs"] == 2
