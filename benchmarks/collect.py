"""Aggregate ``BENCH_*.json`` artefacts into one trajectory table.

Every benchmark writes a machine-readable ``BENCH_<id>.json`` (see
``benchmarks/conftest.write_bench_json``); CI lanes each produce a
subset.  This stdlib-only CLI sweeps a directory for those files and
renders one merged view — a Markdown (or TSV) table of every headline
metric, plus a combined JSON blob — so a single uploaded artifact tells
the whole story across lanes and across time.

Usage::

    python benchmarks/collect.py                  # repo root, Markdown
    python benchmarks/collect.py --root out/ --format tsv
    python benchmarks/collect.py --json-out BENCH_ALL.json

Exit status is 0 even when no files are found (an empty lane is not an
error — the table just says so); unreadable/foreign JSON files are
reported on stderr and skipped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple


def find_bench_files(root: Path) -> List[Path]:
    return sorted(root.glob("BENCH_*.json"))


def load_bench(path: Path) -> Dict[str, Any]:
    """One parsed artefact: ``{"bench": ..., "metrics": {...},
    "timestamp": ...}``.  Raises ValueError on foreign shapes."""
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path.name}: not a bench artefact")
    bench = data.get("bench") or path.stem.replace("BENCH_", "")
    metrics = data["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError(f"{path.name}: metrics is not a mapping")
    return {
        "bench": str(bench),
        "metrics": metrics,
        "timestamp": data.get("timestamp", ""),
        "file": path.name,
    }


def _flat(metrics: Dict[str, Any], prefix: str = "") -> List[Tuple[str, Any]]:
    """Flatten nested metric dicts into dotted rows (stable order)."""
    rows: List[Tuple[str, Any]] = []
    for key in sorted(metrics):
        value = metrics[key]
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            rows.extend(_flat(value, prefix=f"{name}."))
        else:
            rows.append((name, value))
    return rows


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e7:
            return f"{value:,.3f}".rstrip("0").rstrip(".")
        return f"{value:.3e}"
    if isinstance(value, (list, tuple)):
        return ", ".join(_fmt(v) for v in value)
    return str(value)


def render_markdown(benches: List[Dict[str, Any]]) -> str:
    if not benches:
        return "No BENCH_*.json artefacts found.\n"
    lines = ["| bench | metric | value |", "| --- | --- | --- |"]
    for bench in benches:
        for name, value in _flat(bench["metrics"]):
            lines.append(
                f"| {bench['bench']} | {name} | {_fmt(value)} |"
            )
    lines.append("")
    stamps = sorted(b["timestamp"] for b in benches if b["timestamp"])
    if stamps:
        lines.append(
            f"{len(benches)} benches; newest timestamp {stamps[-1]}"
        )
        lines.append("")
    return "\n".join(lines)


def render_tsv(benches: List[Dict[str, Any]]) -> str:
    lines = ["bench\tmetric\tvalue"]
    for bench in benches:
        for name, value in _flat(bench["metrics"]):
            lines.append(f"{bench['bench']}\t{name}\t{_fmt(value)}")
    lines.append("")
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json into one table.",
    )
    parser.add_argument(
        "--root", type=Path, default=Path("."),
        help="directory to sweep for BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("markdown", "tsv"), default="markdown",
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the table here as well as stdout",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the merged benches as one JSON document",
    )
    args = parser.parse_args(argv)

    benches = []
    for path in find_bench_files(args.root):
        try:
            benches.append(load_bench(path))
        except (ValueError, OSError) as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
    benches.sort(key=lambda b: b["bench"])

    render = render_markdown if args.format == "markdown" else render_tsv
    table = render(benches)
    sys.stdout.write(table)
    if args.out is not None:
        args.out.write_text(table)
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps({"benches": benches}, indent=2, sort_keys=True)
            + "\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
