"""The job engine: bounded workers, deadlines, retries, shedding.

The runtime heart of the service layer — an actor-ish pool in the spirit
of the paper's thread separation: submission is an O(1) enqueue onto a
*bounded* queue (overflow is shed with :class:`~repro.service.jobs.
ServiceOverloaded`, never buffered without limit), and a fixed set of
worker threads drains it.  Threads are the right default because batch
jobs spend their time inside NumPy (which releases the GIL) and share
the in-process plan cache; ``executor="process"`` trades both away for
hard isolation via a :class:`concurrent.futures.ProcessPoolExecutor`
(picklable specs only, telemetry reduced to start/end events).

Per-job guarantees:

* **Deadline** — wall-clock from submission.  A job that expires while
  queued is failed without touching a worker; a running job observes the
  deadline at its next checkpoint.  Either way the slot is released.
* **Cancellation** — :meth:`~repro.service.jobs.JobHandle.cancel` drops
  queued jobs on dequeue and stops running jobs at their next
  checkpoint.
* **Bounded retry** — :class:`~repro.service.jobs.TransientJobError`
  triggers an exponential-backoff retry, up to ``spec.retries`` times,
  on the same worker; the backoff sleep itself honours cancellation and
  the deadline.

Every transition feeds the :class:`~repro.service.telemetry.
MetricsRegistry`: queue depth gauge, per-terminal-state counters, and a
wall-time histogram summarised as p50/p95.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.admission import DeadlineAdmission
from repro.service.jobs import (
    DeadlineInfeasible, JobCancelledError, JobContext, JobError,
    JobHandle, JobSpec, JobState, JobTimeoutError, ServiceOverloaded,
    TransientJobError,
)
from repro.service.telemetry import (
    ADMISSION, EventEmitter, MetricsRegistry, STATE, TelemetryEvent,
)

_SHUTDOWN = object()

#: dispatch orders: FIFO (the classic queue) or EDF (earliest absolute
#: deadline first; deadline-less jobs sort last, ties by submit order)
DISPATCH_ORDERS = ("fifo", "edf")


class _EventTap:
    """A Channel-shaped sink that records every pushed event.

    Worker processes cannot share the parent's job channel, so the
    isolated execution path collects events here and ships the list back
    with the result for replay onto the real channel."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Any] = []

    def push(self, event: Any) -> bool:
        self.events.append(event)
        return True


class _IsolatedServices:
    """What a spec sees of the service inside an isolated worker: a
    fresh metrics registry (dumped back to the parent on completion) and
    the parent's default opt level — but no shared plan cache."""

    __slots__ = ("metrics", "cache", "default_opt_level")

    def __init__(self, default_opt_level: int = 0) -> None:
        from repro.service.telemetry import MetricsRegistry as _Registry

        self.metrics = _Registry()
        self.cache = None
        self.default_opt_level = default_opt_level


@dataclass
class IsolatedOutcome:
    """What a process worker ships back: the spec's result plus the
    telemetry events and metrics recorded while it ran (all picklable).
    Events from a failed attempt are lost with the exception — the
    engine's retry machinery, not telemetry, is the record of those."""

    result: Any
    events: List[Any] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)


def _execute_isolated(
    spec: JobSpec,
    attempts: int = 1,
    job_id: str = "isolated",
    default_opt_level: int = 0,
) -> IsolatedOutcome:
    """Run a spec in a worker process (module-level so it pickles).

    The parent's attempt count rides along so resilience-aware specs can
    tell a retry (restore from the spool) from a first attempt; the
    job id keeps forwarded events addressed like in-process ones.
    Telemetry emitted during the run is captured and returned with the
    result instead of being silently dropped."""
    handle = JobHandle(job_id, spec)
    handle.state = JobState.RUNNING
    handle.attempts = attempts
    tap = _EventTap()
    services = _IsolatedServices(default_opt_level)
    emitter = EventEmitter(job_id, tap)
    result = spec.execute(
        JobContext(handle, service=services, emitter=emitter)
    )
    return IsolatedOutcome(
        result=result, events=tap.events, metrics=services.metrics.dump(),
    )


class JobEngine:
    """Executes submitted jobs on a bounded worker pool."""

    def __init__(
        self,
        workers: int = 4,
        queue_limit: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        service: Optional[Any] = None,
        executor: str = "thread",
        dispatch: str = "fifo",
        admission: Optional[DeadlineAdmission] = None,
    ) -> None:
        if workers < 1:
            raise JobError(f"need at least one worker, got {workers}")
        if queue_limit < 1:
            raise JobError(f"queue limit must be >= 1: {queue_limit}")
        if executor not in ("thread", "process"):
            raise JobError(
                f"unknown executor {executor!r}; use 'thread' or 'process'"
            )
        if dispatch not in DISPATCH_ORDERS:
            raise JobError(
                f"unknown dispatch order {dispatch!r}; use one of "
                f"{DISPATCH_ORDERS}"
            )
        self.workers = workers
        self.queue_limit = queue_limit
        self.executor = executor
        self.dispatch = dispatch
        #: deadline-aware admission predicate (None = admit everything
        #: the bounded queue accepts); its EMA cost model is calibrated
        #: from every DONE job's wall time in :meth:`_finalise`
        self.admission = admission
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.service = service
        # EDF uses a priority queue keyed by absolute deadline; entries
        # are (key, tier, seq, handle) so handles never get compared and
        # shutdown sentinels (tier 1) drain only after real jobs
        self._queue: "queue.Queue" = (
            queue.PriorityQueue(maxsize=queue_limit) if dispatch == "edf"
            else queue.Queue(maxsize=queue_limit)
        )
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._closed = False
        self._lock = threading.Lock()
        self._pool = None  # lazy ProcessPoolExecutor
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobHandle:
        """Enqueue a job; O(1) (O(log n) under EDF), sheds with
        ServiceOverloaded when full and, when a deadline-aware admission
        predicate is installed, with DeadlineInfeasible when the
        predicted completion already misses the job's deadline."""
        with self._lock:
            if self._closed:
                raise JobError("engine is shut down")
            job_id = f"{spec.kind}-{next(self._ids)}"
        handle = JobHandle(job_id, spec)
        self.metrics.counter("jobs.submitted").inc()
        if self.admission is not None:
            decision = self.admission.evaluate(
                spec.kind, spec.deadline,
                queued=self._queue.qsize(), workers=self.workers,
            )
            self._emit_admission(handle, decision)
            if not decision.admitted:
                self.metrics.counter("sched.rejected.deadline").inc()
                error = DeadlineInfeasible(
                    f"job {job_id} rejected at admission: predicted "
                    f"completion {decision.predicted_completion:.3g}s "
                    f"exceeds deadline {decision.deadline:.3g}s"
                )
                handle._finish(JobState.FAILED, error=error)
                handle.channel.close()
                raise error
            self.metrics.counter("sched.admitted").inc()
        try:
            self._queue.put_nowait(self._entry(handle))
        except queue.Full:
            self.metrics.counter("jobs.rejected").inc()
            handle._finish(
                JobState.FAILED,
                error=ServiceOverloaded(
                    f"queue full ({self.queue_limit} pending); "
                    f"job {job_id} shed"
                ),
            )
            handle.channel.close()
            raise ServiceOverloaded(
                f"service overloaded: {self.queue_limit} jobs already "
                "queued"
            )
        self.metrics.gauge("queue.depth").set(self._queue.qsize())
        return handle

    def _entry(self, handle: Any) -> Any:
        """The queue item for one handle (EDF wraps in a sort key)."""
        if self.dispatch == "fifo":
            return handle
        if handle is _SHUTDOWN:
            # tier 1: sentinels sort after every real job at any key,
            # so queued work drains before the workers exit
            return (float("inf"), 1, next(self._seq), handle)
        deadline_at = handle.deadline_at
        key = float("inf") if deadline_at is None else deadline_at
        return (key, 0, next(self._seq), handle)

    def _emit_admission(self, handle: JobHandle, decision: Any) -> None:
        """Push an ADMISSION event onto the job's channel (seq -1: a
        submission-side event, outside the worker emitter's numbering —
        the same convention the cluster uses for MIGRATED)."""
        try:
            handle.channel.push(TelemetryEvent(
                ADMISSION, handle.id, seq=-1, t=float("nan"),
                payload=decision.as_payload(),
            ))
        except Exception:
            pass

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            handle = item if self.dispatch == "fifo" else item[3]
            if handle is _SHUTDOWN:
                self._queue.task_done()
                return
            try:
                self._run_job(handle)
            finally:
                self._queue.task_done()
                self.metrics.gauge("queue.depth").set(self._queue.qsize())

    def _run_job(self, handle: JobHandle) -> None:
        emitter = EventEmitter(handle.id, handle.channel)
        if handle.cancel_requested:
            self._finalise(handle, emitter, JobState.CANCELLED)
            return
        deadline_at = handle.deadline_at
        if deadline_at is not None and time.monotonic() > deadline_at:
            # dead on arrival: expired while queued
            self._finalise(handle, emitter, JobState.TIMEOUT)
            return

        handle.state = JobState.RUNNING
        handle.started_at = time.monotonic()
        emitter.emit(STATE, state=JobState.RUNNING.value)
        ctx = JobContext(handle, service=self.service, emitter=emitter)
        spec = handle.spec
        attempt = 0
        while True:
            handle.attempts = attempt + 1
            try:
                if self.executor == "process":
                    result = self._run_isolated(handle)
                else:
                    result = spec.execute(ctx)
            except JobCancelledError:
                self._finalise(handle, emitter, JobState.CANCELLED)
                return
            except JobTimeoutError:
                self._finalise(handle, emitter, JobState.TIMEOUT)
                return
            except TransientJobError as exc:
                if attempt >= spec.retries:
                    self._finalise(
                        handle, emitter, JobState.FAILED, error=exc,
                    )
                    return
                self.metrics.counter("jobs.retries").inc()
                emitter.emit(
                    STATE, state="retrying", attempt=attempt + 1,
                    error=str(exc),
                )
                if not self._backoff_wait(handle, attempt):
                    # cancelled or deadline-expired during backoff
                    state = (
                        JobState.CANCELLED if handle.cancel_requested
                        else JobState.TIMEOUT
                    )
                    self._finalise(handle, emitter, state)
                    return
                attempt += 1
                continue
            except BaseException as exc:
                self._finalise(handle, emitter, JobState.FAILED, error=exc)
                return
            self._finalise(handle, emitter, JobState.DONE, result=result)
            return

    def _backoff_wait(self, handle: JobHandle, attempt: int) -> bool:
        """Sleep ``backoff * 2**attempt``, honouring cancel/deadline.
        Returns False if the job should stop instead of retrying."""
        delay = handle.spec.backoff * (2 ** attempt)
        deadline_at = handle.deadline_at
        wake_at = time.monotonic() + delay
        while True:
            now = time.monotonic()
            if handle.cancel_requested:
                return False
            if deadline_at is not None and now > deadline_at:
                return False
            if now >= wake_at:
                return True
            time.sleep(min(0.01, wake_at - now))

    def _run_isolated(self, handle: JobHandle) -> Any:
        """Execute in a process pool (hard isolation, picklable specs)."""
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            pool = self._pool
        try:
            future = pool.submit(
                _execute_isolated, handle.spec, handle.attempts,
                handle.id,
                getattr(self.service, "default_opt_level", 0) or 0,
            )
        except Exception as exc:  # unpicklable spec, broken pool
            raise JobError(
                f"could not dispatch job {handle.id} to the process "
                f"pool: {exc}"
            ) from exc
        deadline_at = handle.deadline_at
        timeout = (
            None if deadline_at is None
            else max(0.0, deadline_at - time.monotonic())
        )
        try:
            outcome = future.result(timeout=timeout)
        except FutureTimeout:
            future.cancel()
            raise JobTimeoutError(
                f"job {handle.id} exceeded its deadline in the process "
                "pool"
            ) from None
        # replay the worker's telemetry onto the real channel and fold
        # its metrics into the service registry — before this, events
        # emitted inside a process worker were silently dropped
        for event in outcome.events:
            try:
                handle.channel.push(event)
            except Exception:
                break
        if outcome.metrics:
            self.metrics.merge(outcome.metrics)
        return outcome.result

    def _finalise(
        self,
        handle: JobHandle,
        emitter: EventEmitter,
        state: JobState,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if handle.started_at is None:
            handle.started_at = time.monotonic()
        handle._finish(state, result=result, error=error)
        self.metrics.counter(f"jobs.{state.value}").inc()
        if handle.wall_time is not None and state is JobState.DONE:
            self.metrics.histogram("job.wall_time").observe(
                handle.wall_time
            )
            if self.admission is not None:
                # calibrate the per-kind cost predictor on the fact
                self.admission.cost_model.observe(
                    handle.spec.kind, handle.wall_time
                )
        deadline_at = handle.deadline_at
        if deadline_at is not None and handle.finished_at is not None:
            lateness = handle.finished_at - deadline_at
            met = state is JobState.DONE and lateness <= 0.0
            self.metrics.counter(
                "sched.deadline_met" if met else "sched.deadline_missed"
            ).inc()
            self.metrics.histogram("sched.lateness").observe(lateness)
        emitter.emit(
            STATE, state=state.value,
            error=None if error is None else str(error),
        )
        handle.channel.close()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued job has been processed."""
        if timeout is None:
            self._queue.join()
            return True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.005)
        return self._queue.unfinished_tasks == 0

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for __ in self._threads:
            self._queue.put(self._entry(_SHUTDOWN))
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobEngine(workers={self.workers}, "
            f"queued={self._queue.qsize()}/{self.queue_limit}, "
            f"executor={self.executor!r})"
        )
