"""OdeBlock: textual state equations."""

import math

import numpy as np
import pytest

from repro.core.model import HybridModel
from repro.dataflow import Constant, Diagram, OdeBlock, Sine
from repro.dataflow.block import BlockError


def run(diagram, probe, until=1.0, h=0.001, sync=0.05):
    diagram.finalise()
    model = HybridModel("t")
    model.default_thread.h = h
    model.add_streamer(diagram)
    model.add_probe("y", diagram.port_at(probe))
    model.run(until=until, sync_interval=sync)
    return model.probe("y")


class TestConstruction:
    def test_equations_must_cover_states(self):
        with pytest.raises(BlockError, match="cover exactly"):
            OdeBlock("o", states={"x": 0.0}, equations={},
                     outputs={"y": "x"})

    def test_needs_output(self):
        with pytest.raises(BlockError, match="output"):
            OdeBlock("o", states={"x": 0.0}, equations={"x": "1"},
                     outputs={})

    def test_bad_expression_rejected_at_build(self):
        with pytest.raises(BlockError, match="bad expression"):
            OdeBlock("o", states={"x": 0.0},
                     equations={"x": "1 +* 2"}, outputs={"y": "x"})

    def test_reserved_name_rejected(self):
        with pytest.raises(BlockError, match="shadows"):
            OdeBlock("o", states={"sin": 0.0},
                     equations={"sin": "1"}, outputs={"y": "sin"})

    def test_duplicate_identifier_rejected(self):
        with pytest.raises(BlockError, match="duplicate"):
            OdeBlock("o", states={"x": 0.0}, equations={"x": "1"},
                     outputs={"y": "x"}, inputs=("x",))

    def test_builtins_not_reachable(self):
        block = OdeBlock(
            "o", states={"x": 1.0},
            equations={"x": "__import__('os').getpid()"},
            outputs={"y": "x"},
        )
        with pytest.raises(Exception):
            block.derivatives(0.0, np.array([1.0]))

    def test_feedthrough_detection(self):
        pure = OdeBlock("a", states={"x": 0.0}, equations={"x": "u"},
                        outputs={"y": "x"}, inputs=("u",))
        direct = OdeBlock("b", states={"x": 0.0}, equations={"x": "u"},
                          outputs={"y": "x + u"}, inputs=("u",))
        assert not pure.direct_feedthrough
        assert direct.direct_feedthrough


class TestDynamics:
    def test_exponential_decay(self):
        d = Diagram("d")
        d.add(OdeBlock(
            "decay", states={"x": 1.0},
            equations={"x": "-lam * x"}, outputs={"y": "x"},
            params={"lam": 2.0},
        ))
        trajectory = run(d, "decay.y", until=1.0)
        assert trajectory.y_final[0] == pytest.approx(
            math.exp(-2.0), rel=1e-6
        )

    def test_driven_integrator(self):
        d = Diagram("d")
        d.add(Constant("c", 3.0))
        d.add(OdeBlock(
            "integ", states={"x": 0.5}, equations={"x": "u"},
            outputs={"y": "x"}, inputs=("u",),
        ))
        d.connect("c.out", "integ.u")
        trajectory = run(d, "integ.y", until=2.0)
        assert trajectory.y_final[0] == pytest.approx(6.5, rel=1e-9)

    def test_nonlinear_pendulum(self):
        """Damped pendulum from strings settles to hanging position."""
        d = Diagram("d")
        d.add(Constant("torque", 0.0))
        d.add(OdeBlock(
            "pendulum",
            states={"theta": 2.5, "omega": 0.0},
            equations={
                "theta": "omega",
                "omega": "-(g / L) * sin(theta) - c * omega + torque",
            },
            outputs={"angle": "theta"},
            inputs=("torque",),
            params={"g": 9.81, "L": 0.5, "c": 2.0},
        ))
        d.connect("torque.out", "pendulum.torque")
        trajectory = run(d, "pendulum.angle", until=15.0, h=0.002)
        assert trajectory.y_final[0] == pytest.approx(0.0, abs=1e-3)

    def test_time_in_expressions(self):
        d = Diagram("d")
        d.add(OdeBlock(
            "chirp", states={"x": 0.0},
            equations={"x": "cos(t)"}, outputs={"y": "x"},
        ))
        trajectory = run(d, "chirp.y", until=math.pi / 2.0)
        assert trajectory.y_final[0] == pytest.approx(1.0, abs=1e-4)

    def test_parameter_tuning_via_signal(self):
        """OdeBlock inherits the set_<param> protocol from Block."""
        from repro.umlrt.protocol import Protocol

        proto = Protocol.define("Tune", outgoing=("set_lam",), incoming=())
        block = OdeBlock(
            "decay", states={"x": 1.0},
            equations={"x": "-lam * x"}, outputs={"y": "x"},
            params={"lam": 1.0},
        )
        block.add_sport("tune", proto.conjugate())
        from repro.umlrt.signal import Message

        block.handle_signal("tune", Message("set_lam", data=5.0))
        assert block.params["lam"] == 5.0

    def test_multiple_outputs(self):
        d = Diagram("d")
        d.add(OdeBlock(
            "osc", states={"x": 1.0, "v": 0.0},
            equations={"x": "v", "v": "-x"},
            outputs={"pos": "x", "energy": "0.5 * (x * x + v * v)"},
        ))
        d.finalise()
        model = HybridModel("t")
        model.default_thread.h = 0.001
        model.add_streamer(d)
        model.add_probe("e", d.port_at("osc.energy"))
        model.run(until=5.0, sync_interval=0.1)
        energies = model.probe("e").component(0)
        assert np.allclose(energies, 0.5, atol=1e-6)  # conserved
