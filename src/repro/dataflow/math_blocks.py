"""Stateless arithmetic blocks.

All of these are direct-feedthrough: their outputs depend on current
inputs, so they impose evaluation-order constraints and participate in
algebraic-loop detection (W12).
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.block import Block, BlockError


class Gain(Block):
    """``out = k * in``."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, k: float = 1.0) -> None:
        super().__init__(name, k=float(k))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self.params["k"] * self.in_scalar("in"))


class Bias(Block):
    """``out = in + bias``."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, bias: float = 0.0) -> None:
        super().__init__(name, bias=float(bias))

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self.in_scalar("in") + self.params["bias"])


class Sum(Block):
    """Signed sum of N inputs.

    ``signs`` is a string like ``"+-"`` or ``"++-"``; input ports are
    named ``in1..inN``.  The classic feedback comparator is
    ``Sum("err", signs="+-")`` with ``in1`` = reference, ``in2`` =
    measurement.
    """

    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, signs: str = "++") -> None:
        if not signs or any(c not in "+-" for c in signs):
            raise BlockError(
                f"sum {name!r}: signs must be a non-empty +/- string, "
                f"got {signs!r}"
            )
        inputs = [f"in{i + 1}" for i in range(len(signs))]
        super().__init__(name, inputs=inputs, signs=signs)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        total = 0.0
        for index, sign in enumerate(self.params["signs"]):
            value = self.in_scalar(f"in{index + 1}")
            total += value if sign == "+" else -value
        self.out_scalar("out", total)


class Product(Block):
    """Product of N inputs (ports ``in1..inN``)."""

    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str, n: int = 2) -> None:
        if n < 1:
            raise BlockError(f"product {name!r}: need n >= 1, got {n}")
        inputs = [f"in{i + 1}" for i in range(n)]
        super().__init__(name, inputs=inputs, n=n)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        value = 1.0
        for index in range(self.params["n"]):
            value *= self.in_scalar(f"in{index + 1}")
        self.out_scalar("out", value)


class Abs(Block):
    """``out = |in|``."""

    default_inputs = ("in",)
    direct_feedthrough = True
    time_invariant = True

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", abs(self.in_scalar("in")))
