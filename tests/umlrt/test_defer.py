"""Message deferral (ROOM defer/recall)."""

import pytest

from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.runtime import RTSystem
from repro.umlrt.signal import Message
from repro.umlrt.statemachine import StateMachine


class FakePort:
    def __init__(self, name="p"):
        self.name = name


def msg(signal, port="p"):
    return Message(signal, port=FakePort(port))


class Ctx:
    def __init__(self):
        self.handled = []


def busy_machine():
    """'busy' defers 'request'; 'idle' handles it."""
    sm = StateMachine("server")
    sm.add_state("busy", defer=("request",))
    sm.add_state("idle")
    sm.initial("busy")
    sm.add_transition("busy", "idle", trigger="done")
    sm.add_transition(
        "idle", trigger="request", internal=True,
        action=lambda c, m: c.handled.append(m.signal),
    )
    return sm


class TestDeferral:
    def test_deferred_not_dropped(self):
        sm = busy_machine()
        ctx = Ctx()
        sm.start(ctx)
        assert not sm.dispatch(ctx, msg("request"))
        assert sm.deferred_messages == 1
        assert sm.dropped_messages == 0

    def test_recalled_after_state_change(self):
        sm = busy_machine()
        ctx = Ctx()
        sm.start(ctx)
        sm.dispatch(ctx, msg("request"))
        sm.dispatch(ctx, msg("done"))
        recalled = sm.take_recalled()
        assert [m.signal for m in recalled] == ["request"]
        # re-dispatch in the new state now succeeds
        assert sm.dispatch(ctx, recalled[0])
        assert ctx.handled == ["request"]

    def test_multiple_deferred_recalled_in_order(self):
        sm = busy_machine()
        ctx = Ctx()
        sm.start(ctx)
        first, second = msg("request"), msg("request")
        sm.dispatch(ctx, first)
        sm.dispatch(ctx, second)
        sm.dispatch(ctx, msg("done"))
        assert sm.take_recalled() == [first, second]

    def test_internal_transition_does_not_recall(self):
        sm = busy_machine()
        sm.add_transition("busy", trigger="ping", internal=True)
        ctx = Ctx()
        sm.start(ctx)
        sm.dispatch(ctx, msg("request"))
        sm.dispatch(ctx, msg("ping"))  # internal: no state change
        assert sm.take_recalled() == []

    def test_inner_transition_beats_outer_defer(self):
        sm = StateMachine("m")
        sm.add_state("outer", defer=("work",))
        sm.add_state("outer.inner")
        sm.add_state("outer.other")
        sm.initial("outer")
        sm.initial("outer.inner", composite="outer")
        sm.add_transition("outer.inner", "outer.other", trigger="work")
        ctx = Ctx()
        sm.start(ctx)
        assert sm.dispatch(ctx, msg("work"))  # fires, not deferred
        assert sm.deferred_messages == 0

    def test_outer_defer_catches_when_inner_silent(self):
        sm = StateMachine("m")
        sm.add_state("outer", defer=("work",))
        sm.add_state("outer.inner")
        sm.initial("outer")
        sm.initial("outer.inner", composite="outer")
        ctx = Ctx()
        sm.start(ctx)
        assert not sm.dispatch(ctx, msg("work"))
        assert sm.deferred_messages == 1


PROTO = Protocol.define("Work", outgoing=("request", "done"), incoming=())


class Server(Capsule):
    def __init__(self, name="server"):
        self.handled = []
        super().__init__(name)

    def build_structure(self):
        self.create_port("in_", PROTO.conjugate())

    def build_behaviour(self):
        sm = StateMachine("server")
        sm.add_state("busy", defer=("request",))
        sm.add_state("idle")
        sm.initial("busy")
        sm.add_transition("busy", "idle", trigger=("in_", "done"))
        sm.add_transition(
            "idle", trigger=("in_", "request"), internal=True,
            action=lambda c, m: c.handled.append(m.signal),
        )
        return sm


class TestDeferralInRuntime:
    def test_full_defer_recall_cycle(self):
        rts = RTSystem("t")
        server = rts.add_top(Server())
        rts.start()
        rts.inject(server.port("in_"), "request")
        rts.inject(server.port("in_"), "request")
        rts.inject(server.port("in_"), "done")
        rts.run()
        # both requests parked while busy, recalled and handled in idle
        assert server.handled == ["request", "request"]
