"""Fixed-priority schedulability analysis.

"During implementation, capsules and streamers are assigned to different
threads" (paper §2) — which immediately raises the real-time question: is
that thread set schedulable?  This module provides the classic answers
for rate-monotonic fixed-priority scheduling:

* :func:`liu_layland_bound` — the sufficient utilisation test
  ``U <= n(2^(1/n) - 1)``;
* :func:`response_time_analysis` — the exact (necessary & sufficient)
  iterative response-time test for constrained-deadline task sets;
* :func:`taskset_from_model` — derive a periodic task per streamer thread
  (period = sync interval, cost = measured or estimated integration
  slice) plus one per capsule controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel


class SchedulabilityError(Exception):
    """Raised on malformed task sets."""


@dataclass(frozen=True)
class Task:
    """A periodic task: worst-case cost, period, deadline (= period if
    omitted)."""

    name: str
    wcet: float
    period: float
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise SchedulabilityError(f"{self.name}: non-positive WCET")
        if self.period <= 0:
            raise SchedulabilityError(f"{self.name}: non-positive period")
        if self.effective_deadline < self.wcet:
            raise SchedulabilityError(
                f"{self.name}: deadline {self.effective_deadline} < WCET "
                f"{self.wcet}"
            )

    @property
    def effective_deadline(self) -> float:
        return self.period if self.deadline is None else self.deadline

    @property
    def utilisation(self) -> float:
        return self.wcet / self.period


@dataclass
class TaskSet:
    """A set of periodic tasks under rate-monotonic priorities."""

    tasks: List[Task] = field(default_factory=list)

    def add(self, task: Task) -> "TaskSet":
        self.tasks.append(task)
        return self

    @property
    def utilisation(self) -> float:
        return sum(task.utilisation for task in self.tasks)

    def rate_monotonic_order(self) -> List[Task]:
        """Shorter period = higher priority; name breaks ties."""
        return sorted(self.tasks, key=lambda t: (t.period, t.name))


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilisation bound for ``n`` tasks."""
    if n <= 0:
        raise SchedulabilityError(f"need n >= 1 tasks, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def utilisation_test(taskset: TaskSet) -> Dict[str, float]:
    """Sufficient test: schedulable if U <= bound(n)."""
    n = len(taskset.tasks)
    bound = liu_layland_bound(n)
    u = taskset.utilisation
    return {
        "tasks": n,
        "utilisation": u,
        "bound": bound,
        "passes": float(u <= bound),
    }


def response_time_analysis(
    taskset: TaskSet, max_iterations: int = 10_000
) -> Dict[str, Dict[str, float]]:
    """Exact RTA: fixed-point ``R = C + Σ ceil(R/T_j)·C_j`` over higher-
    priority tasks.  Returns per-task response time and schedulability."""
    import math

    ordered = taskset.rate_monotonic_order()
    results: Dict[str, Dict[str, float]] = {}
    for index, task in enumerate(ordered):
        higher = ordered[:index]
        response = task.wcet
        for __ in range(max_iterations):
            interference = sum(
                math.ceil(response / other.period) * other.wcet
                for other in higher
            )
            next_response = task.wcet + interference
            if next_response == response:
                break
            response = next_response
            if response > task.effective_deadline:
                break
        results[task.name] = {
            "response_time": response,
            "deadline": task.effective_deadline,
            "schedulable": float(response <= task.effective_deadline),
        }
    return results


def taskset_schedulable(taskset: TaskSet) -> bool:
    """True iff every task meets its deadline under exact RTA."""
    return all(
        entry["schedulable"] == 1.0
        for entry in response_time_analysis(taskset).values()
    )


def taskset_from_model(
    model: "HybridModel",
    sync_interval: float,
    streamer_wcet: Optional[Dict[str, float]] = None,
    controller_wcet: float = 1e-4,
    controller_period: Optional[float] = None,
) -> TaskSet:
    """Derive a rate-monotonic task set from a hybrid model.

    Each streamer thread becomes a periodic task with period equal to the
    sync interval and WCET either measured (``streamer_wcet[thread
    name]``) or estimated as ``minor steps per slice × 10µs`` per leaf.
    Each controller becomes a task at ``controller_period`` (default: the
    sync interval) with ``controller_wcet``.
    """
    taskset = TaskSet()
    for thread in model.threads:
        if not thread.streamers and not thread.leaves:
            continue
        if streamer_wcet and thread.name in streamer_wcet:
            wcet = streamer_wcet[thread.name]
        else:
            leaves = thread.leaves or [
                leaf for top in thread.streamers for leaf in top.leaves()
            ]
            minor_steps = max(1, int(round(sync_interval / thread.h)))
            wcet = max(1e-9, minor_steps * len(leaves) * 1e-5)
        taskset.add(Task(
            f"streamer:{thread.name}", wcet=wcet, period=sync_interval
        ))
    period = controller_period or sync_interval
    for controller in model.rts.controllers:
        if not controller.capsules:
            continue
        taskset.add(Task(
            f"controller:{controller.name}",
            wcet=controller_wcet,
            period=period,
        ))
    return taskset
