"""Crash-safe job resume through the engine's retry path.

The headline guarantee: a job killed by an injected fault and retried
restores the newest valid checkpoint and finishes with results *bitwise
identical* to an uninterrupted run (fixed-step plans).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from tests.resilience.conftest import build_control_model

from repro.resilience import FaultInjector
from repro.service import SimulationService
from repro.service.jobs import (
    BatchJob, SingleRunJob, TransientJobError,
)
from repro.service.telemetry import RESUMED


def single_run(**overrides):
    spec = dict(
        model_factory=build_control_model, t_end=2.0, sync_interval=0.01,
    )
    spec.update(overrides)
    return SingleRunJob(**spec)


def run_job(spec, timeout=60.0):
    with SimulationService(workers=1) as service:
        handle = service.submit(spec)
        events = list(handle.stream())
        result = handle.result(timeout)
        metrics = service.metrics_snapshot()
    return result, events, metrics


def assert_single_results_bitwise(a, b):
    assert set(a.probes) == set(b.probes)
    for name in a.probes:
        assert np.array_equal(a.probes[name].times, b.probes[name].times)
        assert np.array_equal(a.probes[name].states, b.probes[name].states)
    assert a.t_final == b.t_final


class TestSingleRunResume:
    def test_crash_retry_resumes_bitwise(self, tmp_path):
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=5).crash_at_step(110)
        result, events, metrics = run_job(single_run(
            retries=1, backoff=0.01,
            checkpoint_dir=tmp_path, checkpoint_every_steps=40,
            fault_injector=injector,
        ))
        kinds = [e.kind for e in events]
        assert RESUMED in kinds
        resumed = next(e for e in events if e.kind == RESUMED)
        assert resumed.payload["step"] == 80  # newest interval saved
        assert resumed.payload["attempt"] == 2
        assert metrics["counters"]["jobs.resumed"] == 1
        assert metrics["counters"]["jobs.retries"] == 1
        assert_single_results_bitwise(reference, result)

    def test_seeded_crash_window_resumes_bitwise(self, tmp_path):
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=123).crash_between(60, 180)
        result, events, __ = run_job(single_run(
            retries=1, backoff=0.01,
            checkpoint_dir=tmp_path, checkpoint_every_steps=25,
            fault_injector=injector,
        ))
        assert injector.fired[0].kind == "crash"
        assert any(e.kind == RESUMED for e in events)
        assert_single_results_bitwise(reference, result)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_divergence_fault_recovers(self, tmp_path):
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=9).diverge_at_step(90)
        result, events, __ = run_job(single_run(
            retries=1, backoff=0.01,
            checkpoint_dir=tmp_path, checkpoint_every_steps=30,
            fault_injector=injector,
        ))
        assert [r.kind for r in injector.fired] == ["diverge"]
        assert any(e.kind == RESUMED for e in events)
        assert_single_results_bitwise(reference, result)

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=4).crash_at_step(130)

        @dataclass
        class CorruptingJob(SingleRunJob):
            """Corrupts the newest checkpoint between attempts, like a
            torn write discovered at recovery time."""

            def execute(self, ctx):
                if ctx.handle.attempts == 2:
                    injector.corrupt_checkpoint(tmp_path)
                return super().execute(ctx)

        result, events, __ = run_job(CorruptingJob(
            model_factory=build_control_model, t_end=2.0,
            sync_interval=0.01, retries=1, backoff=0.01,
            checkpoint_dir=tmp_path, checkpoint_every_steps=40,
            fault_injector=injector,
        ))
        resumed = next(e for e in events if e.kind == RESUMED)
        assert resumed.payload["step"] == 80  # fell back from 120
        assert_single_results_bitwise(reference, result)

    def test_no_checkpoint_dir_cold_restarts(self, tmp_path):
        # without a spool the retry is a cold restart — still correct,
        # since the fired fault does not refire on attempt 2
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=2).crash_at_step(50)
        result, events, __ = run_job(single_run(
            retries=1, backoff=0.01, fault_injector=injector,
        ))
        assert not any(e.kind == RESUMED for e in events)
        assert_single_results_bitwise(reference, result)

    def test_exhausted_retries_fail(self, tmp_path):
        # one crash per attempt: the retry budget (1) runs out
        injector = (
            FaultInjector(seed=8)
            .crash_at_step(20)
            .crash_at_step(40, attempt=2)
        )
        with SimulationService(workers=1) as service:
            handle = service.submit(single_run(
                retries=1, backoff=0.01,
                checkpoint_dir=tmp_path, checkpoint_every_steps=10,
                fault_injector=injector,
            ))
            with pytest.raises(TransientJobError):
                handle.result(60)

    def test_explicit_resume_from_snapshot(self, tmp_path):
        # warm-start a fresh job from a previous run's checkpoint file
        from repro.resilience import CheckpointManager

        reference, __, __ = run_job(single_run())
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        manager = CheckpointManager(tmp_path, every_steps=60, keep=1)
        manager.attach(scheduler)
        scheduler.run(1.0)
        path = manager.checkpoints()[-1]

        result, events, __ = run_job(single_run(resume_from=path))
        assert any(e.kind == RESUMED for e in events)
        assert result.t_final == reference.t_final
        # trajectories after the warm-start point are the reference's
        for name in reference.probes:
            want = reference.probes[name]
            got = result.probes[name]
            assert np.array_equal(got.times[-50:], want.times[-50:])
            assert np.array_equal(got.states[-50:], want.states[-50:])


class TestProcessExecutorResume:
    """Hard isolation: the fault kills a *worker process*; the retried
    attempt runs in a fresh process and resumes from the shared spool.
    The injector reaches each child by pickling, so attempt-pinned
    faults are what keep the crash from re-firing on the retry."""

    def test_crash_retry_resumes_across_processes(self, tmp_path):
        reference, __, __ = run_job(single_run())
        injector = FaultInjector(seed=6).crash_at_step(120)
        spec = single_run(
            retries=1, backoff=0.01,
            checkpoint_dir=tmp_path, checkpoint_every_steps=40,
            fault_injector=injector,
        )
        with SimulationService(workers=1, executor="process") as service:
            handle = service.submit(spec)
            result = handle.result(120)
            metrics = service.metrics_snapshot()
        assert metrics["counters"]["jobs.retries"] == 1
        # the spool proves the first attempt made progress before dying
        assert list(tmp_path.glob("ckpt-*.ckpt"))
        assert_single_results_bitwise(reference, result)

    def test_attempt_pinned_fault_stays_dormant_on_retry(self):
        injector = FaultInjector(seed=0).crash_at_step(10, attempt=1)
        model = build_control_model()
        scheduler = model.scheduler(sync_interval=0.01)
        injector.arm(scheduler, attempt=2)  # a retried attempt
        scheduler.run(0.5)
        assert injector.fired == []


@dataclass
class FlakyBatchJob(BatchJob):
    """Dies with a transient error right after streaming chunk
    ``die_after_chunks`` on the first attempt."""

    die_after_chunks: int = 2

    def execute(self, ctx):
        if ctx.handle.attempts == 1:
            real_emit = ctx.emit
            seen = [0]

            def emit(kind, t=float("nan"), **payload):
                real_emit(kind, t=t, **payload)
                if kind == "chunk":
                    seen[0] += 1
                    if seen[0] == self.die_after_chunks:
                        raise TransientJobError("injected worker death")

            ctx.emit = emit
        return super().execute(ctx)


class TestBatchResume:
    def loop_kwargs(self):
        import sys
        sys.path.insert(0, "tests")
        from core.test_batch import RECORDS, pid_loop_diagram

        return dict(
            diagram_factory=pid_loop_diagram, n=8, t_end=0.2,
            solver="rk4", h=2e-3, records=list(RECORDS), record_every=3,
            chunk_steps=17,
            sweeps={"pid.kp": np.linspace(0.5, 5.0, 8)},
        )

    def test_chunked_resume_is_bitwise(self, tmp_path):
        kwargs = self.loop_kwargs()
        reference, __, __ = run_job(BatchJob(**kwargs))
        result, events, metrics = run_job(FlakyBatchJob(
            retries=1, backoff=0.01, checkpoint_dir=tmp_path,
            die_after_chunks=2, **kwargs,
        ))
        resumed = next(e for e in events if e.kind == RESUMED)
        assert resumed.payload["chunks"] == 1  # died before ckpt 2 wrote
        assert metrics["counters"]["jobs.resumed"] == 1
        assert np.array_equal(reference.t, result.t)
        for label in reference.series:
            assert np.array_equal(
                reference.series[label], result.series[label],
            ), label
        assert np.array_equal(reference.final_states, result.final_states)

    def test_batch_resume_without_cache(self, tmp_path):
        # spool fingerprinting works even when the service cache is off
        kwargs = self.loop_kwargs()
        reference, __, __ = run_job(BatchJob(**kwargs))

        class NoCacheService(SimulationService):
            def __init__(self):
                super().__init__(workers=1)
                self.cache = None

        with NoCacheService() as service:
            handle = service.submit(FlakyBatchJob(
                retries=1, backoff=0.01, checkpoint_dir=tmp_path,
                die_after_chunks=3, **kwargs,
            ))
            events = list(handle.stream())
            result = handle.result(60)
        assert any(e.kind == RESUMED for e in events)
        assert np.array_equal(reference.t, result.t)
        for label in reference.series:
            assert np.array_equal(
                reference.series[label], result.series[label],
            ), label

    def test_native_batch_crash_retry_resumes_bitwise(self, tmp_path):
        """The C-kernel backend spools/restores the same checkpoint
        payload as the NumPy program: a mid-run worker death resumes
        bitwise against the plain-batch reference trajectory."""
        from repro.core.backend import has_c_compiler

        if not has_c_compiler():
            pytest.skip("no C compiler on this host")
        kwargs = self.loop_kwargs()
        reference, __, __ = run_job(BatchJob(**kwargs))
        result, events, metrics = run_job(FlakyBatchJob(
            retries=1, backoff=0.01, checkpoint_dir=tmp_path,
            die_after_chunks=2, backend="native-batch", **kwargs,
        ))
        assert any(e.kind == RESUMED for e in events)
        assert metrics["counters"]["backend.used.native-batch"] == 2
        assert np.array_equal(reference.t, result.t)
        for label in reference.series:
            assert np.array_equal(
                reference.series[label], result.series[label],
            ), label
        assert np.array_equal(reference.final_states, result.final_states)
