"""High-level initial-value-problem driver.

:func:`integrate` runs any solver from ``t0`` to ``t1``, recording the
trajectory and localising zero-crossing events on the way.  Streamer
threads use the lower-level per-step API directly (they must interleave
with the discrete world); this driver serves standalone plant simulation,
tests and the solver benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.solvers.base import RHS, SolverBase, SolverError
from repro.solvers.events import EventOccurrence, EventSpec, ZeroCrossingDetector
from repro.solvers.history import Trajectory


@dataclass
class IntegrationResult:
    """Everything :func:`integrate` produces."""

    trajectory: Trajectory
    events: List[EventOccurrence] = field(default_factory=list)
    terminated_by_event: bool = False
    steps: int = 0
    rhs_like_steps: int = 0  # accepted + rejected attempts for adaptive

    @property
    def t_final(self) -> float:
        return self.trajectory.t_final

    @property
    def y_final(self) -> np.ndarray:
        return self.trajectory.y_final


def integrate(
    f: RHS,
    y0: Union[np.ndarray, Sequence[float], float],
    t0: float,
    t1: float,
    solver: SolverBase,
    h: float,
    events: Optional[Sequence[EventSpec]] = None,
    labels: Optional[Sequence[str]] = None,
    max_steps: int = 10_000_000,
) -> IntegrationResult:
    """Integrate ``y' = f(t, y)`` from ``t0`` to ``t1``.

    Parameters
    ----------
    solver:
        Any :class:`~repro.solvers.base.SolverBase`; adaptive solvers treat
        ``h`` as the initial step.
    h:
        (Initial) step size; the final step is shortened to land exactly
        on ``t1``.
    events:
        Zero-crossing specs.  A ``terminal`` event stops integration at the
        event time; the event state becomes the final sample.
    """
    if t1 < t0:
        raise SolverError(f"t1={t1} earlier than t0={t0}")
    if h <= 0:
        raise SolverError(f"non-positive step {h}")
    y = np.atleast_1d(np.asarray(y0, dtype=float)).copy()
    solver.reset()
    trajectory = Trajectory(labels=labels)
    trajectory.append(t0, y)
    detector: Optional[ZeroCrossingDetector] = None
    if events:
        detector = ZeroCrossingDetector(list(events))
        detector.reset(t0, y)
    result = IntegrationResult(trajectory=trajectory)
    t = t0
    while t < t1 - 1e-14 * max(1.0, abs(t1)):
        step_h = min(h, t1 - t)
        outcome = solver.step(f, t, y, step_h)
        result.steps += 1
        if result.steps > max_steps:
            raise SolverError(
                f"integration exceeded {max_steps} steps at t={t:.6g}"
            )
        if detector is not None:
            occurrences = detector.check_step(t, y, outcome.t, outcome.y)
            terminal_hit: Optional[EventOccurrence] = None
            for occ in occurrences:
                result.events.append(occ)
                if occ.spec.terminal and terminal_hit is None:
                    terminal_hit = occ
            if terminal_hit is not None:
                trajectory.append(terminal_hit.t, terminal_hit.y)
                result.terminated_by_event = True
                return result
        t, y = outcome.t, outcome.y
        trajectory.append(t, y)
        if solver.adaptive:
            h = outcome.h_next
    return result
