"""Experiment S2 — end-to-end hybrid simulation scaling and ablations.

Scaling of the hybrid scheduler with (a) streamer count, (b) state-machine
size, and the two design-decision ablations DESIGN.md §6 calls out:
(c) the major-step (sync) interval, and (d) event-restart on/off accuracy.
"""

import math

import numpy as np
import pytest

from repro.core.flowtype import SCALAR
from repro.core.model import HybridModel
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.statemachine import StateMachine


class _Decay(Streamer):
    state_size = 1

    def __init__(self, name, lam=1.0):
        super().__init__(name)
        self.add_out("y", SCALAR)
        self.params["lam"] = lam

    def initial_state(self):
        return np.array([1.0])

    def derivatives(self, t, state):
        return np.array([-self.params["lam"] * state[0]])

    def compute_outputs(self, t, state):
        self.out_scalar("y", state[0])


def _chain_model(n):
    model = HybridModel(f"chain{n}")
    model.default_thread.h = 0.01
    for index in range(n):
        model.add_streamer(_Decay(f"d{index}", lam=1.0 + 0.01 * index))
    return model


@pytest.mark.parametrize("n", [4, 16, 64])
def test_s2_streamer_count_scaling(benchmark, n):
    def run():
        model = _chain_model(n)
        model.run(until=0.5, sync_interval=0.05)
        return model

    model = benchmark(run)
    assert model.scheduler().network.stats()["leaves"] == n


def test_s2_streamer_scaling_summary(benchmark, report, bench_json):
    import time

    lines = []
    walls = []

    def sweep():
        lines.clear()
        walls.clear()
        lines.append(f"{'streamers':>10}{'wall s / sim s':>16}")
        for n in (4, 16, 64):
            start = time.perf_counter()
            model = _chain_model(n)
            model.run(until=0.5, sync_interval=0.05)
            wall = (time.perf_counter() - start) / 0.5
            walls.append(wall)
            lines.append(f"{n:>10}{wall:>16.3f}")

    benchmark.pedantic(sweep, rounds=2, iterations=1)
    report("S2: scaling with streamer count (h=0.01, sync=0.05)", lines)
    # shape: roughly linear; 16x more streamers << 100x slower
    assert walls[2] < walls[0] * 60
    bench_json("s2", {
        "wall_per_sim_s_4_streamers": walls[0],
        "wall_per_sim_s_16_streamers": walls[1],
        "wall_per_sim_s_64_streamers": walls[2],
    })


class _BigMachine(Capsule):
    def __init__(self, name, states):
        self._n = states
        self.visits = 0
        super().__init__(name)

    def build_behaviour(self):
        sm = StateMachine("big")
        for index in range(self._n):
            sm.add_state(f"s{index}")
        sm.initial("s0")
        for index in range(self._n):
            sm.add_transition(
                f"s{index}", f"s{(index + 1) % self._n}",
                trigger=("timer", "timeout"),
                action=lambda c, m: setattr(c, "visits", c.visits + 1),
            )
        return sm

    def on_start(self):
        self.inform_every(0.01)


@pytest.mark.parametrize("states", [4, 64])
def test_s2_statemachine_size(benchmark, states):
    """RTC dispatch cost as the machine grows (flat machines: O(1)-ish)."""

    def run():
        from repro.umlrt.runtime import RTSystem

        rts = RTSystem("sm")
        capsule = rts.add_top(_BigMachine("big", states))
        rts.start()
        rts.run(until=2.0)
        return capsule

    capsule = benchmark(run)
    # 2.0 / 0.01 = 200 expiries, +-1 for float drift on the last tick
    assert 199 <= capsule.visits <= 201


def test_s2_sync_interval_ablation(benchmark, report):
    """Cross-thread coupling error vs the major-step interval."""
    rows = []

    def sweep():
        from tests.conftest import ConstLeaf, IntegratorLeaf

        rows.clear()
        for sync in (0.1, 0.02, 0.004):
            model = HybridModel("sync")
            fast = model.create_thread("fast", h=1e-3)
            slow = model.create_thread("slow", h=1e-3)
            source = model.add_streamer(ConstLeaf("c", 1.0), fast)
            a = model.add_streamer(IntegratorLeaf("a"), fast)
            b = model.add_streamer(IntegratorLeaf("b"), slow)
            model.add_flow(source.dport("y"), a.dport("u"))
            model.add_flow(a.dport("y"), b.dport("u"))  # crosses threads
            model.add_probe("b", b.dport("y"))
            model.run(until=1.0, sync_interval=sync)
            error = abs(model.probe("b").y_final[0] - 0.5)
            rows.append((sync, error))

    benchmark(sweep)
    report("S2: sync-interval ablation (cross-thread hold error)", [
        f"sync = {sync:<8} |b(1) - 0.5| = {err:.2e}"
        for sync, err in rows
    ])
    # shape: first-order in the sync interval
    assert rows[2][1] < rows[0][1]


def test_s2_event_restart_ablation(benchmark, report):
    """Reaction delay with and without truncating the major step at the
    first zero crossing."""

    class Tripwire(Streamer):
        state_size = 1
        zero_crossing_names = ("level",)

        def __init__(self, name):
            super().__init__(name)
            self.add_out("y", SCALAR)
            self.trip_time = None

        def derivatives(self, t, state):
            return np.array([1.0])

        def compute_outputs(self, t, state):
            self.out_scalar("y", state[0])

        def zero_crossings(self, t, state):
            return (state[0] - 0.731,)  # off-grid crossing point

        def on_zero_crossing(self, name, t, direction):
            if self.trip_time is None:
                self.trip_time = t

    rows = {}

    def run_both():
        for restart in (True, False):
            model = HybridModel(f"er{restart}")
            wire = model.add_streamer(Tripwire("wire"))
            model.run(until=1.0, sync_interval=0.05,
                      event_restart=restart)
            rows[restart] = abs(wire.trip_time - 0.731)

    benchmark(run_both)
    report("S2: event-restart ablation (localisation error)", [
        f"event_restart=True : {rows[True]:.2e}",
        f"event_restart=False: {rows[False]:.2e}",
        "(both localise by interpolation; restart also realigns the "
        "continuous state and discrete reaction to the crossing)",
    ])
    assert rows[True] < 1e-6
    assert rows[False] < 1e-6  # localisation itself is interpolation-exact


def test_s2_dense_events_ablation(benchmark, report, bench_json):
    """Secant vs cubic-Hermite event localisation on a curved trajectory
    (falling ball, coarse 0.25 s sync interval)."""
    import math

    class Ball(Streamer):
        state_size = 2
        zero_crossing_names = ("ground",)

        def __init__(self, name):
            super().__init__(name)
            self.add_out("h", SCALAR)
            self.impact = None

        def initial_state(self):
            return np.array([10.0, 0.0])

        def derivatives(self, t, state):
            return np.array([state[1], -9.81])

        def compute_outputs(self, t, state):
            self.out_scalar("h", state[0])

        def zero_crossings(self, t, state):
            return (state[0],)

        def on_zero_crossing(self, name, t, direction):
            if self.impact is None:
                self.impact = t

    exact = math.sqrt(2.0 * 10.0 / 9.81)
    errors = {}

    def run_both():
        for dense in (False, True):
            model = HybridModel(f"ball{dense}")
            ball = model.add_streamer(Ball("ball"))
            model.run(until=2.0, sync_interval=0.25, dense_events=dense)
            errors[dense] = abs(ball.impact - exact)

    benchmark(run_both)
    report("S2: dense-events ablation (impact-time error, sync=0.25)", [
        f"secant (dense_events=False): {errors[False]:.2e}",
        f"Hermite (dense_events=True): {errors[True]:.2e}",
        f"improvement: {errors[False] / max(errors[True], 1e-16):.0f}x",
    ])
    assert errors[True] < errors[False]
    bench_json("s2", {
        "secant_impact_error": errors[False],
        "hermite_impact_error": errors[True],
    })
