"""The shared fact tables the rules analyse.

``run_checks`` accepts several target shapes — a :class:`~repro.core.
model.HybridModel`, a :class:`~repro.dataflow.diagram.Diagram` (or any
composite streamer), a compiled :class:`~repro.core.plan.ExecutionPlan`,
or a bare :class:`~repro.umlrt.statemachine.StateMachine`.  This module
normalises them all into one :class:`CheckContext`: leaves, resolved
edges, observer edges, algebraic cycles, the thread partition, probed
pads and the attached state machines.  Rules then read those tables and
never care which surface the model arrived through.

Models are flattened with ``FlatNetwork(strict=False)`` so a model
containing an algebraic loop — the very defect STR001 exists to report —
still produces an analysable network instead of an exception.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.dport import DPort
from repro.core.network import FlatNetwork, NetworkError, ResolvedEdge
from repro.core.plan import ExecutionPlan
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.statemachine import StateMachine

from repro.check.diagnostics import Diagnostic, FixIt
from repro.check.registry import CheckConfig, Rule, suppressed_codes


class CheckTargetError(TypeError):
    """Raised when run_checks receives an object it cannot analyse."""


class CheckContext:
    """Normalised view of one check target plus the diagnostic sink."""

    def __init__(self, config: CheckConfig, subject: str) -> None:
        self.config = config
        self.subject = subject
        self.model = None  # HybridModel, when the target carries one
        self.network: Optional[FlatNetwork] = None
        self.plan: Optional[ExecutionPlan] = None
        #: NetworkError raised while flattening (double driver, pad
        #: cycle); when set, the graph tables below are empty
        self.network_error: Optional[NetworkError] = None
        self.leaves: List[Streamer] = []
        self.edges: List[ResolvedEdge] = []
        self.observer_edges: List[ResolvedEdge] = []
        self.cycles: List[List[Streamer]] = []
        #: None = unknown (plan targets carry no connectivity gaps)
        self.unconnected_inputs: Optional[List[DPort]] = None
        #: id(leaf) -> thread name ("" when unpartitioned)
        self.thread_name: Dict[int, str] = {}
        #: id(DPort) -> True for pads read by probes
        self.probed_ids: Set[int] = set()
        #: (subject prefix, machine, owning capsule or None)
        self.machines: List[
            Tuple[str, StateMachine, Optional[Capsule]]
        ] = []
        self.diagnostics: List[Diagnostic] = []
        self._rule: Optional[Rule] = None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(
        self,
        subject: str,
        message: str,
        severity: Optional[str] = None,
        obj: Any = None,
        fixit: Optional[FixIt] = None,
        details: Optional[dict] = None,
        code: Optional[str] = None,
    ) -> Optional[Diagnostic]:
        """Record one finding for the currently running rule.

        Returns the diagnostic, or None when it was suppressed — either
        by an inline ``lint_suppress`` marker on ``obj`` (or the model)
        or by a config suppression pattern.
        """
        assert self._rule is not None, "emit() outside a rule"
        rule = self._rule
        final_code = code or rule.code
        if obj is not None and final_code in suppressed_codes(obj):
            return None
        if self.model is not None and final_code in suppressed_codes(
            self.model
        ):
            return None
        if self.config.suppressed(final_code, subject):
            return None
        final = self.config.effective_severity(
            final_code, severity or rule.severity
        )
        diagnostic = Diagnostic(
            final_code, final, subject, message,
            fixit=fixit, details=details,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    # ------------------------------------------------------------------
    # graph helpers shared by several rules
    # ------------------------------------------------------------------
    def in_edges_of(self, leaf: Streamer) -> List[ResolvedEdge]:
        return [e for e in self.edges if e.dst_leaf is leaf]

    def out_edges_of(self, leaf: Streamer) -> List[ResolvedEdge]:
        return [e for e in self.edges if e.src_leaf is leaf]

    def port_is_read(self, port: DPort) -> bool:
        """True if anything downstream consumes or observes this pad."""
        if id(port) in self.probed_ids:
            return True
        for edge in self.edges:
            if edge.src_port is port:
                return True
        for edge in self.observer_edges:
            if edge.src_port is port or edge.dst_port is port:
                return True
        return False


def _thread_names_from_model(model) -> Dict[int, str]:
    """Map every leaf to the thread of its top-level ancestor."""
    top_thread: Dict[int, str] = {}
    for thread in model.threads:
        for top in thread.streamers:
            top_thread[id(top)] = thread.name
    names: Dict[int, str] = {}
    for top in model.streamers:
        name = top_thread.get(id(top), "")
        for leaf in top.leaves():
            names[id(leaf)] = name
    return names


def _collect_machines(model) -> List[Tuple[str, StateMachine, Capsule]]:
    machines: List[Tuple[str, StateMachine, Capsule]] = []
    seen: Set[int] = set()

    def walk(capsule: Capsule) -> None:
        if id(capsule) in seen:
            return
        seen.add(id(capsule))
        if capsule.behaviour is not None:
            machines.append(
                (capsule.instance_name, capsule.behaviour, capsule)
            )
        for part in capsule.parts.values():
            if part.instance is not None:
                walk(part.instance)

    for top in model.rts.tops:
        walk(top)
    return machines


def _fill_from_network(ctx: CheckContext, network: FlatNetwork) -> None:
    ctx.network = network
    ctx.leaves = list(network.leaves)
    ctx.edges = list(network.edges)
    ctx.observer_edges = list(network.observer_edges)
    ctx.cycles = [list(cycle) for cycle in network.algebraic_cycles]
    ctx.unconnected_inputs = list(network.unconnected_inputs)


def _cycles_from_edges(
    leaves: List[Streamer], edges: List[ResolvedEdge]
) -> List[List[Streamer]]:
    """Recompute delay-free cycles from a resolved edge table.

    Plans carry no recorded cycles (a strict network rejects them at
    flatten time), so the plan path re-derives them the same way the
    network does: Kahn over the feedthrough-constraint subgraph, then
    one concrete cycle per leftover strongly connected component.
    """
    successors: Dict[int, List[Streamer]] = {id(l): [] for l in leaves}
    indegree: Dict[int, int] = {id(l): 0 for l in leaves}
    cycles: List[List[Streamer]] = []
    constrained: Set[Tuple[int, int]] = set()
    self_looped: Set[int] = set()
    for edge in edges:
        if not edge.dst_leaf.direct_feedthrough:
            continue
        if edge.src_leaf is edge.dst_leaf:
            if id(edge.dst_leaf) not in self_looped:
                self_looped.add(id(edge.dst_leaf))
                cycles.append([edge.dst_leaf])
            continue
        key = (id(edge.src_leaf), id(edge.dst_leaf))
        if key in constrained:
            continue
        constrained.add(key)
        successors[id(edge.src_leaf)].append(edge.dst_leaf)
        indegree[id(edge.dst_leaf)] += 1
    ready = [leaf for leaf in leaves if indegree[id(leaf)] == 0]
    done: Set[int] = set()
    while ready:
        leaf = ready.pop()
        done.add(id(leaf))
        for child in successors[id(leaf)]:
            indegree[id(child)] -= 1
            if indegree[id(child)] == 0:
                ready.append(child)
    stuck = [leaf for leaf in leaves if id(leaf) not in done]
    if stuck:
        cycles.extend(FlatNetwork._find_cycles(stuck, successors))
    return cycles


def _fill_from_plan(ctx: CheckContext, plan: ExecutionPlan) -> None:
    ctx.plan = plan
    ctx.leaves = [node.leaf for node in plan.nodes]
    ctx.edges = [
        edge.resolved for edge in plan.edges if not edge.is_observer
    ]
    ctx.observer_edges = [
        edge.resolved for edge in plan.edges if edge.is_observer
    ]
    ctx.cycles = _cycles_from_edges(ctx.leaves, ctx.edges)
    ctx.unconnected_inputs = None  # a plan records no connectivity gaps
    ctx.thread_name = {
        id(node.leaf): f"thread{node.thread_index}" for node in plan.nodes
    }


def build_context(target: Any, config: CheckConfig) -> CheckContext:
    """Normalise any supported target into a :class:`CheckContext`."""
    from repro.core.model import HybridModel  # local: avoid import cycle

    if isinstance(target, HybridModel):
        ctx = CheckContext(config, target.name)
        ctx.model = target
        ctx.machines = list(_collect_machines(target))
        for probe in target.probes.values():
            source = getattr(probe, "source", None)
            if isinstance(source, DPort):
                ctx.probed_ids.add(id(source))
        # flattening assumes streamers never contain capsules (W6); the
        # model rule reports the violation, the graph analyses skip
        contains_capsule = any(
            isinstance(sub, Capsule)
            for top in target.streamers
            for streamer in _walk_streamers(top)
            for sub in streamer.subs.values()
        )
        if target.streamers and not contains_capsule:
            try:
                network = FlatNetwork(
                    target.streamers, target.flows, strict=False,
                )
            except NetworkError as exc:
                ctx.network_error = exc
            else:
                _fill_from_network(ctx, network)
                ctx.thread_name = _thread_names_from_model(target)
        return ctx

    if isinstance(target, Streamer):
        ctx = CheckContext(config, target.path())
        if hasattr(target, "finalise") and not getattr(
            target, "_finalised", True
        ):
            target.finalise()
        try:
            network = FlatNetwork([target], strict=False)
        except NetworkError as exc:
            ctx.network_error = exc
        else:
            _fill_from_network(ctx, network)
            ctx.thread_name = {id(leaf): "" for leaf in ctx.leaves}
        return ctx

    if isinstance(target, ExecutionPlan):
        ctx = CheckContext(config, f"plan:{target.fingerprint()[:12]}")
        _fill_from_plan(ctx, target)
        return ctx

    if isinstance(target, StateMachine):
        ctx = CheckContext(config, target.name)
        ctx.machines = [(target.name, target, None)]
        return ctx

    raise CheckTargetError(
        f"cannot check {type(target).__name__}: expected HybridModel, "
        "Diagram/Streamer, ExecutionPlan or StateMachine"
    )


def _walk_streamers(streamer: Streamer):
    yield streamer
    for sub in streamer.subs.values():
        if isinstance(sub, Streamer):
            yield from _walk_streamers(sub)
