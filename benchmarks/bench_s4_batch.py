"""Experiment S4 — batched multi-instance simulation.

Parameter sweeps and Monte-Carlo studies re-run the same model N times.
The batch backend compiles the ExecutionPlan into one vectorised NumPy
program over an ``(N, n_state)`` state matrix, so the N instances cost
one Python interpreter pass per minor step instead of N.  This bench
measures the throughput ratio against the honest baseline — N sequential
interpreter runs of the identical fixed-step loop — and re-asserts the
bitwise equivalence that makes the comparison fair.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import pid_plant_diagram
from repro.core.batch import BatchSimulator, simulate_sequential

N = 100
T_END = 1.0
H = 2e-3
RECORDS = ["plant.out"]


def _sweeps(n=N):
    return {"pid.kp": np.linspace(0.5, 6.0, n)}


def test_s4_batch_run_cost(benchmark):
    sim = BatchSimulator(
        pid_plant_diagram(0), N, solver="rk4", h=H,
        records=RECORDS, sweeps=_sweeps(),
    )
    result = benchmark(lambda: sim.run(T_END, record_every=50))
    assert result.final_states.shape[0] == N


def test_s4_batch_vs_sequential_speedup(benchmark, report, bench_json):
    """The acceptance bar: >= 5x throughput at N=100 instances."""
    sim = BatchSimulator(
        pid_plant_diagram(0), N, solver="rk4", h=H,
        records=RECORDS, sweeps=_sweeps(),
    )
    benchmark(lambda: sim.run(T_END, record_every=50))

    start = time.perf_counter()
    batch = sim.run(T_END, record_every=50)
    batch_wall = time.perf_counter() - start

    start = time.perf_counter()
    reference = simulate_sequential(
        lambda: pid_plant_diagram(0), N, T_END, solver="rk4", h=H,
        records=RECORDS, sweeps=_sweeps(), record_every=50,
    )
    sequential_wall = time.perf_counter() - start

    assert np.array_equal(
        batch.series["plant.out"], reference.series["plant.out"]
    )
    assert np.array_equal(batch.final_states, reference.final_states)

    speedup = sequential_wall / batch_wall
    report(f"S4: batched vs {N} sequential runs (PID loop, rk4, "
           f"{T_END} sim-s, h={H})", [
        f"sequential (N python loops): {sequential_wall * 1e3:8.1f} ms",
        f"batched (one (N,S) matrix) : {batch_wall * 1e3:8.1f} ms",
        f"throughput ratio           : {speedup:8.1f}x",
        "trajectories               : bitwise identical",
    ])
    assert speedup >= 5.0, (
        f"batch backend only {speedup:.1f}x faster than {N} "
        "sequential runs; acceptance bar is 5x"
    )
    bench_json("s4", {
        "n_instances": N,
        "sequential_wall_ms": sequential_wall * 1e3,
        "batch_wall_ms": batch_wall * 1e3,
        "speedup": speedup,
        "bitwise_identical": True,
    })


@pytest.mark.parametrize("n", [10, 100, 1000])
def test_s4_scaling_in_instances(n, report):
    """Batch cost grows sub-linearly in N (vector width is nearly free)."""
    sim = BatchSimulator(
        pid_plant_diagram(0), n, solver="rk4", h=H,
        records=RECORDS, sweeps=_sweeps(n),
    )
    sim.run(0.05, record_every=50)  # warm the compiled program
    start = time.perf_counter()
    sim.run(T_END, record_every=50)
    wall = time.perf_counter() - start
    report(f"S4: batch scaling N={n}", [
        f"wall: {wall * 1e3:8.1f} ms "
        f"({wall / n * 1e6:8.1f} us per instance)",
    ])
