"""Solver registry: name -> constructor.

The registry backs the ``solver`` stereotype's string-based configuration
(models and generated code refer to solvers by name) and the Strategy-
pattern hot swap measured in bench F1.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.solvers.adaptive import DormandPrince45
from repro.solvers.base import SolverBase, SolverError
from repro.solvers.fixed import RK4, Euler, Heun
from repro.solvers.implicit import BackwardEuler, Trapezoidal

_REGISTRY: Dict[str, Callable[..., SolverBase]] = {
    "euler": Euler,
    "heun": Heun,
    "rk4": RK4,
    "rk45": DormandPrince45,
    "backward_euler": BackwardEuler,
    "trapezoidal": Trapezoidal,
}


def available_solvers() -> Tuple[str, ...]:
    """Names of all registered solvers, sorted."""
    return tuple(sorted(_REGISTRY))


def make_solver(name: str, **kwargs: Any) -> SolverBase:
    """Instantiate a solver by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from None
    return factory(**kwargs)


def register_solver(name: str, factory: Callable[..., SolverBase]) -> None:
    """Register a custom solver strategy (extension point)."""
    if name in _REGISTRY:
        raise SolverError(f"solver {name!r} already registered")
    _REGISTRY[name] = factory


def solver_key(solver: Any, **solver_kwargs: Any) -> str:
    """A stable identity string for a solver specification.

    Used wherever a solver choice enters a content-addressed key (the
    plan cache folds it into :meth:`repro.core.plan.ExecutionPlan.
    fingerprint` extras): registry names pass through unchanged, solver
    *instances* reduce to their registered ``name``, and keyword
    configuration is appended in sorted order so ``solver_key("rk45",
    rtol=1e-6)`` and ``solver_key("rk45", rtol=1e-9)`` key distinct
    compiled artefacts.
    """
    if isinstance(solver, SolverBase):
        base = solver.name
    else:
        base = str(solver)
    if not solver_kwargs:
        return base
    args = ",".join(
        f"{key}={solver_kwargs[key]!r}" for key in sorted(solver_kwargs)
    )
    return f"{base}({args})"
