"""Schedulability lints (SCHED001-SCHED004)."""

from repro.check import CheckConfig, run_checks

from tests.check.builders import (
    blocking_inversion_model,
    feedback_model,
    infeasible_model,
    overutilised_model,
    shared_state_model,
)


class TestSCHED001:
    def test_infeasible_thread_rate_is_an_error(self):
        result = run_checks(infeasible_model())
        findings = result.by_code("SCHED001")
        assert findings
        assert findings[0].severity == "error"
        assert findings[0].details["sync_interval"] == 0.01

    def test_overutilisation_is_an_error(self):
        result = run_checks(overutilised_model())
        findings = [
            d for d in result.by_code("SCHED001")
            if d.severity == "error"
        ]
        assert findings
        assert findings[0].details["utilisation"] > 1.0
        assert "utilisation" in findings[0].message

    def test_default_rates_feasible(self):
        result = run_checks(feedback_model())
        assert not result.by_code("SCHED001")

    def test_sync_interval_knob_changes_the_verdict(self):
        # the model that is clean at the default interval becomes
        # infeasible when the deadline shrinks to 100ns
        result = run_checks(
            feedback_model(),
            config=CheckConfig(sync_interval=1e-7),
        )
        errors = [
            d for d in result.by_code("SCHED001")
            if d.severity == "error"
        ]
        assert errors

    def test_plan_target_skipped(self):
        from repro.check.registry import CheckConfig as Cfg
        from repro.core.network import FlatNetwork
        from repro.core.plan import ExecutionPlan

        model = feedback_model()
        network = FlatNetwork(model.streamers, model.flows)
        plan = ExecutionPlan.compile(network)
        result = run_checks(plan, config=Cfg(select={"SCHED001"}))
        assert not result.diagnostics


class TestSCHED002:
    def test_blocking_only_failure_fires(self):
        """The ISSUE's acceptance case: plain RTA accepts the minor-step
        task set, the blocking-aware analysis rejects it."""
        result = run_checks(blocking_inversion_model())
        findings = result.by_code("SCHED002")
        assert findings
        finding = findings[0]
        assert finding.severity == "warning"
        assert finding.details["blocking_only"] is True
        assert "blocking alone" in finding.message
        assert finding.details["failing"]
        # the per-task interference breakdown rides along
        for entry in finding.details["tasks"].values():
            assert {"response_time", "deadline", "blocking",
                    "interference"} <= set(entry)
            assert entry["blocking"] > 0.0

    def test_unshared_twin_is_clean(self):
        result = run_checks(feedback_model())
        assert not result.by_code("SCHED002")

    def test_same_rate_sharing_is_clean(self):
        # equal periods: blocking provably cannot break a feasible set
        result = run_checks(shared_state_model(share=True))
        assert not result.by_code("SCHED002")

    def test_infeasible_model_left_to_sched001(self):
        result = run_checks(infeasible_model())
        assert not result.by_code("SCHED002")


class TestSCHED003:
    def test_cross_rate_sharing_is_a_hazard(self):
        result = run_checks(blocking_inversion_model())
        findings = result.by_code("SCHED003")
        assert findings
        details = findings[0].details
        assert details["slow_thread"] == "slow"
        assert details["fast_thread"] == "fast"
        assert details["sites"]

    def test_same_rate_sharing_is_not_inversion(self):
        # THR002 still flags the race, but with equal minor steps there
        # is no priority direction to invert
        result = run_checks(shared_state_model(share=True))
        assert result.by_code("THR002")
        assert not result.by_code("SCHED003")

    def test_unshared_model_clean(self):
        result = run_checks(shared_state_model(share=False))
        assert not result.by_code("SCHED003")


class TestSCHED004:
    def test_tight_margin_fires(self):
        # the feedback model's minimum feasible interval is ~1e-4; a
        # margin of 1.0 declares anything feasible "too close"
        result = run_checks(
            feedback_model(),
            config=CheckConfig(sched_sensitivity_margin=1.0),
        )
        findings = result.by_code("SCHED004")
        assert findings
        details = findings[0].details
        assert details["min_feasible_sync_interval"] is not None
        assert 0.0 <= details["headroom"] < 1.0

    def test_default_margin_clean(self):
        result = run_checks(feedback_model())
        assert not result.by_code("SCHED004")

    def test_infeasible_model_left_to_sched001(self):
        result = run_checks(infeasible_model())
        assert not result.by_code("SCHED004")


class TestSelection:
    def test_prefix_select_enables_the_family(self):
        result = run_checks(
            blocking_inversion_model(),
            config=CheckConfig(select={"SCHED"}),
        )
        codes = {d.code for d in result.diagnostics}
        assert {"SCHED002", "SCHED003"} <= codes
        assert all(code.startswith("SCHED") for code in codes)

    def test_exact_select_still_works(self):
        result = run_checks(
            blocking_inversion_model(),
            config=CheckConfig(select={"SCHED003"}),
        )
        codes = {d.code for d in result.diagnostics}
        assert codes == {"SCHED003"}
