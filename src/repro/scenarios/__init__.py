"""Scenario synthesis and coverage-guided campaigns.

The standing correctness rig for the toolchain: seeded scenario
generators (:mod:`repro.scenarios.synth`), defect builders per check
rule (:mod:`repro.scenarios.defects`), a campaign-wide coverage ledger
(:mod:`repro.scenarios.coverage`) and the differential campaign driver
(:mod:`repro.scenarios.campaign`), with a CLI at
``python -m repro.scenarios`` (run / replay / report).
"""

from repro.scenarios.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignRunner,
    ScenarioOutcome,
    execute_scenario,
    replay,
)
from repro.scenarios.coverage import OPCODES, CampaignCoverage
from repro.scenarios.defects import DEFECTS
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.synth import (
    synth_control_model,
    synth_dag,
    synth_feedback,
    synth_multirate,
    synth_plant,
)

__all__ = [
    "CampaignConfig",
    "CampaignCoverage",
    "CampaignReport",
    "CampaignRunner",
    "DEFECTS",
    "OPCODES",
    "ScenarioOutcome",
    "ScenarioSpec",
    "execute_scenario",
    "replay",
    "synth_control_model",
    "synth_dag",
    "synth_feedback",
    "synth_multirate",
    "synth_plant",
]
