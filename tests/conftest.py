"""Shared test fixtures and reference streamers/capsules.

The leaf streamers here are deliberately tiny analytic systems with known
closed-form solutions, so tests can assert against exact mathematics
rather than golden files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.flowtype import SCALAR
from repro.core.streamer import Streamer
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.statemachine import StateMachine


class ConstLeaf(Streamer):
    """Emits a constant on DPort ``y``."""

    def __init__(self, name: str, value: float = 1.0) -> None:
        super().__init__(name)
        self.add_out("y", SCALAR)
        self.params["value"] = float(value)

    def compute_outputs(self, t, state):
        self.out_scalar("y", self.params["value"])


class GainLeaf(Streamer):
    """``y = k * u`` (direct feedthrough)."""

    direct_feedthrough = True

    def __init__(self, name: str, k: float = 2.0) -> None:
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("y", SCALAR)
        self.params["k"] = float(k)

    def compute_outputs(self, t, state):
        self.out_scalar("y", self.params["k"] * self.in_scalar("u"))


class IntegratorLeaf(Streamer):
    """``dy/dt = u``; output ``y``."""

    state_size = 1

    def __init__(self, name: str, y0: float = 0.0) -> None:
        super().__init__(name)
        self.add_in("u", SCALAR)
        self.add_out("y", SCALAR)
        self.params["y0"] = float(y0)

    def initial_state(self):
        return np.array([self.params["y0"]])

    def derivatives(self, t, state):
        return np.array([self.in_scalar("u")])

    def compute_outputs(self, t, state):
        self.out_scalar("y", state[0])


class DecayLeaf(Streamer):
    """``dy/dt = -lambda * y`` with ``y(0) = y0`` — exact: y0*exp(-l t)."""

    state_size = 1

    def __init__(self, name: str, lam: float = 1.0, y0: float = 1.0) -> None:
        super().__init__(name)
        self.add_out("y", SCALAR)
        self.params.update(lam=float(lam), y0=float(y0))

    def initial_state(self):
        return np.array([self.params["y0"]])

    def derivatives(self, t, state):
        return np.array([-self.params["lam"] * state[0]])

    def compute_outputs(self, t, state):
        self.out_scalar("y", state[0])


#: a simple command protocol reused across capsule tests
PING = Protocol.define("Ping", outgoing=("ping",), incoming=("pong",))


class Echo(Capsule):
    """Replies ``pong`` to every ``ping``."""

    def build_structure(self):
        self.create_port("p", PING.conjugate())

    def build_behaviour(self):
        sm = StateMachine("echo")
        sm.add_state("idle")
        sm.initial("idle")
        sm.add_transition(
            "idle", trigger=("p", "ping"), internal=True,
            action=lambda c, m: c.send("p", "pong"),
        )
        return sm


class Pinger(Capsule):
    """Sends ``ping`` on start, counts ``pong`` replies."""

    def __init__(self, instance_name: str = "pinger", pings: int = 1) -> None:
        self.pongs = 0
        self._pings = pings
        super().__init__(instance_name)

    def build_structure(self):
        self.create_port("p", PING.base())

    def build_behaviour(self):
        def on_pong(capsule, message):
            capsule.pongs += 1

        sm = StateMachine("pinger")
        sm.add_state("idle")
        sm.initial("idle")
        sm.add_transition(
            "idle", trigger=("p", "pong"), internal=True, action=on_pong
        )
        return sm

    def on_start(self):
        for __ in range(self._pings):
            self.send("p", "ping")


@pytest.fixture
def rts():
    from repro.umlrt.runtime import RTSystem

    return RTSystem("test")


@pytest.fixture
def model():
    from repro.core.model import HybridModel

    return HybridModel("test")
