"""The ``Time`` stereotype: a continuous, monotone simulation clock.

The paper notes that "timing in UML-RT is unpredictable" — timeouts are
ordinary queued messages, so their observation time jitters with queue
load.  The extension therefore introduces ``Time``: a continuous variable
shared by all streamer threads and readable by capsules, advancing
monotonically (rule W11) with the integration.

:class:`ContinuousTime` is that variable.  It also hands out *dense* time
readings within a major step (solvers pass the minor-step time through),
supports rate-scaled simulation (``scale`` ≠ 1 maps logical seconds to
model seconds), and records every advancement so W11 is machine-checkable.
"""

from __future__ import annotations

from typing import List, Tuple


class TimeError(Exception):
    """Raised on attempts to move time backwards (W11 violation)."""


class ContinuousTime:
    """A monotone continuous clock.

    Parameters
    ----------
    t0:
        Initial time.
    scale:
        Model-time units per logical unit (pure relabelling; the hybrid
        scheduler always advances in logical units).
    """

    def __init__(self, t0: float = 0.0, scale: float = 1.0) -> None:
        if scale <= 0:
            raise TimeError(f"non-positive time scale: {scale}")
        self._t = float(t0)
        self._t0 = float(t0)
        self.scale = scale
        self.advancements = 0
        self._audit: List[Tuple[float, float]] = []
        self.audit_enabled = False

    @property
    def now(self) -> float:
        """Current continuous time (model units)."""
        return self._t * self.scale

    @property
    def raw(self) -> float:
        """Current logical time (unscaled)."""
        return self._t

    @property
    def elapsed(self) -> float:
        return (self._t - self._t0) * self.scale

    def advance_to(self, t: float) -> None:
        """Move the clock forward to logical time ``t`` (W11: never back)."""
        if t < self._t:
            raise TimeError(
                f"Time is monotone (W11): cannot go from {self._t} back "
                f"to {t}"
            )
        if self.audit_enabled:
            self._audit.append((self._t, t))
        self._t = float(t)
        self.advancements += 1

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise TimeError(f"negative time advance: {dt}")
        self.advance_to(self._t + dt)

    def audit_trail(self) -> List[Tuple[float, float]]:
        """Recorded ``(from, to)`` advancements (audit mode only)."""
        return list(self._audit)

    def is_monotone(self) -> bool:
        """Check W11 over the audit trail."""
        return all(b >= a for a, b in self._audit) and all(
            b1 <= a2 for (__, b1), (a2, __) in zip(self._audit, self._audit[1:])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContinuousTime(t={self.now:.6g})"
