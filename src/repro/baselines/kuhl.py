"""Kühl-style translation: dataflow diagram → plain UML-RT capsules.

Following Kühl/Reichmann/Spitzer/Müller-Glaser (RSP'01), the continuous
diagram is translated mechanically into the discrete language:

* every leaf block becomes **one capsule** (one class per block type);
* every dataflow edge becomes **one protocol** and **one connector**
  between dedicated data ports;
* a **driver capsule** owns the integration clock: a periodic timer whose
  tick it forwards to every block capsule (one tick port per block), in
  dataflow order;
* on its tick, a block capsule computes outputs from the last received
  input messages, advances its continuous state by explicit Euler with
  the tick period, and sends one data message per outgoing edge.

This preserves the diagram's input/output behaviour (to Euler accuracy)
but pays the paper's predicted price: the model explodes into capsules,
protocols, ports and connectors, every integration minor step costs
``blocks + edges (+ ticks)`` queued messages, and the translation *loses
information* (flow types, relay points, hierarchy, solver choice) — all
quantified by :func:`repro.baselines.metrics.information_loss` and
benchmark C1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.network import FlatNetwork
from repro.core.streamer import Streamer
from repro.dataflow.diagram import Diagram
from repro.solvers.history import Trajectory
from repro.umlrt.capsule import Capsule
from repro.umlrt.protocol import Protocol
from repro.umlrt.runtime import RTSystem
from repro.umlrt.signal import Message, Priority
from repro.umlrt.statemachine import StateMachine

#: every translated edge gets its own single-signal protocol
def _edge_protocol(index: int) -> Protocol:
    return Protocol.define(f"Data{index}", outgoing=("data",), incoming=())


_TICK_PROTOCOL = Protocol.define("Tick", outgoing=("tick",), incoming=())


class _BlockCapsule(Capsule):
    """One capsule wrapping one translated leaf block."""

    def __init__(
        self,
        instance_name: str,
        block: Streamer,
        h: float,
    ) -> None:
        self._block = block
        self._h = h
        self._state = np.asarray(block.initial_state(), dtype=float)
        self._in_edges: List[Tuple[str, str]] = []   # (port name, dport)
        self._out_edges: List[Tuple[str, str]] = []  # (port name, dport)
        self._t = 0.0
        super().__init__(instance_name)

    def build_structure(self) -> None:
        self.create_port("tick", _TICK_PROTOCOL.conjugate())

    def add_in_edge(self, index: int, dport_name: str, protocol: Protocol):
        name = f"in{index}"
        self.create_port(name, protocol.conjugate())
        self._in_edges.append((name, dport_name))
        return self.port(name)

    def add_out_edge(self, index: int, dport_name: str, protocol: Protocol):
        name = f"out{index}"
        self.create_port(name, protocol.base())
        self._out_edges.append((name, dport_name))
        return self.port(name)

    def build_behaviour(self) -> StateMachine:
        sm = StateMachine(f"{self.instance_name}.sm")
        sm.add_state("running")
        sm.initial("running")
        sm.add_transition(
            "running", trigger=("tick", "tick"), internal=True,
            action=lambda capsule, msg: capsule._on_tick(),
        )
        for index, (port_name, dport_name) in enumerate(self._in_edges):
            sm.add_transition(
                "running", trigger=(port_name, "data"), internal=True,
                action=self._make_store(dport_name),
            )
        return sm

    @staticmethod
    def _make_store(dport_name: str):
        def store(capsule: "_BlockCapsule", message: Message) -> None:
            capsule._block.dport(dport_name)._store(float(message.data))

        return store

    def _on_tick(self) -> None:
        block = self._block
        block.compute_outputs(self._t, self._state)
        if self._state.size:
            deriv = np.asarray(
                block.derivatives(self._t, self._state), dtype=float
            )
            self._state = self._state + self._h * deriv
        block.on_sync(self._t)
        self._t += self._h
        for port_name, dport_name in self._out_edges:
            # HIGH priority so fresh data overtakes the remaining ticks of
            # this round; otherwise every edge gains a spurious one-tick
            # delay on top of the Euler error
            self.send(
                port_name, "data",
                block.dport(dport_name).read_scalar(),
                priority=Priority.HIGH,
            )


class _DriverCapsule(Capsule):
    """Owns the integration clock; forwards ticks in dataflow order."""

    def __init__(self, instance_name: str, h: float, order: int) -> None:
        self._h = h
        self._n = order
        super().__init__(instance_name)

    def build_structure(self) -> None:
        for index in range(self._n):
            self.create_port(f"tick{index}", _TICK_PROTOCOL.base())

    def build_behaviour(self) -> StateMachine:
        sm = StateMachine("driver")
        sm.add_state("ticking")
        sm.initial("ticking")
        sm.add_transition(
            "ticking", trigger=("timer", "timeout"), internal=True,
            action=lambda capsule, msg: capsule._broadcast(),
        )
        return sm

    def on_start(self) -> None:
        self.inform_every(self._h)

    def _broadcast(self) -> None:
        for index in range(self._n):
            self.send(f"tick{index}", "tick")


class KuhlTranslation:
    """The translated system: build, run and measure.

    Parameters
    ----------
    diagram:
        The source dataflow diagram (a composite streamer).
    h:
        Integration tick period (plays the role of the streamer thread's
        minor step; translation forces explicit Euler).
    probe:
        Optional ``"block.port"`` path whose value is recorded each tick.
    """

    def __init__(
        self, diagram: Diagram, h: float, probe: Optional[str] = None
    ) -> None:
        diagram.finalise()
        self.diagram = diagram
        self.h = h
        self.rts = RTSystem(f"kuhl[{diagram.name}]")
        self.network = FlatNetwork([diagram])
        self.protocols: List[Protocol] = []
        self.connectors = 0
        self.trajectory = Trajectory()
        self._probe_path = probe

        order = self.network.order
        self.capsules: Dict[int, _BlockCapsule] = {}
        driver = _DriverCapsule("driver", h, len(order))
        self.driver = self.rts.add_top(driver)
        for index, leaf in enumerate(order):
            capsule = _BlockCapsule(f"c_{leaf.name}", leaf, h)
            self.rts.add_top(capsule)
            self.capsules[id(leaf)] = capsule
            driver.connect(
                driver.port(f"tick{index}"), capsule.port("tick")
            )
            self.connectors += 1
        for index, edge in enumerate(self.network.edges):
            protocol = _edge_protocol(index)
            self.protocols.append(protocol)
            src_capsule = self.capsules[id(edge.src_leaf)]
            dst_capsule = self.capsules[id(edge.dst_leaf)]
            out_port = src_capsule.add_out_edge(
                index, edge.src_port.name, protocol
            )
            in_port = dst_capsule.add_in_edge(
                index, edge.dst_port.name, protocol
            )
            src_capsule.connect(out_port, in_port)
            self.connectors += 1
        # behaviours were built before the data ports existed; rebuild
        for capsule in self.capsules.values():
            capsule.behaviour = capsule.build_behaviour()
        self._probe_block: Optional[Streamer] = None
        self._probe_port: Optional[str] = None
        if probe is not None:
            block_path, __, port_name = probe.rpartition(".")
            self._probe_block = diagram.port_at(probe).owner
            self._probe_port = port_name

    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Simulate the translated system to logical time ``until``."""
        self.rts.start()
        t = 0.0
        # tolerance: the periodic tick timer accumulates float error
        eps = 1e-9 * self.h
        while t < until - 1e-12:
            t = min(t + self.h, until)
            self.rts.advance_to(t + eps)
            if self._probe_block is not None:
                self.trajectory.append(
                    t,
                    self._probe_block.dport(self._probe_port).read_scalar(),
                )

    # ------------------------------------------------------------------
    def size_metrics(self) -> Dict[str, int]:
        """Counts the paper predicts will explode ("lots of objects and
        classes")."""
        # a real generator emits one capsule class per block type + driver
        block_classes = len({
            type(leaf).__name__ for leaf in self.network.order
        })
        ports = sum(
            len(c.ports) for c in list(self.capsules.values())
            + [self.driver]
        )
        return {
            "blocks": len(self.network.order),
            "capsule_instances": len(self.capsules) + 1,
            "capsule_classes": block_classes + 1,
            "protocols": len(self.protocols) + 2,  # + Tick + Timing
            "ports": ports,
            "connectors": self.connectors,
        }

    def message_metrics(self, simulated: float) -> Dict[str, float]:
        """Queued-message traffic per simulated second."""
        dispatched = self.rts.total_dispatched
        return {
            "messages_total": dispatched,
            "messages_per_second": dispatched / simulated,
            "timeouts": self.rts.timing.timeouts_delivered,
        }
