"""Analysis utilities: control metrics, message traces, schedulability.

* :mod:`repro.analysis.metrics` — step-response and trajectory-comparison
  metrics used throughout EXPERIMENTS.md;
* :mod:`repro.analysis.trace` — message-dispatch traces of the discrete
  world (who received what, when, with what latency from send);
* :mod:`repro.analysis.schedulability` — classic fixed-priority real-time
  analysis (Liu–Layland utilisation bound and exact response-time
  analysis) applied to the thread sets the paper's architecture produces.
"""

from repro.analysis.metrics import (
    StepMetrics,
    compare_trajectories,
    iae,
    ise,
    itae,
    percentiles,
    step_metrics,
)
from repro.analysis.coverage import (
    CoverageReport,
    coverage_of,
    render_coverage,
)
from repro.analysis.experiments import (
    SweepRun,
    best_run,
    grid_points,
    render_sweep,
    sweep,
)
from repro.analysis.trace import DispatchRecord, MessageTrace
from repro.analysis.schedulability import (
    Task,
    TaskSet,
    liu_layland_bound,
    response_time_analysis,
    taskset_from_model,
)

__all__ = [
    "CoverageReport",
    "DispatchRecord",
    "MessageTrace",
    "coverage_of",
    "render_coverage",
    "StepMetrics",
    "SweepRun",
    "Task",
    "TaskSet",
    "best_run",
    "grid_points",
    "render_sweep",
    "sweep",
    "compare_trajectories",
    "iae",
    "ise",
    "itae",
    "liu_layland_bound",
    "percentiles",
    "response_time_analysis",
    "step_metrics",
    "taskset_from_model",
]
