"""Multi-rate streamer threads, solver strategies and schedulability.

"In the model, we can use any number of streamers, which are assigned to
one or several threads during implementation" (paper §2).  This example
exercises exactly that freedom:

* a *fast* electrical subsystem (motor current loop, time constant 2 ms)
  runs on its own thread with a 0.2 ms RK4 step;
* a *slow* thermal subsystem (time constant 30 s) runs on a second
  thread with a 20 ms backward-Euler step (it is stiff relative to the
  fast world's rates);
* the flows crossing the two threads are sampled at sync points only —
  the deliberate design decision of the paper's architecture;
* the resulting thread set is checked for schedulability with
  rate-monotonic analysis, and the same model is run once more on real
  OS threads to show the mapping is direct.

Run:  python examples/multirate_threads.py
"""

import time as wallclock

import numpy as np

from repro import HybridModel, Streamer
from repro.analysis import (
    liu_layland_bound,
    response_time_analysis,
    taskset_from_model,
)
from repro.core.flowtype import SCALAR


class MotorElectrical(Streamer):
    """di/dt = (V - R i - Ke w) / L   — fast dynamics (L/R = 2 ms)."""

    state_size = 1

    def __init__(self, name: str = "electrical") -> None:
        super().__init__(name)
        self.add_in("voltage", SCALAR)
        self.add_out("current", SCALAR)
        self.params.update(R=1.0, L=2e-3, Ke=0.01)

    def derivatives(self, t, state):
        p = self.params
        v = self.in_scalar("voltage")
        return np.array([(v - p["R"] * state[0]) / p["L"]])

    def compute_outputs(self, t, state):
        self.out_scalar("current", state[0])


class VoltageSource(Streamer):
    """A 50 Hz drive voltage."""

    def __init__(self, name: str = "drive") -> None:
        super().__init__(name)
        self.add_out("voltage", SCALAR)

    def compute_outputs(self, t, state):
        self.out_scalar("voltage", 12.0 * (1.0 + 0.2 * np.sin(
            2.0 * np.pi * 50.0 * t
        )))


class MotorThermal(Streamer):
    """dT/dt = (R i^2 - (T - T_amb)/R_th) / C_th — slow and stiff
    relative to the electrical rates."""

    state_size = 1

    def __init__(self, name: str = "thermal") -> None:
        super().__init__(name)
        self.add_in("current", SCALAR)
        self.add_out("temp", SCALAR)
        self.params.update(R=1.0, R_th=3.0, C_th=10.0, T_amb=25.0)

    def initial_state(self):
        return np.array([25.0])

    def derivatives(self, t, state):
        p = self.params
        i = self.in_scalar("current")
        heating = p["R"] * i * i
        cooling = (state[0] - p["T_amb"]) / p["R_th"]
        return np.array([(heating - cooling) / p["C_th"]])

    def compute_outputs(self, t, state):
        self.out_scalar("temp", state[0])


def build_model(real_threads: bool = False) -> HybridModel:
    model = HybridModel("motor")
    fast = model.create_thread("fast", solver="rk4", h=2e-4)
    slow = model.create_thread("slow", solver="backward_euler", h=2e-2)
    drive = model.add_streamer(VoltageSource("drive"), fast)
    electrical = model.add_streamer(MotorElectrical("electrical"), fast)
    thermal = model.add_streamer(MotorThermal("thermal"), slow)
    model.add_flow(drive.dport("voltage"), electrical.dport("voltage"))
    # this flow crosses threads: sampled only at sync points
    model.add_flow(electrical.dport("current"), thermal.dport("current"))
    model.add_probe("current", electrical.dport("current"))
    model.add_probe("temp", thermal.dport("temp"))
    return model


def main() -> None:
    model = build_model()
    t0 = wallclock.perf_counter()
    model.run(until=5.0, sync_interval=0.02)
    cooperative_wall = wallclock.perf_counter() - t0

    current = model.probe("current").component(0)
    temp = model.probe("temp").component(0)
    print("multi-rate motor model, 5 s simulated")
    # probes sample at sync points (20 ms), which aliases the 50 Hz
    # ripple onto a constant phase -- the mean sits near, not at, 12 A
    print(f"  current mean (t>1s): "
          f"{current[len(current) // 5:].mean():6.3f} A (~12 A nominal)")
    print(f"  winding temp rise  : {temp[-1] - 25.0:6.2f} K")
    print(f"  fast thread minor steps: {model.threads[1].minor_steps}")
    print(f"  slow thread minor steps: {model.threads[2].minor_steps}")
    assert 10.0 < current[len(current) // 5:].mean() < 14.0
    assert temp[-1] > 25.5, "no thermal response"

    # ------------------------------------------------------------------
    # schedulability of the thread set
    # ------------------------------------------------------------------
    taskset = taskset_from_model(model, sync_interval=0.02)
    print("\nrate-monotonic analysis of the implementation threads:")
    print(f"  utilisation: {taskset.utilisation:.3f} "
          f"(Liu-Layland bound for {len(taskset.tasks)} tasks: "
          f"{liu_layland_bound(len(taskset.tasks)):.3f})")
    for name, result in response_time_analysis(taskset).items():
        verdict = "ok" if result.schedulable else "MISS"
        print(f"  {name:<24} R={result.response_time:.4f} "
              f"D={result.deadline:.4f}  {verdict}")

    # ------------------------------------------------------------------
    # the same model on real OS threads
    # ------------------------------------------------------------------
    real = build_model()
    t0 = wallclock.perf_counter()
    real.run(until=5.0, sync_interval=0.02, real_threads=True)
    real_wall = wallclock.perf_counter() - t0
    real_temp = real.probe("temp").component(0)
    drift = abs(real_temp[-1] - temp[-1])
    print(f"\nreal-thread backend: temp drift vs cooperative = "
          f"{drift:.2e} K (expect 0: slices are data-disjoint)")
    print(f"  cooperative wall: {cooperative_wall:.2f} s, "
          f"real threads wall: {real_wall:.2f} s")
    assert drift < 1e-9
    print("OK")


if __name__ == "__main__":
    main()
