"""Diagnostic vocabulary, registry plumbing and suppression."""

import pytest

from repro.check import (
    CheckConfig,
    Diagnostic,
    FixIt,
    default_registry,
    run_checks,
)
from repro.check.diagnostics import (
    apply_fixits,
    severity_rank,
    worst_severity,
)
from repro.check.registry import (
    CATEGORIES,
    Rule,
    RuleError,
    RuleRegistry,
    meets_threshold,
)

from tests.check.builders import loop_model, never_read_model


class TestDiagnostic:
    def test_str_rendering(self):
        d = Diagnostic("STR001", "error", "plant.loop", "cycle found")
        assert str(d) == "[STR001/error] plant.loop: cycle found"

    def test_severity_total_order(self):
        assert severity_rank("info") < severity_rank("warning")
        assert severity_rank("warning") < severity_rank("error")
        with pytest.raises(ValueError):
            severity_rank("fatal")

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity(["info", "error", "warning"]) == "error"

    def test_meets_threshold(self):
        assert meets_threshold("error", "warning")
        assert meets_threshold("warning", "warning")
        assert not meets_threshold("info", "warning")

    def test_to_json_includes_details_and_fixit(self):
        d = Diagnostic(
            "SM001", "warning", "m.orphan", "unreachable",
            fixit=FixIt("remove it", lambda: None),
            details={"path": "orphan"},
        )
        out = d.to_json()
        assert out["code"] == "SM001"
        assert out["details"] == {"path": "orphan"}
        assert out["fixit"] == "remove it"

    def test_apply_fixits_counts(self):
        hits = []
        ds = [
            Diagnostic("X1", "warning", "a", "m",
                       fixit=FixIt("f", lambda: hits.append(1))),
            Diagnostic("X2", "warning", "b", "m"),
        ]
        assert apply_fixits(ds) == 1
        assert hits == [1]


class TestRegistry:
    def test_default_registry_covers_every_category(self):
        registry = default_registry()
        assert {r.category for r in registry.rules()} == set(CATEGORIES)

    def test_stable_codes_registered(self):
        codes = set(default_registry().codes())
        for code in (
            "STR001", "STR002", "STR003", "STR004", "STR005",
            "SM001", "SM002", "SM003", "SM004", "SM005",
            "THR001", "THR002", "SCHED001",
            "W1", "W2", "W3", "W4", "W5", "W6", "W7", "W8", "W10", "W12",
        ):
            assert code in codes, code

    def test_duplicate_code_rejected(self):
        registry = RuleRegistry()
        registry.add(Rule("X1", "t", "plan", "warning", "", lambda c: None))
        with pytest.raises(RuleError):
            registry.add(
                Rule("X1", "t", "plan", "warning", "", lambda c: None)
            )

    def test_bad_category_and_severity_rejected(self):
        with pytest.raises(RuleError):
            Rule("X1", "t", "nope", "warning", "", lambda c: None)
        with pytest.raises(RuleError):
            Rule("X1", "t", "plan", "fatal", "", lambda c: None)

    def test_select_disable_categories(self):
        registry = default_registry()
        only = registry.active(CheckConfig(select={"STR001"}))
        assert [r.code for r in only] == ["STR001"]
        without = registry.active(CheckConfig(disable={"STR001"}))
        assert "STR001" not in [r.code for r in without]
        sm_only = registry.active(CheckConfig(categories={"sm"}))
        assert sm_only and all(r.category == "sm" for r in sm_only)


class TestConfig:
    def test_severity_override_applied(self):
        result = run_checks(
            never_read_model(),
            config=CheckConfig(
                select={"STR003"}, severity={"STR003": "error"},
            ),
        )
        assert result.by_code("STR003")
        assert all(d.severity == "error" for d in result.by_code("STR003"))

    def test_unknown_override_severity_rejected(self):
        with pytest.raises(RuleError):
            CheckConfig(severity={"STR003": "fatal"})

    def test_config_suppression_by_code(self):
        cfg = CheckConfig(select={"STR001"}, suppress={"STR001"})
        assert not run_checks(loop_model(), config=cfg).diagnostics

    def test_config_suppression_by_subject_glob(self):
        base = run_checks(
            loop_model(), config=CheckConfig(select={"STR001"})
        )
        subject = base.diagnostics[0].subject
        hit = CheckConfig(
            select={"STR001"}, suppress={f"STR001:{subject}*"},
        )
        miss = CheckConfig(select={"STR001"}, suppress={"STR001:zz*"})
        assert not run_checks(loop_model(), config=hit).diagnostics
        assert run_checks(loop_model(), config=miss).diagnostics

    def test_inline_lint_suppress_on_element(self):
        model = loop_model()
        # the cycle diagnostic is attached to its first member; suppress
        # on both so the test is independent of extraction order
        for streamer in model.streamers:
            streamer.lint_suppress = ("STR001",)
        result = run_checks(model, config=CheckConfig(select={"STR001"}))
        assert not result.diagnostics

    def test_inline_lint_suppress_on_model(self):
        model = loop_model()
        model.lint_suppress = "STR001"
        result = run_checks(model, config=CheckConfig(select={"STR001"}))
        assert not result.diagnostics
