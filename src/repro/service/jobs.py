"""Job specifications, handles and results for the simulation service.

A *job* is one unit of simulation work submitted to the
:class:`~repro.service.engine.JobEngine`: a single hybrid-model run, a
vectorised batch sweep, or a code-generation request.  Specs are plain
descriptions (factories + parameters, no live runtime objects) so they
can be queued, retried, and — when picklable — shipped to a worker
process for isolation.

Execution protocol: the engine calls :meth:`JobSpec.execute` with a
:class:`JobContext`.  Long-running jobs call :meth:`JobContext.checkpoint`
at natural pause points (between batch chunks, between major-step slices);
that is where cancellation and deadlines take effect — cooperatively, so
a worker slot is always released in a well-defined state rather than
killed mid-NumPy-call.  Progress and partial trajectories go out through
:meth:`JobContext.emit` onto the job's telemetry channel.

Failure vocabulary: raise :class:`TransientJobError` for failures worth a
bounded retry-with-backoff (the engine re-runs the spec); any other
exception fails the job permanently.  :class:`ServiceOverloaded` is
raised at *submit* time when the bounded queue sheds load.
"""

from __future__ import annotations

import enum
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Mapping, Optional,
    Sequence,
)

import numpy as np

from repro.core.batch import (
    BatchChunk, BatchResult, BatchSimulator, compile_batch_program,
    merge_chunks,
)
from repro.core.channel import Channel, ChannelPolicy
from repro.core.network import FlatNetwork
from repro.service.telemetry import (
    BACKEND, CHUNK, EventEmitter, PROGRESS, RESUMED, TelemetryEvent,
)
from repro.solvers.registry import solver_key

# NOTE: repro.resilience imports TransientJobError from this module, so
# everything resilience-side is imported lazily inside the execute paths.

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import HybridModel
    from repro.dataflow.diagram import Diagram
    from repro.solvers.history import Trajectory


# ----------------------------------------------------------------------
# errors and states
# ----------------------------------------------------------------------
class JobError(Exception):
    """Base class for job-level failures."""


class TransientJobError(JobError):
    """A failure the engine may retry (with backoff, up to the spec's
    retry budget): resource contention, a flaky external dependency."""


class ServiceOverloaded(JobError):
    """The bounded submission queue is full; the request was shed.

    Deliberate graceful degradation: a loaded service answers "try
    later" in O(1) instead of growing an unbounded backlog that takes
    every request down with it.
    """


class DeadlineInfeasible(ServiceOverloaded):
    """Deadline-aware admission rejected the job at submit time: the
    predicted completion time (EMA cost model inflated by queue
    pressure) already exceeds the job's deadline, so queueing it would
    only burn a worker slot on a guaranteed timeout.  A subclass of
    :class:`ServiceOverloaded` so existing shed-handling callers keep
    working."""


class ChecksFailedError(JobError):
    """The service's lint gate rejected a spec at submission.

    Raised by :meth:`SimulationService.submit` under
    ``check_policy="enforce"`` when static checks find error-severity
    diagnostics in the job's model; :attr:`diagnostics` carries the
    :class:`~repro.check.Diagnostic` records so callers can render or
    machine-process the findings.
    """

    def __init__(self, spec_name: str, diagnostics) -> None:
        self.diagnostics = list(diagnostics)
        lines = "\n".join(str(d) for d in self.diagnostics)
        super().__init__(
            f"job {spec_name!r} rejected by static checks "
            f"({len(self.diagnostics)} error(s)):\n{lines}"
        )


class JobCancelledError(JobError):
    """Raised by :meth:`JobHandle.result` for a cancelled job, and
    inside workers at the checkpoint that observes the cancellation."""


class JobTimeoutError(JobError):
    """Raised by :meth:`JobHandle.result` for a deadline-exceeded job,
    and inside workers at the checkpoint that observes the deadline."""


def _resolve_opt(ctx: "JobContext", opt_level: Optional[int]):
    """The effective :class:`~repro.core.opt.OptConfig` for one job:
    the spec's own ``opt_level`` or, when unset, the service-wide
    ``default_opt_level``."""
    from repro.core.opt import OptConfig

    level = opt_level
    if level is None:
        level = getattr(ctx.service, "default_opt_level", 0) or 0
    return OptConfig.from_level(int(level))


def _record_opt_metrics(ctx: "JobContext", report) -> None:
    """Surface a fresh compile's per-pass rewrite counts as service
    metrics (``opt.blocks_removed`` / ``opt.ops_fused``)."""
    if report is None:
        return
    metrics = getattr(ctx.service, "metrics", None)
    if metrics is None:
        return
    counts = report.counts()
    metrics.counter("opt.blocks_removed").inc(
        int(counts["opt.blocks_removed"])
    )
    metrics.counter("opt.ops_fused").inc(int(counts["opt.ops_fused"]))


def _report_backend(
    ctx: "JobContext",
    requested: str,
    effective: str,
    reason: Optional[str],
) -> None:
    """Surface a job's execution-backend resolution: one BACKEND
    telemetry event always, plus the ``backend.fallback`` counters when
    the effective backend is not the requested one."""
    ctx.emit(
        BACKEND, requested=requested, effective=effective, reason=reason,
    )
    metrics = getattr(ctx.service, "metrics", None)
    if metrics is None:
        return
    metrics.counter(f"backend.used.{effective}").inc()
    if effective != requested:
        metrics.counter("backend.fallback").inc()
        metrics.counter(f"backend.fallback.{requested}").inc()


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


# ----------------------------------------------------------------------
# context and handle
# ----------------------------------------------------------------------
class JobContext:
    """What a running job sees of the service: telemetry, cancellation,
    deadline, and the shared plan cache."""

    def __init__(
        self,
        handle: "JobHandle",
        service: Optional[Any] = None,
        emitter: Optional[EventEmitter] = None,
    ) -> None:
        self.handle = handle
        self.service = service
        self._emitter = emitter

    @property
    def cache(self):
        return getattr(self.service, "cache", None)

    def checkpoint(self) -> None:
        """Honour cancellation and the deadline; no-op otherwise."""
        if self.handle.cancel_requested:
            raise JobCancelledError(f"job {self.handle.id} cancelled")
        deadline_at = self.handle.deadline_at
        if deadline_at is not None and time.monotonic() > deadline_at:
            raise JobTimeoutError(
                f"job {self.handle.id} exceeded its "
                f"{self.handle.spec.deadline:g}s deadline"
            )

    def emit(
        self, kind: str, t: float = float("nan"), **payload: Any
    ) -> None:
        if self._emitter is not None:
            self._emitter.emit(kind, t=t, **payload)


class JobHandle:
    """The caller's view of one submitted job."""

    def __init__(
        self,
        job_id: str,
        spec: "JobSpec",
        channel: Optional[Channel] = None,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.channel = channel if channel is not None else Channel(
            f"job:{job_id}", capacity=1024, policy=ChannelPolicy.OVERWRITE,
        )
        self.state = JobState.PENDING
        self.result_value: Any = None
        self.error: Optional[BaseException] = None
        self.attempts = 0
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._done = threading.Event()
        self._cancel = threading.Event()

    # -- lifecycle (engine side) ---------------------------------------
    @property
    def deadline_at(self) -> Optional[float]:
        if self.spec.deadline is None:
            return None
        return self.submitted_at + self.spec.deadline

    def _finish(
        self,
        state: JobState,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self.state = state
        self.result_value = result
        self.error = error
        self.finished_at = time.monotonic()
        self._done.set()

    # -- caller side ----------------------------------------------------
    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def cancel(self) -> bool:
        """Request cancellation; True unless the job already finished.

        A pending job is dropped when it reaches a worker; a running job
        stops at its next checkpoint.  Either way the worker slot is
        released and the handle reaches ``CANCELLED``.
        """
        if self.state.terminal:
            return False
        self._cancel.set()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The job's result; raises the matching error for non-DONE ends."""
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"timed out waiting for job {self.id} "
                f"({self.state.value})"
            )
        if self.state is JobState.DONE:
            return self.result_value
        if self.state is JobState.CANCELLED:
            raise JobCancelledError(f"job {self.id} was cancelled")
        if self.state is JobState.TIMEOUT:
            raise JobTimeoutError(
                f"job {self.id} exceeded its deadline"
            )
        error = self.error
        if error is not None:
            raise error
        raise JobError(f"job {self.id} failed in state {self.state.value}")

    def stream(self) -> Iterator[TelemetryEvent]:
        """Yield telemetry events until the job's channel closes.

        Safe to call before, during or after execution: the channel is
        closed by the engine when the job reaches a terminal state, so
        the iterator always terminates after draining what was kept
        (under consumer lag the OVERWRITE policy drops oldest events).
        """
        return iter(self.channel)

    @property
    def wall_time(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobHandle({self.id}, {self.spec.kind}, "
            f"{self.state.value})"
        )


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass
class JobSpec:
    """Common submission parameters; subclasses define the work."""

    name: str = "job"
    #: wall-clock budget in seconds, measured from submission (queue
    #: wait counts — a request that waited past its deadline is dead on
    #: arrival and reports TIMEOUT without occupying a worker)
    deadline: Optional[float] = None
    #: how many times a TransientJobError is retried
    retries: int = 0
    #: base backoff in seconds; attempt k sleeps ``backoff * 2**k``
    backoff: float = 0.05
    #: content-address of this spec's compile artefact, memoised after
    #: the first execution.  Resubmitting the *same spec object* then
    #: skips straight to the cache lookup — no diagram rebuild, no
    #: flatten, no fingerprint — which is what makes a warm-cache
    #: resubmission an order of magnitude cheaper than a cold one.
    #: Sound because specs are immutable descriptions and factories are
    #: assumed deterministic (retries already rely on exactly that).
    _memo_key: Optional[str] = field(
        default=None, init=False, repr=False, compare=False,
    )
    #: the lint gate's memoised CheckResult for this spec object, same
    #: contract as ``_memo_key``: factories are deterministic, so a
    #: warm resubmission skips the model rebuild and re-lint entirely
    _check_memo: Optional[Any] = field(
        default=None, init=False, repr=False, compare=False,
    )

    kind = "abstract"

    def execute(self, ctx: JobContext) -> Any:  # pragma: no cover
        raise NotImplementedError


@dataclass
class SingleRunResult:
    """Outcome of a :class:`SingleRunJob`."""

    probes: Dict[str, "Trajectory"]
    stats: Dict[str, Any]
    t_final: float


@dataclass
class SingleRunJob(JobSpec):
    """Run one :class:`~repro.core.model.HybridModel` to ``t_end``.

    ``model_factory`` builds a fresh model per attempt (jobs never share
    live runtime objects).  The run is a single uninterrupted
    ``model.run`` — numerically identical to a direct call, even with
    event-restart truncating major steps off-grid — observed through
    the scheduler's passive ``on_major_step`` hook: roughly every
    ``t_end / stream_slices`` of simulated time a PROGRESS event goes
    out with the latest probe values, and every major step passes a
    cancellation/deadline checkpoint.

    Resilience (all optional): with ``checkpoint_dir`` set, a
    :class:`~repro.resilience.CheckpointManager` spools periodic
    snapshots, and a *retried* attempt (``handle.attempts > 1``, i.e.
    the previous attempt died with a :class:`TransientJobError`)
    restores the newest valid checkpoint instead of cold-restarting —
    emitting a RESUMED telemetry event with the recovered sim-time.
    For fixed-step plans the resumed trajectory is bitwise the
    uninterrupted one.  ``resume_from`` restores one explicit snapshot
    file on the *first* attempt (warm-starting from a previous job's
    spool).  ``fault_injector`` arms a deterministic fault plan each
    attempt — the test/chaos hook that exercises exactly this path.
    """

    model_factory: Optional[Callable[[], "HybridModel"]] = None
    t_end: float = 1.0
    sync_interval: float = 0.01
    #: target number of PROGRESS events over the whole run
    stream_slices: int = 10
    validate: bool = True
    #: extra keyword arguments for ``HybridModel.scheduler``
    run_options: Dict[str, Any] = field(default_factory=dict)
    #: spool directory for periodic checkpoints (None: checkpointing off)
    checkpoint_dir: Optional[str] = None
    #: checkpoint every N major steps
    checkpoint_every_steps: int = 100
    #: newest checkpoints retained in the spool
    checkpoint_keep: int = 3
    #: explicit snapshot file to restore before the first attempt
    #: (retried attempts prefer the spool's newest valid checkpoint)
    resume_from: Optional[str] = None
    #: a :class:`~repro.resilience.FaultInjector` armed on every attempt
    fault_injector: Optional[Any] = None
    #: plan-optimizer level (None: the service's ``default_opt_level``)
    opt_level: Optional[int] = None
    #: execution backend for the continuous phase (None: interpreter).
    #: Ineligible models fall back to the interpreter — surfaced as a
    #: BACKEND telemetry event and the ``backend.fallback`` metric,
    #: never a job failure.
    backend: Optional[str] = None
    #: pace the run against the wall clock, in simulated seconds per
    #: wall second (1.0 = real time, 4.0 = 4x faster; None = free-run).
    #: Software-in-the-loop pacing: the trajectory is bitwise the
    #: free-running one — only sleeps are inserted between major steps,
    #: and cancellation/deadline checkpoints keep firing while waiting.
    #: A resumed attempt re-anchors the clock at the recovered sim-time.
    realtime_factor: Optional[float] = None

    kind = "single_run"

    def execute(self, ctx: JobContext) -> SingleRunResult:
        if self.model_factory is None:
            raise JobError("SingleRunJob needs a model_factory")
        if self.t_end <= 0:
            raise JobError(f"non-positive t_end: {self.t_end}")
        pace = self.realtime_factor
        if pace is not None and pace <= 0:
            raise JobError(f"non-positive realtime_factor: {pace}")
        ctx.checkpoint()
        opt = _resolve_opt(ctx, self.opt_level)
        model = self.model_factory()
        if self.validate:
            model.validate(strict=True)
        scheduler = model.scheduler(
            sync_interval=self.sync_interval, opt_config=opt,
            backend=self.backend, **self.run_options,
        )
        emit_dt = self.t_end / max(1, self.stream_slices)
        last_emit = [0.0]
        pace_anchor = [0.0, 0.0]  # (wall, sim) — armed after resume

        def observe(t_now: float) -> None:
            if t_now - last_emit[0] >= emit_dt - 1e-12:
                last_emit[0] = t_now
                ctx.emit(
                    PROGRESS, t=t_now,
                    fraction=min(1.0, t_now / self.t_end),
                    probes={
                        name: float(probe.trajectory.y_final[0])
                        for name, probe in model.probes.items()
                        if len(probe.trajectory)
                    },
                )
            ctx.checkpoint()
            if pace is not None:
                target = pace_anchor[0] + (t_now - pace_anchor[1]) / pace
                while True:
                    now = time.monotonic()
                    if now >= target:
                        break
                    ctx.checkpoint()
                    time.sleep(min(0.02, target - now))

        # hook chain order matters: job observer first, then the
        # checkpoint manager, then the fault injector — so a checkpoint
        # due at the crash step is written before the fault fires
        scheduler.on_major_step = observe
        manager = self._checkpoint_manager(ctx)
        if manager is not None:
            manager.attach(scheduler)
        self._maybe_resume(ctx, scheduler, manager)
        pace_anchor[0] = time.monotonic()
        pace_anchor[1] = model.time.raw
        if self.fault_injector is not None:
            self.fault_injector.arm(
                scheduler, attempt=max(1, ctx.handle.attempts),
            )
        try:
            scheduler.run(self.t_end)
        except Exception as exc:
            injected = self._reclassify(exc)
            if injected is not None:
                raise injected from exc
            raise
        _record_opt_metrics(
            ctx, getattr(getattr(scheduler, "plan", None),
                         "opt_report", None),
        )
        info = scheduler.backend_info
        _report_backend(
            ctx, info["requested"], info["effective"], info["reason"],
        )
        return SingleRunResult(
            probes={
                name: probe.trajectory
                for name, probe in model.probes.items()
            },
            stats=model.stats(),
            t_final=model.time.raw,
        )

    # -- resilience plumbing -------------------------------------------
    def _checkpoint_manager(self, ctx: JobContext):
        if self.checkpoint_dir is None:
            return None
        from repro.resilience import CheckpointManager

        return CheckpointManager(
            self.checkpoint_dir,
            every_steps=self.checkpoint_every_steps,
            keep=self.checkpoint_keep,
            metrics=getattr(ctx.service, "metrics", None),
        )

    def _maybe_resume(self, ctx: JobContext, scheduler, manager) -> None:
        from repro.resilience import SnapshotCodec, decode_snapshot

        source: Optional[Path] = None
        snapshot = None
        if manager is not None and ctx.handle.attempts > 1:
            latest = manager.load_latest()
            if latest is not None:
                source, snapshot = latest
        if snapshot is None and self.resume_from is not None \
                and ctx.handle.attempts <= 1:
            source = Path(self.resume_from)
            snapshot = decode_snapshot(source.read_bytes())
        if snapshot is None:
            return
        codec = manager.codec if manager is not None else SnapshotCodec()
        codec.restore(scheduler, snapshot)
        if manager is not None:
            manager.note_restore(scheduler)
        ctx.emit(
            RESUMED, t=snapshot.t,
            step=snapshot.step,
            attempt=ctx.handle.attempts,
            path=str(source),
        )
        metrics = getattr(ctx.service, "metrics", None)
        if metrics is not None:
            metrics.counter("jobs.resumed").inc()
            metrics.histogram("jobs.recovered_sim_time").observe(snapshot.t)

    def _reclassify(self, exc: BaseException) -> Optional[Exception]:
        """An injected-divergence fault surfaces as a genuine
        :class:`~repro.solvers.base.SolverError`; reclassify it as the
        (retryable) injected fault so the engine's retry path — and
        therefore checkpoint resume — is what handles it."""
        injector = self.fault_injector
        if injector is None:
            return None
        from repro.solvers.base import SolverError

        if not isinstance(exc, SolverError):
            return None
        if not injector.consume_divergence():
            return None
        from repro.resilience import InjectedDivergence

        return InjectedDivergence(f"injected divergence: {exc}")


@dataclass
class BatchJob(JobSpec):
    """Run a vectorised N-instance batch sweep of one diagram.

    The expensive compile (flatten → plan → emit → render → exec) is
    content-addressed through the service's :class:`~repro.service.
    cache.PlanCache`: the plan fingerprint plus records/sweep-paths/
    solver extras keys a reusable :class:`~repro.core.batch.
    BatchProgram`, so resubmitting a structurally identical diagram
    skips straight to the cheap per-job instantiation.  The run itself
    is chunked; every chunk streams out as a CHUNK telemetry event and
    passes a cancellation/deadline checkpoint.

    Resilience: with ``checkpoint_dir`` set, every non-final chunk
    boundary spools a ``kind="batch"`` snapshot — the chunks recorded so
    far plus the simulator's :meth:`~repro.core.batch.BatchSimulator.
    resume_point` — fingerprinted with the same content-address the plan
    cache uses.  A retried attempt reloads the newest valid one,
    replays nothing, and continues mid-run bitwise (the concatenated
    chunks equal an uninterrupted run's).
    """

    diagram_factory: Optional[Callable[[], "Diagram"]] = None
    n: int = 1
    t_end: float = 1.0
    solver: str = "rk4"
    h: float = 1e-3
    records: Optional[List[str]] = None
    sweeps: Optional[Mapping[str, Sequence[float]]] = None
    record_every: int = 1
    #: minor steps per streamed chunk (None: ~8 chunks per run)
    chunk_steps: Optional[int] = None
    x0: Optional[np.ndarray] = None
    #: spool directory for per-chunk checkpoints (None: off)
    checkpoint_dir: Optional[str] = None
    #: newest checkpoints retained in the spool
    checkpoint_keep: int = 3
    #: explicit snapshot file to restore before the first attempt
    resume_from: Optional[str] = None
    #: plan-optimizer level (None: the service's ``default_opt_level``)
    opt_level: Optional[int] = None
    #: requested execution backend.  ``"batch"`` (default) runs the
    #: vectorised NumPy program; ``"native-batch"`` runs the N-instance
    #: C kernel, demoting to the NumPy program when the kernel cannot
    #: be built.  Any other request degrades to ``"batch"``.  Every
    #: demotion emits a BACKEND telemetry event plus the
    #: ``backend.fallback`` metric.
    backend: Optional[str] = None
    #: instance-axis shard count for the native-batch kernel (None: one
    #: per core, capped; ignored by the NumPy backend)
    shards: Optional[int] = None

    kind = "batch"

    def _effective_backend(self) -> str:
        return (
            "native-batch" if self.backend == "native-batch" else "batch"
        )

    def _cache_key(self, plan, opt) -> str:
        extra = {
            "backend": self._effective_backend(),
            "records": tuple(self.records) if self.records else "<default>",
            "sweep_paths": tuple(sorted(self.sweeps or {})),
            "solver": solver_key(self.solver),
        }
        # the requested backend keys separately so its telemetry-bearing
        # artefacts never masquerade as plain batch submissions
        if self.backend is not None and self.backend != "batch":
            extra["backend_requested"] = self.backend
        # distinct opt configurations must never cross-serve artefacts
        if opt is not None and opt.is_active:
            extra["opt"] = opt.cache_token()
        return plan.fingerprint(extra=extra)

    def _fresh_diagram(self, diagram):
        """The diagram for a cache-miss compile: the one already built
        for fingerprinting, or (on a memoised-key miss, e.g. after
        eviction) a fresh one from the factory."""
        if diagram is not None:
            return diagram
        rebuilt = self.diagram_factory()
        rebuilt.finalise()
        return rebuilt

    def execute(self, ctx: JobContext) -> BatchResult:
        if self.diagram_factory is None:
            raise JobError("BatchJob needs a diagram_factory")
        ctx.checkpoint()
        requested = self.backend or "batch"
        native_wanted = requested == "native-batch"
        if not native_wanted and requested != "batch":
            # unknown/scalar backends degrade to the NumPy program;
            # native-batch resolution is reported after the simulator
            # settles (it may itself demote to "batch")
            _report_backend(
                ctx, requested, "batch",
                "batch sweeps run the vectorised NumPy backend",
            )
        opt = _resolve_opt(ctx, self.opt_level)
        sweeps = dict(self.sweeps or {})
        sweep_paths = tuple(sorted(sweeps))
        cache = ctx.cache
        # checkpoint blobs are fingerprinted with the plan-cache key, so
        # a spool enabled without a service cache still needs the key
        need_key = (
            self.checkpoint_dir is not None or self.resume_from is not None
        )
        key = self._memo_key
        diagram = None
        if (cache is not None or need_key) and key is None:
            diagram = self.diagram_factory()
            diagram.finalise()
            plan = FlatNetwork([diagram]).plan()
            key = self._cache_key(plan, opt)
            self._memo_key = key
        if cache is not None:
            compiled: Dict[str, Any] = {}

            def compile_program():
                program = compile_batch_program(
                    self._fresh_diagram(diagram),
                    records=self.records, sweep_paths=sweep_paths,
                    opt_config=opt, native=native_wanted,
                )
                compiled["fresh"] = True
                return program

            program = cache.get_or_compile(key, compile_program)
            if compiled:
                _record_opt_metrics(
                    ctx, getattr(program.plan, "opt_report", None),
                )
            sim = BatchSimulator(
                n=self.n, solver=self.solver, h=self.h, sweeps=sweeps,
                x0=self.x0, program=program,
                backend="native-batch" if native_wanted else None,
                shards=self.shards,
            )
        else:
            sim = BatchSimulator(
                self._fresh_diagram(diagram), self.n, solver=self.solver,
                h=self.h, records=self.records, sweeps=sweeps, x0=self.x0,
                opt_config=opt, cache=False,
                backend="native-batch" if native_wanted else None,
                shards=self.shards,
            )
            _record_opt_metrics(
                ctx, getattr(sim.plan, "opt_report", None),
            )
        if requested in ("batch", "native-batch"):
            _report_backend(
                ctx, requested, sim.backend_name,
                sim.backend_fallback_reason,
            )
        total_steps = max(1, math.ceil(self.t_end / self.h - 1e-12))
        chunk_steps = self.chunk_steps
        if chunk_steps is None:
            chunk_steps = max(1, total_steps // 8)
        manager = self._checkpoint_manager(ctx)
        chunks, resume_point = self._maybe_resume(
            ctx, manager, key, chunk_steps,
        )
        for chunk in sim.run_chunked(
            self.t_end, record_every=self.record_every,
            chunk_steps=chunk_steps, resume=resume_point,
        ):
            chunks.append(chunk)
            ctx.emit(
                CHUNK, t=chunk.t_now,
                rows=int(len(chunk.t)),
                steps=int(chunk.steps),
                final=bool(chunk.final),
                t_values=chunk.t,
                series=chunk.series,
            )
            if not chunk.final:
                ctx.checkpoint()
                if manager is not None:
                    manager.write(
                        self._pack_snapshot(key, chunks, chunk, chunk_steps)
                    )
        return merge_chunks(chunks, sim.n)

    # -- resilience plumbing -------------------------------------------
    def _checkpoint_manager(self, ctx: JobContext):
        if self.checkpoint_dir is None:
            return None
        from repro.resilience import CheckpointManager

        # interval is "every chunk": writes happen explicitly at chunk
        # boundaries, the manager provides the atomic spool + retention
        return CheckpointManager(
            self.checkpoint_dir, every_steps=1, keep=self.checkpoint_keep,
            metrics=getattr(ctx.service, "metrics", None),
        )

    def _pack_snapshot(self, key, chunks, chunk, chunk_steps):
        from repro.resilience import SNAPSHOT_VERSION, Snapshot

        return Snapshot(
            version=SNAPSHOT_VERSION,
            fingerprint=key,
            t=float(chunk.t_now),
            step=int(chunk.steps),
            kind="batch",
            payload={
                "h": float(self.h),
                "t_end": float(self.t_end),
                "n": int(self.n),
                "record_every": int(self.record_every),
                "chunk_steps": int(chunk_steps),
                "chunks": [
                    {
                        "t": c.t,
                        "series": dict(c.series),
                        "t_now": float(c.t_now),
                        "steps": int(c.steps),
                    }
                    for c in chunks
                ],
                "resume": dict(chunk.resume),
            },
        )

    def _maybe_resume(self, ctx: JobContext, manager, key, chunk_steps):
        from repro.resilience import decode_snapshot

        source = None
        snapshot = None
        if manager is not None and ctx.handle.attempts > 1:
            latest = manager.load_latest()
            if latest is not None:
                source, snapshot = latest
        if snapshot is None and self.resume_from is not None \
                and ctx.handle.attempts <= 1:
            source = Path(self.resume_from)
            snapshot = decode_snapshot(source.read_bytes())
        if snapshot is None:
            return [], None
        chunks, resume_point = self._unpack_snapshot(
            snapshot, key, chunk_steps,
        )
        ctx.emit(
            RESUMED, t=snapshot.t,
            step=snapshot.step,
            attempt=ctx.handle.attempts,
            chunks=len(chunks),
            path=str(source),
        )
        metrics = getattr(ctx.service, "metrics", None)
        if metrics is not None:
            metrics.counter("jobs.resumed").inc()
            metrics.histogram("jobs.recovered_sim_time").observe(snapshot.t)
        return chunks, resume_point

    def _unpack_snapshot(self, snapshot, key, chunk_steps):
        from repro.resilience import FingerprintMismatchError, SnapshotError

        if snapshot.kind != "batch":
            raise SnapshotError(
                f"snapshot kind {snapshot.kind!r} is not a batch checkpoint"
            )
        if key is not None and snapshot.fingerprint != key:
            raise FingerprintMismatchError(
                "batch checkpoint belongs to a different compiled plan: "
                f"{snapshot.fingerprint[:16]}… != {key[:16]}…"
            )
        payload = snapshot.payload
        for name, want in (
            ("h", float(self.h)),
            ("t_end", float(self.t_end)),
            ("n", int(self.n)),
            ("record_every", int(self.record_every)),
            ("chunk_steps", int(chunk_steps)),
        ):
            if payload.get(name) != want:
                raise SnapshotError(
                    f"batch checkpoint {name} mismatch: "
                    f"{payload.get(name)!r} != {want!r}"
                )
        chunks = [
            BatchChunk(
                t=np.asarray(c["t"], dtype=float),
                series={
                    label: np.asarray(values)
                    for label, values in c["series"].items()
                },
                t_now=float(c["t_now"]),
                steps=int(c["steps"]),
                final=False,
            )
            for c in payload["chunks"]
        ]
        return chunks, payload["resume"]


@dataclass
class CodegenJob(JobSpec):
    """Generate standalone source for a diagram (Python or C).

    Generated source is pure content — same diagram, same text — so it
    caches under the plan fingerprint plus the target language.
    """

    diagram_factory: Optional[Callable[[], "Diagram"]] = None
    lang: str = "python"
    records: Optional[List[str]] = None
    t_end: float = 10.0
    h: float = 1e-3
    #: plan-optimizer level (None: the service's ``default_opt_level``)
    opt_level: Optional[int] = None

    kind = "codegen"

    def execute(self, ctx: JobContext) -> str:
        if self.diagram_factory is None:
            raise JobError("CodegenJob needs a diagram_factory")
        if self.lang not in ("python", "c"):
            raise JobError(
                f"unknown codegen target {self.lang!r}; use 'python' or 'c'"
            )
        ctx.checkpoint()
        opt = _resolve_opt(ctx, self.opt_level)
        from repro.codegen import generate_c, generate_python

        def compile_source(diagram=None) -> str:
            if diagram is None:
                diagram = self.diagram_factory()
            if self.lang == "python":
                return generate_python(
                    diagram, records=self.records, default_h=self.h,
                    opt_config=opt,
                )
            return generate_c(
                diagram, records=self.records, default_h=self.h,
                t_end=self.t_end, opt_config=opt,
            )

        cache = ctx.cache
        if cache is None:
            return compile_source()
        key = self._memo_key
        if key is None:
            diagram = self.diagram_factory()
            diagram.finalise()
            plan = FlatNetwork([diagram]).plan()
            extra = {
                "backend": f"codegen:{self.lang}",
                "records": (
                    tuple(self.records) if self.records else "<default>"
                ),
                "t_end": self.t_end,
                "h": self.h,
            }
            if opt.is_active:
                extra["opt"] = opt.cache_token()
            key = plan.fingerprint(extra=extra)
            self._memo_key = key
            return cache.get_or_compile(
                key, lambda: compile_source(diagram),
            )
        return cache.get_or_compile(key, compile_source)
