"""repro: unified modeling of complex real-time control systems.

A from-scratch reproduction of He Hai, Zhong Yi-fang, Cai Chi-lan,
*Unified Modeling of Complex Real-Time Control Systems* (DATE 2005): a
UML-RT runtime extended with **streamers** so hybrid discrete/continuous
control systems can be modelled, validated, simulated and code-generated
on one platform.

Package map
-----------
- :mod:`repro.umlrt` — UML-RT substrate: capsules, ports, protocols,
  hierarchical state machines, controllers, timing and frame services.
- :mod:`repro.core` — the paper's extension: streamers, DPorts/SPorts,
  flows/relays, flow types, solver bindings, the continuous Time service,
  channels, streamer threads and the hybrid scheduler.
- :mod:`repro.solvers` — ODE solver strategies plus zero-crossing events.
- :mod:`repro.dataflow` — a Simulink-like continuous/discrete block
  library built on streamers.
- :mod:`repro.metamodel` — a small UML metamodel, the UML-RT profile, the
  paper's extension profile (Table 1) and diagram renderers (Figures 1-3).
- :mod:`repro.baselines` — the two prior approaches the paper argues
  against: Kühl-style dataflow→capsule translation and Bichler-style
  equations-in-states.
- :mod:`repro.codegen` — Python and C code generation from hybrid models.
- :mod:`repro.analysis` — trace metrics and schedulability analysis.
- :mod:`repro.service` — the concurrent job service above the simulator:
  a content-addressed plan cache (compile once, serve many), a bounded
  worker-pool job engine with deadlines/cancellation/retry/shedding, and
  streaming telemetry with service-wide metrics.
- :mod:`repro.check` — the static diagnostics engine: a pluggable rule
  registry linting models, plans and state machines without executing
  them (``python -m repro.check``, :func:`run_checks`), with
  machine-applicable fix-its and a service-layer lint gate.
- :mod:`repro.scenarios` — seeded scenario synthesis and
  coverage-steered differential campaigns (``python -m repro.scenarios``).
- :mod:`repro.cluster` — the distributed service: a multi-process
  worker pool with work stealing, a shared content-addressed
  checkpoint/artifact store enabling bitwise live job migration, and
  an asyncio HTTP front-end (``python -m repro.cluster``).

Quick start
-----------
>>> from repro import HybridModel, Streamer
>>> # see examples/quickstart.py for a complete runnable model
"""

from repro.core import (
    BackendProgram,
    BatchResult,
    BatchSimulator,
    Channel,
    ChannelPolicy,
    CompileRequest,
    ContinuousTime,
    DPort,
    DataKind,
    Direction,
    ExecutionBackend,
    ExecutionPlan,
    Flow,
    FlowType,
    HybridModel,
    HybridScheduler,
    ModelBuilder,
    OptConfig,
    OptReport,
    PlanOptimizer,
    Relay,
    SPort,
    SolverBinding,
    Streamer,
    StreamerThread,
    available_backends,
    compile_program,
    simulate_sequential,
    validate_model,
)
from repro.umlrt import (
    Capsule,
    Controller,
    Message,
    Port,
    PortKind,
    Priority,
    Protocol,
    RTSystem,
    Signal,
    State,
    StateMachine,
    Transition,
)
from repro.solvers import available_solvers, integrate, make_solver
from repro.service import (
    BatchJob,
    ChecksFailedError,
    CodegenJob,
    JobHandle,
    JobState,
    MetricsRegistry,
    PlanCache,
    ServiceOverloaded,
    SimulationService,
    SingleRunJob,
)
from repro.check import (
    CheckConfig,
    CheckResult,
    Diagnostic,
    FixIt,
    autofix,
    run_checks,
)
from repro.resilience import (
    CheckpointManager,
    FaultInjector,
    FingerprintMismatchError,
    Snapshot,
    SnapshotCodec,
    SnapshotError,
)

__version__ = "1.0.0"

__all__ = [
    "BackendProgram",
    "BatchJob",
    "BatchResult",
    "BatchSimulator",
    "Capsule",
    "CheckConfig",
    "CheckResult",
    "CheckpointManager",
    "ChecksFailedError",
    "CodegenJob",
    "Channel",
    "ChannelPolicy",
    "CompileRequest",
    "ContinuousTime",
    "Controller",
    "DPort",
    "DataKind",
    "Diagnostic",
    "Direction",
    "ExecutionBackend",
    "ExecutionPlan",
    "FaultInjector",
    "FingerprintMismatchError",
    "FixIt",
    "Flow",
    "FlowType",
    "HybridModel",
    "HybridScheduler",
    "JobHandle",
    "JobState",
    "Message",
    "MetricsRegistry",
    "ModelBuilder",
    "OptConfig",
    "OptReport",
    "PlanCache",
    "PlanOptimizer",
    "Port",
    "PortKind",
    "Priority",
    "Protocol",
    "RTSystem",
    "Relay",
    "SPort",
    "ServiceOverloaded",
    "Signal",
    "SimulationService",
    "SingleRunJob",
    "Snapshot",
    "SnapshotCodec",
    "SnapshotError",
    "SolverBinding",
    "State",
    "StateMachine",
    "Streamer",
    "StreamerThread",
    "Transition",
    "autofix",
    "available_backends",
    "available_solvers",
    "compile_program",
    "integrate",
    "make_solver",
    "run_checks",
    "simulate_sequential",
    "validate_model",
    "__version__",
    "cluster",
    "scenarios",
]

#: subpackages served lazily — ``repro.cluster`` pulls in
#: multiprocessing machinery nobody pays for on a plain ``import repro``
_LAZY_SUBPACKAGES = ("cluster", "scenarios", "resilience")


def __getattr__(name: str):
    if name in _LAZY_SUBPACKAGES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
