"""Discrete-time blocks: the difference-equation world.

The paper: "difference equations can be integrated into capsule's actions"
— but inside a *dataflow* diagram difference equations are more naturally
discrete-time blocks sampling at their own period.  Each block here keeps
its discrete state in plain attributes and updates it in ``on_sync`` when
its sample time has elapsed; between samples the output is held (ZOH
semantics).  Choose the scheduler's ``sync_interval`` to divide the block
sample times, or the block samples at the first sync point after its
nominal instant (the jitter every real RTOS also exhibits).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence

import numpy as np

from repro.dataflow.block import Block, BlockError


class SampledBlock(Block):
    """Base for blocks with a sample period ``ts``.

    Subclasses implement :meth:`sample(t, u) -> y`; the base handles the
    sample clock and output holding.  Outputs are *not* direct
    feedthrough at the continuous level (they change only at sync
    points), which conveniently breaks algebraic loops in sampled control
    loops, exactly as a physical ADC/DAC pair would.
    """

    default_inputs = ("in",)
    direct_feedthrough = False

    def __init__(self, name: str, ts: float, **params) -> None:
        if ts <= 0:
            raise BlockError(f"block {name!r}: non-positive sample time {ts}")
        super().__init__(name, ts=float(ts), **params)
        self._next_sample = 0.0
        self._held = 0.0
        self.samples_taken = 0

    def sample(self, t: float, u: float) -> float:
        raise NotImplementedError

    def on_sync(self, t: float) -> None:
        ts = self.params["ts"]
        eps = 1e-9 * ts  # tolerate float accumulation in major-step times
        if t + eps >= self._next_sample:
            u = self.in_scalar("in")
            self._held = float(self.sample(t, u))
            self.samples_taken += 1
            # walk the nominal grid forward (drift-free, double-sample
            # safe even when t sits a few ulps below a grid point)
            nxt = self._next_sample
            while nxt <= t + eps:
                nxt += ts
            self._next_sample = nxt

    def compute_outputs(self, t: float, state: np.ndarray) -> None:
        self.out_scalar("out", self._held)

    def extra_state(self) -> dict:
        return {
            "next_sample": self._next_sample,
            "held": self._held,
            "samples_taken": self.samples_taken,
        }

    def restore_extra_state(self, state: dict) -> None:
        self._next_sample = float(state.get("next_sample", 0.0))
        self._held = float(state.get("held", 0.0))
        self.samples_taken = int(state.get("samples_taken", 0))


class ZeroOrderHold(SampledBlock):
    """Sample the input every ``ts`` and hold it."""

    def sample(self, t: float, u: float) -> float:
        return u


class UnitDelay(SampledBlock):
    """``y[k] = u[k-1]`` at period ``ts``."""

    def __init__(self, name: str, ts: float, y0: float = 0.0) -> None:
        super().__init__(name, ts)
        self._store = float(y0)

    def sample(self, t: float, u: float) -> float:
        out, self._store = self._store, u
        return out

    def extra_state(self) -> dict:
        state = super().extra_state()
        state["store"] = self._store
        return state

    def restore_extra_state(self, state: dict) -> None:
        self._store = float(state.pop("store", 0.0))
        super().restore_extra_state(state)


class MovingAverage(SampledBlock):
    """Mean of the last ``window`` samples."""

    def __init__(self, name: str, ts: float, window: int = 4) -> None:
        if window < 1:
            raise BlockError(
                f"moving average {name!r}: window must be >= 1"
            )
        super().__init__(name, ts, window=int(window))
        self._buffer: Deque[float] = deque(maxlen=int(window))

    def sample(self, t: float, u: float) -> float:
        self._buffer.append(u)
        return sum(self._buffer) / len(self._buffer)

    def extra_state(self) -> dict:
        state = super().extra_state()
        state["buffer"] = list(self._buffer)
        return state

    def restore_extra_state(self, state: dict) -> None:
        buffer = state.pop("buffer", ())
        self._buffer.clear()
        self._buffer.extend(float(v) for v in buffer)
        super().restore_extra_state(state)


class DiscreteTransferFunction(SampledBlock):
    """SISO z-domain transfer function ``num(z⁻¹)/den(z⁻¹)`` at period
    ``ts`` — the general difference equation

    ``a0·y[k] = b0·u[k] + b1·u[k-1] + ... - a1·y[k-1] - ...``
    """

    def __init__(
        self,
        name: str,
        num: Sequence[float],
        den: Sequence[float],
        ts: float = 0.1,
    ) -> None:
        num = [float(c) for c in num]
        den = [float(c) for c in den]
        if not den or den[0] == 0.0:
            raise BlockError(
                f"dtf {name!r}: denominator must start with a non-zero "
                "coefficient"
            )
        super().__init__(name, ts)
        self.num = num
        self.den = den
        self._u_hist: Deque[float] = deque([0.0] * len(num), maxlen=len(num))
        self._y_hist: Deque[float] = deque(
            [0.0] * (len(den) - 1), maxlen=max(1, len(den) - 1)
        )

    def sample(self, t: float, u: float) -> float:
        self._u_hist.appendleft(u)
        acc = sum(b * uu for b, uu in zip(self.num, self._u_hist))
        acc -= sum(a * yy for a, yy in zip(self.den[1:], self._y_hist))
        y = acc / self.den[0]
        if len(self.den) > 1:
            self._y_hist.appendleft(y)
        return y

    def extra_state(self) -> dict:
        state = super().extra_state()
        state["u_hist"] = list(self._u_hist)
        state["y_hist"] = list(self._y_hist)
        return state

    def restore_extra_state(self, state: dict) -> None:
        for attr, key in (("_u_hist", "u_hist"), ("_y_hist", "y_hist")):
            hist = getattr(self, attr)
            values = state.pop(key, ())
            hist.clear()
            hist.extend(float(v) for v in values)
        super().restore_extra_state(state)


class DiscretePID(SampledBlock):
    """Velocity-form discrete PID at period ``ts``.

    ``Δu[k] = kp·(e[k]-e[k-1]) + ki·ts·e[k] + kd/ts·(e[k]-2e[k-1]+e[k-2])``

    with output clamping.  The velocity form needs no anti-windup logic:
    clamping Δu accumulates no windup by construction.
    """

    def __init__(
        self,
        name: str,
        kp: float = 1.0,
        ki: float = 0.0,
        kd: float = 0.0,
        ts: float = 0.1,
        u_min: Optional[float] = None,
        u_max: Optional[float] = None,
    ) -> None:
        super().__init__(
            name, ts, kp=float(kp), ki=float(ki), kd=float(kd)
        )
        self.u_min = u_min
        self.u_max = u_max
        self._e1 = 0.0
        self._e2 = 0.0
        self._u = 0.0

    def sample(self, t: float, e: float) -> float:
        p = self.params
        ts = p["ts"]
        du = (
            p["kp"] * (e - self._e1)
            + p["ki"] * ts * e
            + p["kd"] / ts * (e - 2.0 * self._e1 + self._e2)
        )
        u = self._u + du
        if self.u_max is not None:
            u = min(u, self.u_max)
        if self.u_min is not None:
            u = max(u, self.u_min)
        self._e2, self._e1, self._u = self._e1, e, u
        return u

    def extra_state(self) -> dict:
        state = super().extra_state()
        state.update(e1=self._e1, e2=self._e2, u=self._u)
        return state

    def restore_extra_state(self, state: dict) -> None:
        self._e1 = float(state.pop("e1", 0.0))
        self._e2 = float(state.pop("e2", 0.0))
        self._u = float(state.pop("u", 0.0))
        super().restore_extra_state(state)
