"""The service-layer lint gate (submit-time policies)."""

import pytest

from repro.service import (
    CHECK_POLICIES,
    ChecksFailedError,
    SimulationService,
    SingleRunJob,
)
from repro.service.telemetry import CHECKS

from tests.check.builders import feedback_model, loop_model


def counting(factory):
    calls = {"n": 0}

    def build():
        calls["n"] += 1
        return factory()

    return build, calls


class TestGatePolicies:
    def test_policy_values(self):
        assert CHECK_POLICIES == ("off", "warn", "enforce")
        with pytest.raises(ValueError):
            SimulationService(check_policy="strict")

    def test_enforce_rejects_before_queue(self):
        with SimulationService(
            workers=1, check_policy="enforce"
        ) as svc:
            spec = SingleRunJob(model_factory=loop_model, t_end=0.1)
            with pytest.raises(ChecksFailedError) as info:
                svc.submit(spec)
            assert "STR001" in str(info.value)
            assert info.value.diagnostics
            assert svc.metrics.counter("checks.failed").value == 1
            # nothing reached the engine
            assert svc.metrics_snapshot()["queue"]["depth"] == 0

    def test_enforce_admits_clean_model(self):
        with SimulationService(
            workers=1, check_policy="enforce"
        ) as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=feedback_model, t_end=0.05,
            ))
            handle.result(timeout=30.0)
            assert svc.metrics.counter("checks.passed").value == 1
            assert svc.metrics.counter("checks.failed").value == 0

    def test_warn_admits_and_streams_findings(self):
        with SimulationService(workers=1, check_policy="warn") as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=loop_model, t_end=0.05,
            ))
            events = [
                e for e in handle.stream() if e.kind == CHECKS
            ]
            assert len(events) == 1
            payload = events[0].payload
            assert payload["errors"] >= 1
            assert any(
                d["code"] == "STR001" for d in payload["diagnostics"]
            )
            assert svc.metrics.counter("checks.failed").value == 1

    def test_off_never_builds_the_model_early(self):
        build, calls = counting(feedback_model)
        with SimulationService(workers=1) as svc:
            handle = svc.submit(SingleRunJob(
                model_factory=build, t_end=0.05,
            ))
            handle.result(timeout=30.0)
        # only the job execution itself called the factory
        assert calls["n"] == 1
        assert "checks.failed" not in (
            svc.metrics_snapshot()["counters"]
        )

    def test_gate_result_memoised_per_spec(self):
        build, calls = counting(loop_model)
        with SimulationService(
            workers=1, check_policy="enforce"
        ) as svc:
            spec = SingleRunJob(model_factory=build, t_end=0.1)
            for __ in range(3):
                with pytest.raises(ChecksFailedError):
                    svc.submit(spec)
        assert calls["n"] == 1
        assert svc.metrics.counter("checks.failed").value == 3

    def test_specs_without_factories_skip_the_gate(self):
        with SimulationService(
            workers=1, check_policy="enforce"
        ) as svc:
            spec = SingleRunJob(model_factory=None, t_end=0.05)
            assert svc._gate(spec) is None
            spec2 = SingleRunJob(
                model_factory=feedback_model, t_end=0.05,
            )
            assert svc._gate_result(spec2) is not None


class TestChecksFailedError:
    def test_message_carries_codes_and_subjects(self):
        from repro.check import run_checks

        result = run_checks(loop_model())
        error = ChecksFailedError("myjob", result.errors)
        text = str(error)
        assert "myjob" in text
        assert "STR001" in text
        assert error.diagnostics == result.errors
