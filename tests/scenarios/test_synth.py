"""Scenario generators: the synth_dag move and the new families."""

import warnings

import numpy as np
import pytest

from repro.core.backend import CompileRequest, compile_program
from repro.core.network import FlatNetwork
from repro.scenarios.synth import (
    synth_control_model,
    synth_dag,
    synth_feedback,
    synth_multirate,
    synth_plant,
)

H = 1.0 / 512.0


def _fingerprint(diagram):
    plan = FlatNetwork([diagram.finalise()]).plan()
    return tuple(
        (node.leaf.name, type(node.leaf).__name__) for node in plan.nodes
    )


class TestSynthDagMove:
    def test_old_import_path_still_works_with_warning(self):
        from repro.core.opt import synth as old

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_shim = old.synth_dag(3, blocks=10)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), "the shim must warn about the move"
        assert _fingerprint(via_shim) == _fingerprint(
            synth_dag(3, blocks=10)
        )

    def test_package_reexport_unchanged(self):
        # repro.core.opt re-exports the shim for old call sites
        from repro.core.opt import synth_dag as via_pkg

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            d = via_pkg(1, blocks=8, sampled=True)
        assert _fingerprint(d) == _fingerprint(
            synth_dag(1, blocks=8, sampled=True)
        )

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_seeded_determinism(self, seed):
        a = synth_dag(seed, blocks=12)
        b = synth_dag(seed, blocks=12)
        assert _fingerprint(a) == _fingerprint(b)
        for name, sub in a.subs.items():
            assert sub.params == b.subs[name].params

    def test_runs_through_interpreter(self):
        program = compile_program(
            CompileRequest(diagram=synth_dag(5, blocks=12), h=H),
            "interpreter",
        )
        result = program.run(0.1)
        assert result.t[-1] == pytest.approx(0.1)
        for series in result.series.values():
            assert np.all(np.isfinite(series))


class TestFeedback:
    @pytest.mark.parametrize("seed", [0, 2, 9])
    def test_builds_and_runs(self, seed):
        d = synth_feedback(seed, blocks=10, loops=2)
        program = compile_program(
            CompileRequest(diagram=d, h=H), "interpreter",
        )
        result = program.run(0.1)
        for series in result.series.values():
            assert np.all(np.isfinite(series))

    def test_deterministic(self):
        assert _fingerprint(synth_feedback(4)) == _fingerprint(
            synth_feedback(4)
        )


class TestPlant:
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_all_optimizer_passes_fire(self, seed):
        # the plant family carries deliberate bait for every pass
        network = FlatNetwork([synth_plant(seed).finalise()])
        plan = network.plan(opt_level=1)
        counts = plan.opt_report.counts()
        assert counts["dce.blocks_removed"] >= 1
        assert counts["fold.blocks_folded"] >= 1
        assert counts["cse.blocks_merged"] >= 1
        assert counts["fuse.chains"] >= 1

    def test_o0_o1_parity(self):
        results = {}
        for level in (0, 1):
            program = compile_program(
                CompileRequest(
                    diagram=synth_plant(2), h=H, opt_level=level,
                ),
                "interpreter",
            )
            results[level] = program.run(0.25)
        assert np.array_equal(results[0].t, results[1].t)
        for key in results[0].series:
            assert np.array_equal(
                results[0].series[key], results[1].series[key]
            ), f"series {key} broke under O1"


class TestModels:
    def test_control_model_runs(self):
        model = synth_control_model(3)
        model.run(0.2, validate=False)
        for name in ("y", "u"):
            trajectory = model.probe(name)
            assert len(trajectory.times) > 0

    @pytest.mark.parametrize("feedthrough", [False, True])
    def test_multirate_runs(self, feedthrough):
        model = synth_multirate(1, feedthrough=feedthrough)
        model.run(0.2, validate=False)
        probes = {"fast_y", "slow_y"} | (
            {"tap_y"} if feedthrough else set()
        )
        for name in probes:
            assert len(model.probe(name).times) > 0
