"""Model-size and information-loss metrics for the baseline comparisons.

:func:`model_size` counts the modelling elements of the streamer-based
original; :func:`information_loss` compares a diagram's features with
what a Kühl translation can represent and returns a per-feature loss
table.  Benchmark C1 prints both side by side with the translation's own
:meth:`~repro.baselines.kuhl.KuhlTranslation.size_metrics`.
"""

from __future__ import annotations

from typing import Dict

from repro.core.network import FlatNetwork
from repro.dataflow.diagram import Diagram


def diagram_features(diagram: Diagram) -> Dict[str, int]:
    """Countable modelling features of a (finalised) diagram."""
    diagram.finalise()
    leaves = diagram.leaves()
    flows = diagram.all_flows()
    relays = diagram.all_relays()
    flow_types = {
        flow.source.flow_type.name for flow in flows
    } | {flow.target.flow_type.name for flow in flows}

    def depth(streamer, current=1):
        if not streamer.subs:
            return current
        return max(depth(s, current + 1) for s in streamer.subs.values())

    return {
        "blocks": len(leaves),
        "flows": len(flows),
        "relays": len(relays),
        "flow_types": len(flow_types),
        "hierarchy_depth": depth(diagram),
        "stateful_blocks": sum(1 for leaf in leaves if leaf.state_size),
        "sports": sum(len(leaf.sports) for leaf in leaves)
        + len(diagram.sports),
    }


def model_size(diagram: Diagram) -> Dict[str, int]:
    """Element counts of the streamer-based original model."""
    diagram.finalise()
    network = FlatNetwork([diagram])
    features = diagram_features(diagram)
    dports = sum(len(leaf.dports) for leaf in network.leaves)
    return {
        "streamers": features["blocks"] + 1,  # leaves + the diagram
        "dports": dports + len(diagram.dports),
        "flows": features["flows"],
        "relays": features["relays"],
        "capsule_instances": 0,
        "protocols": 0,
        "connectors": 0,
        "states": network.state_size,
    }


def information_loss(diagram: Diagram) -> Dict[str, int]:
    """What a capsule translation cannot represent, per feature.

    The Kühl target language (plain UML-RT) has no typed dataflow, no
    relay stereotype, no continuous hierarchy (blocks flatten into peer
    capsules), and hard-codes the integration method.  The returned
    counts are "units of model intent" that the translation discards; 0
    everywhere means lossless.
    """
    features = diagram_features(diagram)
    return {
        # every distinct flow type collapses to an untyped float signal
        "flow_types_lost": features["flow_types"],
        # relay points disappear into duplicated connectors
        "relays_lost": features["relays"],
        # hierarchy levels beyond 1 flatten away
        "hierarchy_levels_lost": max(0, features["hierarchy_depth"] - 1),
        # the solver choice per thread is replaced by hard-coded Euler
        "solver_choice_lost": 1 if features["stateful_blocks"] else 0,
        # sample-time metadata of discrete blocks folds into the tick
        "sample_times_lost": sum(
            1 for leaf in diagram.leaves()
            if "ts" in getattr(leaf, "params", {})
        ),
    }


def total_information_loss(diagram: Diagram) -> int:
    """Scalar loss score: sum of all per-feature losses."""
    return sum(information_loss(diagram).values())
