"""The O2 leg of the differential matrix.

O2 plans may fuse/reassociate arithmetic, so comparisons *across* opt
levels get a tight tolerance exactly when the plan's report shows fused
ops — and stay bitwise everywhere else.  The mutation self-test must
still kill through the tolerant path (a corrupted sample is far outside
any ulp drift).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.campaign import (
    CampaignConfig,
    _diff_series,
    _diff_series_tol,
    _plan_reassociates,
    execute_scenario,
    replay,
)
from repro.scenarios.spec import ScenarioSpec


def _find_seed(family: str, start: int = 0, limit: int = 4000) -> int:
    for seed in range(start, start + limit):
        if ScenarioSpec.from_seed(seed).family == family:
            return seed
    raise AssertionError(f"no {family} seed in [{start}, {start + limit})")


class _FakeResult:
    def __init__(self, t, series, final_state):
        self.t = t
        self.series = series
        self.final_state = final_state


def _result(shift=0.0):
    t = np.linspace(0.0, 1.0, 65)
    base = np.sin(t * 3.0)
    return _FakeResult(
        t, {"y": base + shift}, np.array([1.0 + shift, 2.0]),
    )


class TestDiffSeriesTol:
    def test_ulp_drift_tolerated(self):
        a, b = _result(), _result(shift=1e-14)
        assert _diff_series(a, b, "x") is not None  # bitwise sees it
        assert _diff_series_tol(a, b, "x", rtol=1e-9) is None

    def test_real_divergence_still_caught(self):
        a, b = _result(), _result(shift=1e-3)
        detail = _diff_series_tol(a, b, "lbl", rtol=1e-9)
        assert detail is not None and "diverges beyond" in detail

    def test_grid_mismatch_never_tolerated(self):
        a, b = _result(), _result()
        b.t = b.t + 1e-15
        assert "time grids differ" in _diff_series_tol(a, b, "x", 1e-9)


class TestPlanReassociates:
    def test_only_o2_with_fusion_counts(self):
        class _Report:
            def counts(self):
                return {"fuse.ops_fused": 2, "dce.blocks_removed": 0}

        class _Plan:
            opt_report = _Report()

        assert _plan_reassociates(_Plan(), 2)
        assert not _plan_reassociates(_Plan(), 1)  # below O2: bitwise

        class _IdleReport:
            def counts(self):
                return {"fuse.ops_fused": 0}

        class _IdlePlan:
            opt_report = _IdleReport()

        assert not _plan_reassociates(_IdlePlan(), 2)
        assert not _plan_reassociates(object(), 2)  # no report at all


class TestO2Differential:
    def test_config_defaults_include_o2(self):
        assert 2 in CampaignConfig().opt_levels

    def test_differential_family_passes_at_o2(self):
        seed = _find_seed("feedback")
        config = CampaignConfig(
            t_end=0.1, backends=["compiled-python"],
            opt_levels=(0, 1, 2),
        )
        outcome = execute_scenario(ScenarioSpec.from_seed(seed), config)
        assert outcome.ok, outcome.detail

    def test_mutation_killed_at_o2(self):
        seed = _find_seed("dag")
        config = CampaignConfig(
            t_end=0.1, backends=["compiled-python"],
            opt_levels=(0, 1, 2), mutate_seeds=frozenset([seed]),
        )
        outcome = execute_scenario(ScenarioSpec.from_seed(seed), config)
        assert not outcome.ok

    def test_replay_covers_o2_passes(self):
        seed = _find_seed("plant")
        outcome = replay(seed, CampaignConfig(
            t_end=0.1, backends=["compiled-python"],
        ))
        assert outcome.ok, outcome.detail
